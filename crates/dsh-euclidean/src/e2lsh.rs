//! The classical Datar et al. projection LSH for Euclidean space
//! (the `k = 0` symmetric case of the paper's equation (2)).
//!
//! `h(x) = floor((<a, x> + b) / w)` with `a ~ N(0, I_d)` and `b` uniform in
//! `[0, w]`. The CPF depends only on the distance `Delta = ||x - y||`:
//!
//! ```text
//! f(Delta) = 1 - 2 Phi(-w/Delta) - (2 Delta / (sqrt(2 pi) w)) (1 - e^{-w^2/(2 Delta^2)})
//! ```

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::{self, DenseVector};
use dsh_math::{normal, rng};
use rand::Rng;

/// Symmetric projection LSH with bucket width `w`; CPF decreasing in the
/// Euclidean distance.
#[derive(Debug, Clone, Copy)]
pub struct EuclideanLsh {
    d: usize,
    w: f64,
}

impl EuclideanLsh {
    /// Family over `R^d` with bucket width `w`.
    pub fn new(d: usize, w: f64) -> Self {
        assert!(d > 0 && w > 0.0);
        EuclideanLsh { d, w }
    }

    /// Bucket width.
    pub fn width(&self) -> f64 {
        self.w
    }
}

impl DshFamily<[f64]> for EuclideanLsh {
    fn sample(&self, rng_in: &mut dyn Rng) -> HasherPair<[f64]> {
        let a = DenseVector::gaussian(rng_in, self.d);
        let b = rng::uniform(rng_in, self.w);
        let w = self.w;
        let a2 = a.clone();
        HasherPair::from_fns(
            move |x: &[f64]| ((points::dot(a.as_slice(), x) + b) / w).floor() as i64 as u64,
            move |y: &[f64]| ((points::dot(a2.as_slice(), y) + b) / w).floor() as i64 as u64,
        )
    }

    fn name(&self) -> String {
        format!("E2LSH(w={:.2})", self.w)
    }
}

impl AnalyticCpf for EuclideanLsh {
    /// `arg` is the Euclidean distance `Delta >= 0`.
    fn cpf(&self, delta: f64) -> f64 {
        assert!(delta >= 0.0);
        if delta == 0.0 {
            return 1.0;
        }
        let r = self.w / delta;
        1.0 - 2.0 * normal::cdf(-r)
            - 2.0 / ((2.0 * std::f64::consts::PI).sqrt() * r) * (1.0 - (-r * r / 2.0).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::estimate::CpfEstimator;
    use dsh_math::rng::seeded;

    fn pair_at_distance(
        rng: &mut dyn rand::Rng,
        d: usize,
        delta: f64,
    ) -> (DenseVector, DenseVector) {
        let x = DenseVector::gaussian(rng, d);
        let dir = DenseVector::random_unit(rng, d);
        let y = x.add(&dir.scaled(delta));
        (x, y)
    }

    #[test]
    fn cpf_matches_monte_carlo() {
        let d = 8;
        let fam = EuclideanLsh::new(d, 2.0);
        let mut rng = seeded(151);
        for &delta in &[0.5, 1.0, 2.0, 4.0] {
            let (x, y) = pair_at_distance(&mut rng, d, delta);
            let est = CpfEstimator::new(40_000, 152).estimate_pair(&fam, &x, &y);
            assert!(
                est.contains(fam.cpf(delta)),
                "delta {delta}: want {}, got {}",
                fam.cpf(delta),
                est.estimate
            );
        }
    }

    #[test]
    fn cpf_decreasing_with_distance() {
        let fam = EuclideanLsh::new(4, 1.0);
        let mut prev = 1.0;
        for i in 1..=20 {
            let v = fam.cpf(0.25 * i as f64);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn cpf_limits() {
        let fam = EuclideanLsh::new(4, 1.0);
        assert_eq!(fam.cpf(0.0), 1.0);
        assert!(fam.cpf(1e6) < 1e-5);
        // Same point always collides.
        let mut rng = seeded(153);
        let x = DenseVector::gaussian(&mut rng, 4);
        for _ in 0..20 {
            assert!(fam.sample(&mut rng).collides(&x, &x));
        }
    }

    #[test]
    fn cpf_agrees_with_direct_integration() {
        // f(Delta) = int_0^w phi_Delta(t) * (1 - t/w) * 2 dt ... cross-check
        // the closed form against numerical integration of the collision
        // kernel: f = int_{-w}^{w} max(0, 1 - |t|/w) phi(t/Delta)/Delta dt.
        let fam = EuclideanLsh::new(4, 1.7);
        for &delta in &[0.4, 1.0, 3.0] {
            let w = 1.7;
            let num = dsh_math::integrate::adaptive_simpson(
                |t| (1.0 - (t / w).abs()).max(0.0) * normal::pdf(t / delta) / delta,
                -w,
                w,
                1e-12,
            );
            assert!(
                (num - fam.cpf(delta)).abs() < 1e-9,
                "delta {delta}: integral {num} vs closed form {}",
                fam.cpf(delta)
            );
        }
    }
}
