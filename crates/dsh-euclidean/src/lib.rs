//! Euclidean-space distance-sensitive hashing (paper §4.2).
//!
//! The "negate the query" trick fails in unbounded `R^d`, but asymmetry
//! still helps: shifting the query's bucket index in the classical
//! Datar–Immorlica–Indyk–Mirrokni projection family yields a *unimodal*
//! CPF peaking near distance `k w` (Figure 1), and with `w = w(c)` chosen
//! per Theorem 4.1 its `rho_minus` approaches the optimal `1/c^2`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod e2lsh;
pub mod fourier;
pub mod shifted;

pub use e2lsh::EuclideanLsh;
pub use fourier::{FourierEmbedding, KernelizedFamily};
pub use shifted::ShiftedEuclideanDsh;
