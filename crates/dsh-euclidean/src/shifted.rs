//! The asymmetric shifted projection family of §4.2 (equation (2)).
//!
//! ```text
//! h(x) = floor((<a, x> + b) / w),      g(y) = floor((<a, y> + b) / w) + k
//! ```
//!
//! with `a ~ N(0, I_d)`, `b` uniform in `[0, w]`. A collision requires the
//! projected difference `t = <a, x - y> ~ N(0, Delta^2)` to land in
//! `[(k-1)w, (k+1)w]`, where the offset `b` then collides with tent-shaped
//! probability — giving the *unimodal* CPF of Figure 1:
//!
//! ```text
//! f(Delta) = int tent_k(t) phi(t/Delta)/Delta dt,
//! tent_k(t) = max(0, 1 - |t/w - k|)
//! ```
//!
//! evaluated here in closed form via `Phi` and `phi`. Theorem 4.1: with
//! `w <= sqrt(2 pi)/(2c)`, `rho_minus = ln(1/f(r)) / ln(1/f(r/c))
//! = (1/c^2)(1 + O(1/k))` — asymptotically optimal, matching the sphere
//! constructions, even though the underlying symmetric family is not an
//! optimal Euclidean LSH.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::{self, DenseVector};
use dsh_math::{normal, rng};
use rand::Rng;

/// The equation-(2) family with bucket width `w` and shift `k`.
#[derive(Debug, Clone, Copy)]
pub struct ShiftedEuclideanDsh {
    d: usize,
    k: u32,
    w: f64,
}

impl ShiftedEuclideanDsh {
    /// Family over `R^d` with bucket width `w` and bucket shift `k >= 1`.
    pub fn new(d: usize, k: u32, w: f64) -> Self {
        assert!(d > 0 && w > 0.0);
        assert!(k >= 1, "the shift must be positive (k = 0 is EuclideanLsh)");
        ShiftedEuclideanDsh { d, k, w }
    }

    /// Bucket width `w`.
    pub fn width(&self) -> f64 {
        self.w
    }

    /// Bucket shift `k`.
    pub fn shift(&self) -> u32 {
        self.k
    }

    /// The Theorem 4.1 width rule: `w(c) = sqrt(2 pi) / (2 c)`.
    pub fn suggested_width(c: f64) -> f64 {
        assert!(c > 1.0);
        (2.0 * std::f64::consts::PI).sqrt() / (2.0 * c)
    }

    /// The measured exponent `rho_minus = ln(1/f(r)) / ln(1/f(r/c))`
    /// computed in the log domain (the collision probabilities at play in
    /// Theorem 4.1 routinely underflow `f64`).
    pub fn rho_minus(&self, r: f64, c: f64) -> f64 {
        assert!(r > 0.0 && c > 1.0);
        self.ln_cpf(r) / self.ln_cpf(r / c)
    }

    /// `ln f(Delta)`, stable arbitrarily deep in the tail.
    ///
    /// Writing `t = (k-1)w + s` and factoring the Gaussian at the left
    /// tent edge `a = (k-1)w/Delta`:
    ///
    /// ```text
    /// f = (phi(a)/Delta) * int_0^{2w} tent(s) e^{-(2(k-1)w s + s^2)/(2 Delta^2)} ds
    /// ```
    ///
    /// The remaining integral is well-scaled and computed by adaptive
    /// quadrature, so `ln f = -a^2/2 - ln(sqrt(2 pi) Delta) + ln J` never
    /// underflows.
    pub fn ln_cpf(&self, delta: f64) -> f64 {
        assert!(delta > 0.0);
        let w = self.w;
        let k = self.k as f64;
        let a = (k - 1.0) * w / delta;
        let rate = (k - 1.0) * w / (delta * delta);
        // Substitute u = rate * s so the exponential decays on an O(1)
        // scale regardless of how sharp the boundary layer is; truncate
        // the range where e^{-u} is beyond double precision.
        let (j, ln_scale) = if rate > 1.0 {
            let u_max = (2.0 * w * rate).min(80.0);
            let integrand = |u: f64| {
                let s = u / rate;
                let tent = (1.0 - (s / w - 1.0).abs()).max(0.0);
                tent * (-(u + s * s / (2.0 * delta * delta))).exp()
            };
            let rough = dsh_math::integrate::adaptive_simpson(integrand, 0.0, u_max, 1e-14);
            let tol = (rough * 1e-11).max(1e-300);
            (
                dsh_math::integrate::adaptive_simpson(integrand, 0.0, u_max, tol),
                -(rate.ln()),
            )
        } else {
            let integrand = |s: f64| {
                let tent = (1.0 - (s / w - 1.0).abs()).max(0.0);
                tent * (-(rate * s + s * s / (2.0 * delta * delta))).exp()
            };
            let rough = dsh_math::integrate::adaptive_simpson(integrand, 0.0, 2.0 * w, 1e-14);
            let tol = (rough * 1e-11).max(1e-300);
            (
                dsh_math::integrate::adaptive_simpson(integrand, 0.0, 2.0 * w, tol),
                0.0,
            )
        };
        assert!(j > 0.0, "tent integral vanished numerically");
        -a * a / 2.0 - ((2.0 * std::f64::consts::PI).sqrt() * delta).ln() + ln_scale + j.ln()
    }
}

impl DshFamily<[f64]> for ShiftedEuclideanDsh {
    fn sample(&self, rng_in: &mut dyn Rng) -> HasherPair<[f64]> {
        let a = DenseVector::gaussian(rng_in, self.d);
        let b = rng::uniform(rng_in, self.w);
        let w = self.w;
        let k = self.k as i64;
        let a2 = a.clone();
        HasherPair::from_fns(
            move |x: &[f64]| ((points::dot(a.as_slice(), x) + b) / w).floor() as i64 as u64,
            move |y: &[f64]| {
                (((points::dot(a2.as_slice(), y) + b) / w).floor() as i64).wrapping_add(k) as u64
            },
        )
    }

    fn name(&self) -> String {
        format!("ShiftedE2(k={}, w={:.2})", self.k, self.w)
    }
}

impl AnalyticCpf for ShiftedEuclideanDsh {
    /// `arg` is the Euclidean distance `Delta >= 0`; closed-form tent
    /// integral.
    fn cpf(&self, delta: f64) -> f64 {
        assert!(delta >= 0.0);
        if delta == 0.0 {
            return 0.0; // identical points never collide for k >= 1
        }
        let w = self.w;
        let k = self.k as f64;
        let s = |u: f64| u * w / delta; // standardized boundary
                                        // piece1: t in [(k-1)w, kw], weight t/w - (k-1).
        let p1 = delta / w * (normal::pdf(s(k - 1.0)) - normal::pdf(s(k)))
            - (k - 1.0) * (normal::cdf(s(k)) - normal::cdf(s(k - 1.0)));
        // piece2: t in [kw, (k+1)w], weight (k+1) - t/w.
        let p2 = (k + 1.0) * (normal::cdf(s(k + 1.0)) - normal::cdf(s(k)))
            - delta / w * (normal::pdf(s(k)) - normal::pdf(s(k + 1.0)));
        (p1 + p2).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::cpf::peak_of;
    use dsh_core::estimate::CpfEstimator;
    use dsh_math::integrate::adaptive_simpson;
    use dsh_math::rng::seeded;

    fn pair_at_distance(
        rng: &mut dyn rand::Rng,
        d: usize,
        delta: f64,
    ) -> (DenseVector, DenseVector) {
        let x = DenseVector::gaussian(rng, d);
        let dir = DenseVector::random_unit(rng, d);
        let y = x.add(&dir.scaled(delta));
        (x, y)
    }

    #[test]
    fn closed_form_matches_tent_integral() {
        let fam = ShiftedEuclideanDsh::new(4, 3, 1.0);
        for &delta in &[0.5, 1.0, 2.5, 6.0] {
            let w = 1.0;
            let k = 3.0;
            let num = adaptive_simpson(
                |t| (1.0 - (t / w - k).abs()).max(0.0) * normal::pdf(t / delta) / delta,
                (k - 1.0) * w,
                (k + 1.0) * w,
                1e-13,
            );
            assert!(
                (num - fam.cpf(delta)).abs() < 1e-10,
                "delta {delta}: {num} vs {}",
                fam.cpf(delta)
            );
        }
    }

    #[test]
    fn cpf_matches_monte_carlo() {
        let d = 6;
        let fam = ShiftedEuclideanDsh::new(d, 3, 1.0);
        let mut rng = seeded(161);
        for &delta in &[1.0, 2.0, 3.0, 6.0] {
            let (x, y) = pair_at_distance(&mut rng, d, delta);
            let est = CpfEstimator::new(60_000, 162).estimate_pair(&fam, &x, &y);
            assert!(
                est.contains(fam.cpf(delta)),
                "delta {delta}: want {}, got {} [{}, {}]",
                fam.cpf(delta),
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn figure1_shape() {
        // Figure 1 plots k = 3, w = 1: unimodal with peak value ~0.08 at
        // distance between 2 and 4, collision probability ~0 at 0 and a
        // slowly decaying right tail.
        let fam = ShiftedEuclideanDsh::new(4, 3, 1.0);
        let (peak_x, peak_v) = peak_of(&fam, 0.05, 10.0);
        assert!(
            (2.0..4.0).contains(&peak_x),
            "peak at {peak_x} (value {peak_v})"
        );
        assert!((0.05..0.10).contains(&peak_v), "peak value {peak_v}");
        assert!(fam.cpf(0.0) == 0.0);
        // Steep left flank, shallow right flank (the figure's asymmetry):
        let left = fam.cpf(peak_x * 0.5);
        let right = fam.cpf(peak_x * 1.5);
        assert!(left < right, "left {left} should be below right {right}");
    }

    #[test]
    fn unimodal_in_distance() {
        let fam = ShiftedEuclideanDsh::new(4, 2, 0.8);
        let vals: Vec<f64> = (1..=100).map(|i| fam.cpf(0.08 * i as f64)).collect();
        let peak = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        for wpair in vals[..=peak].windows(2) {
            assert!(wpair[0] <= wpair[1] + 1e-12);
        }
        for wpair in vals[peak..].windows(2) {
            assert!(wpair[0] >= wpair[1] - 1e-12);
        }
    }

    #[test]
    fn theorem_4_1_rho_approaches_inverse_c_squared() {
        let c = 2.0;
        let w = ShiftedEuclideanDsh::suggested_width(c);
        let mut prev_err = f64::INFINITY;
        for &k in &[2u32, 4, 8, 16, 32] {
            let fam = ShiftedEuclideanDsh::new(4, k, w);
            let rho = fam.rho_minus(1.0, c);
            let err = (rho * c * c - 1.0).abs();
            assert!(
                err <= prev_err + 0.05,
                "k={k}: error {err} grew from {prev_err}"
            );
            prev_err = err;
        }
        // At k = 32 the product rho * c^2 is within ~20% of 1.
        let fam = ShiftedEuclideanDsh::new(4, 32, w);
        let rho = fam.rho_minus(1.0, c);
        assert!((rho * c * c - 1.0).abs() < 0.2, "rho c^2 = {}", rho * c * c);
    }

    #[test]
    fn identical_points_never_collide() {
        let d = 5;
        let fam = ShiftedEuclideanDsh::new(d, 2, 1.0);
        let mut rng = seeded(163);
        let x = DenseVector::gaussian(&mut rng, d);
        for _ in 0..100 {
            assert!(!fam.sample(&mut rng).collides(&x, &x));
        }
    }

    #[test]
    fn ln_cpf_agrees_with_closed_form_in_moderate_regime() {
        let fam = ShiftedEuclideanDsh::new(4, 3, 1.0);
        for &delta in &[0.8, 1.5, 3.0, 6.0] {
            let direct = fam.cpf(delta).ln();
            let stable = fam.ln_cpf(delta);
            assert!(
                (direct - stable).abs() < 1e-6 * direct.abs().max(1.0),
                "delta {delta}: {direct} vs {stable}"
            );
        }
    }

    #[test]
    fn ln_cpf_finite_in_deep_tail() {
        // k = 32, w ~ 0.63, delta = 0.5: f ~ e^{-753}, far below f64.
        let w = ShiftedEuclideanDsh::suggested_width(2.0);
        let fam = ShiftedEuclideanDsh::new(4, 32, w);
        let v = fam.ln_cpf(0.5);
        assert!(v.is_finite());
        assert!(v < -500.0, "got {v}");
    }

    #[test]
    fn suggested_width_formula() {
        let w = ShiftedEuclideanDsh::suggested_width(2.0);
        assert!((w - (2.0 * std::f64::consts::PI).sqrt() / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shift must be positive")]
    fn zero_shift_rejected() {
        let _ = ShiftedEuclideanDsh::new(4, 0, 1.0);
    }
}

// Property-style tests over randomized parameter sweeps (seeded, so
// deterministic). These replace `proptest!` blocks: the crate is built
// offline and proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn cpf_is_a_probability() {
        let mut rng = seeded(0x5E1F);
        for _ in 0..256 {
            let k = rng.random_range(1u32..8);
            let w = rng.random_range(0.1f64..4.0);
            let delta = rng.random_range(0.0f64..50.0);
            let fam = ShiftedEuclideanDsh::new(4, k, w);
            let f = fam.cpf(delta);
            assert!((0.0..=1.0).contains(&f), "k={k} w={w}: f({delta}) = {f}");
        }
    }

    #[test]
    fn ln_cpf_consistent_with_cpf() {
        let mut rng = seeded(0x5E20);
        for _ in 0..256 {
            let k = rng.random_range(1u32..6);
            let w = rng.random_range(0.5f64..2.0);
            let delta = rng.random_range(0.5f64..20.0);
            let fam = ShiftedEuclideanDsh::new(4, k, w);
            let f = fam.cpf(delta);
            if f <= 1e-12 {
                continue;
            }
            let lf = fam.ln_cpf(delta);
            assert!(
                (lf - f.ln()).abs() < 1e-5 * f.ln().abs().max(1.0),
                "k={k} w={w} delta={delta}: {lf} vs {}",
                f.ln()
            );
        }
    }

    #[test]
    fn rho_minus_is_below_one() {
        let mut rng = seeded(0x5E21);
        for _ in 0..256 {
            let k = rng.random_range(2u32..10);
            let c = rng.random_range(1.2f64..4.0);
            let w = ShiftedEuclideanDsh::suggested_width(c);
            let fam = ShiftedEuclideanDsh::new(4, k, w);
            let rho = fam.rho_minus(1.0, c);
            assert!(rho > 0.0 && rho < 1.0, "k={k} c={c}: rho = {rho}");
        }
    }
}
