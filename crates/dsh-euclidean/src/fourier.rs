//! Random Fourier features: transporting sphere DSH constructions to
//! `l_s` spaces (the §2 remark citing Rahimi–Recht's embedding version of
//! Bochner's theorem applied to characteristic functions of `s`-stable
//! distributions).
//!
//! The map
//!
//! ```text
//! phi(x) = sqrt(2/D) * (cos(<w_1, x> + b_1), ..., cos(<w_D, x> + b_D)),
//! w_i  ~  (gamma * standard s-stable)^{x d},   b_i ~ U[0, 2 pi)
//! ```
//!
//! satisfies `E[<phi(x), phi(y)>] = exp(-(gamma ||x - y||_s)^s)` and
//! `||phi(x)|| ~ 1`, so after renormalization it carries points of
//! `(R^d, l_s)` onto the unit sphere with the inner product a fixed
//! decreasing function of the `l_s` distance. Composing with *any* sphere
//! family — e.g. the anti-LSH filter family `D-` — yields DSH families for
//! `l_s` with the corresponding (increasing, unimodal, ...) CPF shape in
//! the `l_s` distance.

use dsh_core::combinators::MapPoints;
use dsh_core::family::DshFamily;
use dsh_core::points::{self, DenseVector};
use dsh_math::{rng as drng, stable};
use rand::Rng;
use std::sync::Arc;

/// A sampled random-feature embedding `R^d -> S^{D-1}` for the `l_s`
/// kernel `exp(-(gamma delta)^s)`.
#[derive(Debug, Clone)]
pub struct FourierEmbedding {
    projections: Arc<Vec<(DenseVector, f64)>>,
    d: usize,
}

impl FourierEmbedding {
    /// Sample an embedding with `features` output dimensions, stability
    /// index `s` in `(0, 2]`, and bandwidth `gamma > 0`.
    pub fn sample(rng: &mut dyn Rng, d: usize, features: usize, s: f64, gamma: f64) -> Self {
        assert!(d > 0 && features > 0);
        assert!(gamma > 0.0);
        let projections = (0..features)
            .map(|_| {
                let w = DenseVector::new(
                    (0..d)
                        .map(|_| gamma * stable::sample_stable(rng, s))
                        .collect(),
                );
                let b = drng::uniform(rng, 2.0 * std::f64::consts::PI);
                (w, b)
            })
            .collect();
        FourierEmbedding {
            projections: Arc::new(projections),
            d,
        }
    }

    /// Number of output features `D`.
    pub fn features(&self) -> usize {
        self.projections.len()
    }

    /// Apply the embedding (normalized onto the unit sphere).
    pub fn embed(&self, x: &DenseVector) -> DenseVector {
        self.embed_row(x.as_slice())
    }

    /// [`FourierEmbedding::embed`] on a raw row.
    pub fn embed_row(&self, x: &[f64]) -> DenseVector {
        assert_eq!(x.len(), self.d, "dimension mismatch");
        let scale = (2.0 / self.projections.len() as f64).sqrt();
        let raw = DenseVector::new(
            self.projections
                .iter()
                .map(|(w, b)| scale * (points::dot(w.as_slice(), x) + b).cos())
                .collect(),
        );
        raw.normalized()
    }

    /// The kernel the embedding realizes in expectation:
    /// `k(delta) = exp(-(gamma * delta)^s)` as a function of the `l_s`
    /// distance `delta` (for the sampled `s`, `gamma`).
    pub fn kernel(gamma: f64, s: f64, delta: f64) -> f64 {
        assert!(delta >= 0.0);
        (-(gamma * delta).powf(s)).exp()
    }
}

/// Compose a sphere DSH family with a freshly sampled Fourier embedding at
/// every `sample()` call: the result is a DSH family over `(R^d, l_s)`
/// whose CPF is the sphere family's CPF evaluated at
/// `alpha ~ exp(-(gamma delta)^s)` (up to the `O(1/sqrt(D))` feature
/// noise).
pub struct KernelizedFamily<F> {
    inner: F,
    d: usize,
    features: usize,
    s: f64,
    gamma: f64,
}

impl<F> KernelizedFamily<F> {
    /// Wrap a sphere family (over `features`-dimensional unit vectors).
    pub fn new(inner: F, d: usize, features: usize, s: f64, gamma: f64) -> Self {
        assert!(s > 0.0 && s <= 2.0);
        assert!(gamma > 0.0);
        KernelizedFamily {
            inner,
            d,
            features,
            s,
            gamma,
        }
    }

    /// The kernel value at `l_s` distance `delta`.
    pub fn kernel(&self, delta: f64) -> f64 {
        FourierEmbedding::kernel(self.gamma, self.s, delta)
    }
}

impl<F: DshFamily<[f64]> + Clone + 'static> DshFamily<[f64]> for KernelizedFamily<F> {
    fn sample(&self, rng: &mut dyn Rng) -> dsh_core::family::HasherPair<[f64]> {
        let embedding = FourierEmbedding::sample(rng, self.d, self.features, self.s, self.gamma);
        let mapped = MapPoints::new("fourier", self.inner.clone(), move |x: &[f64]| {
            embedding.embed_row(x)
        });
        mapped.sample(rng)
    }

    fn name(&self) -> String {
        format!(
            "Kernelized[s={}, gamma={}]({})",
            self.s,
            self.gamma,
            self.inner.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::estimate::CpfEstimator;
    use dsh_math::rng::seeded;
    use dsh_math::stats::mean;

    fn pair_at_distance(
        rng: &mut dyn rand::Rng,
        d: usize,
        delta: f64,
    ) -> (DenseVector, DenseVector) {
        let x = DenseVector::gaussian(rng, d);
        let dir = DenseVector::random_unit(rng, d);
        (x.clone(), x.add(&dir.scaled(delta)))
    }

    #[test]
    fn embedding_realizes_gaussian_kernel() {
        // s = 2: <phi(x), phi(y)> ~ exp(-(gamma delta)^2) — the l2 case.
        let d = 8;
        let gamma = 0.5;
        let mut rng = seeded(0xF01);
        for &delta in &[0.5f64, 1.0, 2.0] {
            let (x, y) = pair_at_distance(&mut rng, d, delta);
            let samples: Vec<f64> = (0..300)
                .map(|_| {
                    let e = FourierEmbedding::sample(&mut rng, d, 256, 2.0, gamma);
                    e.embed(&x).dot(&e.embed(&y))
                })
                .collect();
            let want = FourierEmbedding::kernel(gamma, 2.0, delta);
            let got = mean(&samples);
            assert!((got - want).abs() < 0.03, "delta {delta}: {got} vs {want}");
        }
    }

    #[test]
    fn embedding_realizes_l1_kernel() {
        // s = 1 (Cauchy projections): kernel exp(-gamma ||x-y||_1).
        let d = 6;
        let gamma = 0.3;
        let mut rng = seeded(0xF02);
        let x = DenseVector::new(vec![0.5, -1.0, 0.0, 2.0, 0.3, -0.7]);
        let y = DenseVector::new(vec![0.0, -1.0, 1.0, 2.0, 0.3, 0.3]);
        let l1: f64 = x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let samples: Vec<f64> = (0..400)
            .map(|_| {
                let e = FourierEmbedding::sample(&mut rng, d, 256, 1.0, gamma);
                e.embed(&x).dot(&e.embed(&y))
            })
            .collect();
        let want = FourierEmbedding::kernel(gamma, 1.0, l1);
        let got = mean(&samples);
        assert!((got - want).abs() < 0.03, "{got} vs {want}");
    }

    #[test]
    fn embedded_vectors_are_unit() {
        let mut rng = seeded(0xF03);
        let e = FourierEmbedding::sample(&mut rng, 5, 128, 1.5, 1.0);
        let x = DenseVector::gaussian(&mut rng, 5);
        assert!((e.embed(&x).norm() - 1.0).abs() < 1e-10);
        assert_eq!(e.features(), 128);
    }

    #[test]
    fn kernelized_simhash_cpf_tracks_kernel() {
        // SimHash over the embedding: CPF ~ sim(exp(-(gamma delta)^2)).
        use dsh_sphere::SimHash;
        let d = 6;
        let features = 512;
        let gamma = 0.4;
        let fam = KernelizedFamily::new(SimHash::new(features), d, features, 2.0, gamma);
        let mut rng = seeded(0xF04);
        for &delta in &[0.5f64, 1.5, 3.0] {
            let (x, y) = pair_at_distance(&mut rng, d, delta);
            let est = CpfEstimator::new(3000, 0xF05).estimate_pair(&fam, &x, &y);
            let want = dsh_sphere::SimHash::sim(fam.kernel(delta));
            assert!(
                (est.estimate - want).abs() < 0.04,
                "delta {delta}: {} vs {want}",
                est.estimate
            );
        }
    }

    #[test]
    fn kernelized_anti_lsh_gives_increasing_euclidean_cpf() {
        // The §2 remark's payoff: the anti-LSH filter family D- composed
        // with the embedding yields an INCREASING CPF in l2 distance —
        // the "collide more when far" behaviour, now in Euclidean space
        // without the negation trick (which is impossible there).
        use dsh_sphere::FilterDshMinus;
        let d = 6;
        let features = 256;
        let fam = KernelizedFamily::new(FilterDshMinus::new(features, 1.0), d, features, 2.0, 0.4);
        let mut rng = seeded(0xF06);
        let mut prev = -1.0;
        for &delta in &[0.3f64, 1.5, 4.0] {
            let (x, y) = pair_at_distance(&mut rng, d, delta);
            let est = CpfEstimator::new(2500, 0xF07).estimate_pair(&fam, &x, &y);
            assert!(
                est.estimate >= prev - 0.02,
                "CPF should increase with distance: {} after {prev} at delta {delta}",
                est.estimate
            );
            prev = est.estimate;
        }
        assert!(
            prev > 0.03,
            "far points should collide noticeably, got {prev}"
        );
    }
}
