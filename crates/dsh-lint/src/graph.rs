//! The workspace call graph and reachability queries over it.
//!
//! Built directly from [`crate::resolve::Workspace`] facts: one node per
//! registered function, one edge per resolved call (or function
//! reference). Reachability is a multi-root BFS that keeps parent
//! pointers, so every reached function can report a *shortest* call
//! chain back to the root that discovered it — that chain is what L1'/
//! L2' findings print. Recursion cycles need no special handling: the
//! visited set makes the BFS terminate, and a cycle member's chain is
//! simply the shortest acyclic path in.

use crate::resolve::{FnId, Workspace};
use std::collections::VecDeque;

/// Adjacency-list call graph over [`Workspace::fns`].
pub struct Graph {
    pub adj: Vec<Vec<FnId>>,
}

impl Graph {
    /// Build from the workspace's resolved per-function facts.
    pub fn build(ws: &Workspace) -> Graph {
        Graph {
            adj: ws.facts.iter().map(|f| f.calls.clone()).collect(),
        }
    }

    /// Total number of call edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Multi-root BFS. Roots are deduplicated and visited in sorted
    /// order so chains are deterministic run-to-run.
    pub fn reach(&self, roots: &[FnId]) -> Reach {
        let n = self.adj.len();
        let mut visited = vec![false; n];
        let mut parent: Vec<Option<FnId>> = vec![None; n];
        let mut sorted: Vec<FnId> = roots.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in &sorted {
            if r < n && !visited[r] {
                visited[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if v < n && !visited[v] {
                    visited[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        Reach { visited, parent }
    }
}

/// The result of one reachability query.
pub struct Reach {
    /// Per-function: reached from some root?
    pub visited: Vec<bool>,
    /// BFS parent (None for roots and unreached nodes).
    pub parent: Vec<Option<FnId>>,
}

impl Reach {
    /// Shortest root-to-`id` call chain (root first, `id` last).
    /// Returns an empty chain if `id` was not reached.
    pub fn chain(&self, id: FnId) -> Vec<FnId> {
        if !self.visited.get(id).copied().unwrap_or(false) {
            return Vec::new();
        }
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Render a chain as `shard.rs:query → points.rs:dot`.
    pub fn chain_display(&self, ws: &Workspace, id: FnId) -> String {
        self.chain(id)
            .iter()
            .map(|&f| ws.chain_label(f))
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Workspace;

    fn ws(src: &str) -> Workspace {
        Workspace::build(&[("crates/a/src/lib.rs".to_string(), src.to_string())])
    }

    fn id_of(w: &Workspace, name: &str) -> FnId {
        w.fns.iter().position(|f| f.func.name == name).unwrap()
    }

    #[test]
    fn two_hop_chain_is_recovered() {
        let w = ws("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n");
        let g = Graph::build(&w);
        let (a, b, c) = (id_of(&w, "a"), id_of(&w, "b"), id_of(&w, "c"));
        let r = g.reach(&[a]);
        assert!(r.visited[c]);
        assert_eq!(r.chain(c), vec![a, b, c]);
        assert_eq!(r.chain_display(&w, c), "lib.rs:a → lib.rs:b → lib.rs:c");
    }

    #[test]
    fn recursion_terminates_and_cycle_members_have_chains() {
        let w = ws("fn a() { b(); }\nfn b() { a(); c(); }\nfn c() { c(); }\n");
        let g = Graph::build(&w);
        let (a, c) = (id_of(&w, "a"), id_of(&w, "c"));
        let r = g.reach(&[a]);
        assert!(r.visited[c]);
        assert_eq!(r.chain(c).first(), Some(&a));
    }

    #[test]
    fn unreached_nodes_report_empty_chain() {
        let w = ws("fn a() {}\nfn b() {}\n");
        let g = Graph::build(&w);
        let r = g.reach(&[id_of(&w, "a")]);
        assert!(r.chain(id_of(&w, "b")).is_empty());
    }

    #[test]
    fn shortest_chain_wins_with_multiple_roots() {
        let w = ws("fn r1() { mid(); }\nfn mid() { leaf(); }\nfn r2() { leaf(); }\nfn leaf() {}\n");
        let g = Graph::build(&w);
        let (r1, r2, leaf) = (id_of(&w, "r1"), id_of(&w, "r2"), id_of(&w, "leaf"));
        let r = g.reach(&[r1, r2]);
        assert_eq!(r.chain(leaf), vec![r2, leaf], "direct root is closer");
    }
}
