//! CLI for the workspace linter: `cargo run -p dsh-lint -- check [--root PATH]`.
//!
//! Exit codes: 0 = clean, 1 = findings printed (one per line, as
//! `<file>:<line>: <lint-id> <message>`), 2 = usage / IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        return usage("missing subcommand");
    };
    if cmd != "check" {
        return usage(&format!("unknown subcommand `{cmd}`"));
    }
    // Default root: the workspace this binary lives in, so `cargo run -p
    // dsh-lint -- check` works from any directory.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cfg = dsh_lint::Config::repo_default();
    match dsh_lint::check_workspace(&root, &cfg) {
        Ok(findings) if findings.is_empty() => {
            println!("dsh-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("dsh-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("dsh-lint: error walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("dsh-lint: {err}");
    eprintln!("usage: dsh-lint check [--root PATH]");
    ExitCode::from(2)
}
