//! CLI for the workspace linter:
//! `cargo run -p dsh-lint -- check [--root PATH] [--format text|json|github]`.
//!
//! Reads `dsh-lint.toml` from the root (empty config when absent; exit 2
//! when it parses badly or names a module that does not exist).
//!
//! Formats:
//! * `text` (default) — one `<file>:<line>: <lint-id> <message>` per
//!   line, then a one-line files/functions/edges stats summary;
//! * `github` — GitHub Actions `::error file=...,line=...::` annotations,
//!   then the stats summary;
//! * `json` — a single `{"findings":[...],"stats":{...}}` object with
//!   stable finding ids and call chains.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage / IO / config error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        return usage("missing subcommand");
    };
    if cmd != "check" {
        return usage(&format!("unknown subcommand `{cmd}`"));
    }
    // Default root: the workspace this binary lives in, so `cargo run -p
    // dsh-lint -- check` works from any directory.
    let mut root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut format = Format::Text;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format requires text|json|github"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let started = Instant::now();
    let cfg = match dsh_lint::load_config(&root) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("dsh-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match dsh_lint::check_workspace(&root, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dsh-lint: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();
    let s = report.stats;
    let stats_line = format!(
        "dsh-lint: {} finding(s) · {} files · {} functions · {} call edges · {elapsed_ms} ms",
        s.findings, s.files, s.functions, s.edges
    );

    match format {
        Format::Text => {
            if report.findings.is_empty() {
                println!("dsh-lint: clean");
            }
            for f in &report.findings {
                println!("{f}");
            }
            println!("{stats_line}");
        }
        Format::Github => {
            for f in &report.findings {
                println!(
                    "::error file={},line={},title={}::{} {}",
                    f.file,
                    f.line,
                    f.id(),
                    f.lint,
                    f.message.replace(['\n', '\r'], " ")
                );
            }
            println!("{stats_line}");
        }
        Format::Json => {
            println!("{}", report.to_json());
        }
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("dsh-lint: {err}");
    eprintln!("usage: dsh-lint check [--root PATH] [--format text|json|github]");
    ExitCode::from(2)
}
