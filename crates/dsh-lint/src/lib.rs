//! `dsh-lint` — repo-specific static analysis for the dsh workspace.
//!
//! A pure-`std`, zero-dependency lint pass (no `syn`, no registry crates —
//! the build environment is offline) built from a hand-rolled Rust lexer
//! ([`lexer`]), a brace/function-scope parser ([`scope`]), a
//! whole-workspace symbol resolver ([`resolve`]), and a call graph
//! ([`graph`]). The headline lints are interprocedural: panic-freedom and
//! hot-path allocation-freedom are *reachability* properties proven over
//! the workspace as one program, not per-file token scans.
//!
//! | id | lint | escape hatch |
//! |----|------|--------------|
//! | L1 | no serving entry point reaches a panic site (`unwrap`/`expect`/`panic!`/`assert!`-family) on any call path, workspace-wide | `// lint: allow(panic) — <reason>` at the site |
//! | L2 | nothing reachable from a `// lint: hot` marker allocates; markers on already-hot functions are redundant | `allow(alloc)` at the site, `allow(hot)` on the marker |
//! | C1 | a macro the resolver cannot see through is reachable from a serving entry or hot root ("cannot prove") | `allow(opaque)` |
//! | L3 | every public `&mut self` method on the configured index type reaches `publish` on all return paths; no publication-cell guard live across clone/seal/compact | `allow(publish)` / `allow(guard)` |
//! | L4 | crate roots carry `#![forbid(unsafe_code)]` (`deny` for kernel crates); every `unsafe` token has a `// SAFETY:` comment within 3 lines | the `SAFETY:` comment |
//! | L5 | `unsafe` only inside modules listed under `[kernel] modules` | `allow(unsafe)` |
//! | M1 | malformed `lint:` marker | fix the marker |
//! | M2 | a `lint: allow(...)` that suppresses no finding | remove it |
//!
//! Module sets live in `dsh-lint.toml` at the workspace root (see
//! [`config`]); a configured path that does not exist fails the run
//! loudly. Run with `cargo run -p dsh-lint -- check [--format
//! text|json|github]`; text output is one finding per line:
//! `<file>:<line>: <lint-id> <message>`. Exit 0 = clean, 1 = findings,
//! 2 = usage/config error.

#![forbid(unsafe_code)]

pub mod config;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod resolve;
pub mod scope;

pub use config::{Config, ConfigError, PublicationSpec};

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding. Renders as `<file>:<line>: <lint> <message>`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
    /// Stable site descriptor (line-number-free), hashed into [`Finding::id`].
    pub site: String,
    /// Call chain for interprocedural findings (`shard.rs:query`, ...);
    /// empty for file-local ones.
    pub chain: Vec<String>,
}

impl Finding {
    pub fn new(file: &str, line: u32, lint: &'static str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            lint,
            message,
            site: String::new(),
            chain: Vec::new(),
        }
    }

    /// Stable finding id: FNV-1a over lint, file, and the line-free site
    /// descriptor (falling back to the message with digits stripped), so
    /// ids survive unrelated edits that only shift line numbers.
    pub fn id(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.lint.as_bytes());
        eat(b"|");
        eat(self.file.as_bytes());
        eat(b"|");
        if self.site.is_empty() {
            for c in self.message.chars().filter(|c| !c.is_ascii_digit()) {
                eat(c.to_string().as_bytes());
            }
        } else {
            eat(self.site.as_bytes());
        }
        format!("{}-{:012x}", self.lint, h & 0xffff_ffff_ffff)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Workspace-size counters for the stats line.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    pub files: usize,
    pub functions: usize,
    pub edges: usize,
    pub findings: usize,
}

/// A full lint run: sorted findings plus workspace stats.
pub struct Report {
    pub findings: Vec<Finding>,
    pub stats: Stats,
}

impl Report {
    /// Serialize to JSON (hand-rolled; no serde in the offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"id\":{},\"file\":{},\"line\":{},\"lint\":{},\"message\":{},\"chain\":[{}]}}",
                json_str(&f.id()),
                json_str(&f.file),
                f.line,
                json_str(f.lint),
                json_str(&f.message),
                f.chain
                    .iter()
                    .map(|c| json_str(c))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        s.push_str(&format!(
            "],\"stats\":{{\"files\":{},\"functions\":{},\"edges\":{},\"findings\":{}}}}}",
            self.stats.files, self.stats.functions, self.stats.edges, self.stats.findings
        ));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lint a set of in-memory `(rel_path, source)` files as one workspace.
pub fn check_sources(sources: &[(String, String)], cfg: &Config) -> Report {
    let ws = resolve::Workspace::build(sources);
    let (mut findings, edges) = lints::run(&ws, cfg);
    findings.sort();
    findings.dedup();
    let stats = Stats {
        files: ws.files.len(),
        functions: ws.fns.len(),
        edges,
        findings: findings.len(),
    };
    Report { findings, stats }
}

/// Lint one file's source text in isolation. `rel_path` selects which
/// lints apply (serving-path membership, crate-root checks) — pass
/// repo-relative paths with forward slashes.
pub fn check_file_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    check_sources(&[(rel_path.to_string(), source.to_string())], cfg).findings
}

/// Load `dsh-lint.toml` from `root` (falling back to [`Config::empty`]
/// when absent) and fail loudly — `InvalidData` — on parse errors or
/// configured module paths that do not exist under `root`.
pub fn load_config(root: &Path) -> io::Result<Config> {
    let path = root.join("dsh-lint.toml");
    if !path.is_file() {
        return Ok(Config::empty());
    }
    let text = fs::read_to_string(&path)?;
    let cfg = Config::from_toml(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    cfg.validate_paths(root)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(cfg)
}

/// Walk a workspace root and lint every `.rs` file under `src/`,
/// `crates/`, `tests/`, and `examples/`, skipping `target/`, `vendor/`
/// (API-subset shims, out of scope), and lint fixture corpora. Findings
/// come back sorted by (file, line).
pub fn check_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut files = BTreeSet::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut sources = Vec::new();
    for path in files {
        let rel = rel_path(root, &path);
        let source = fs::read_to_string(&path)?;
        sources.push((rel, source));
    }
    Ok(check_sources(&sources, cfg))
}

fn walk(dir: &Path, out: &mut BTreeSet<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.insert(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_is_machine_readable() {
        let f = Finding::new("crates/x/src/lib.rs", 12, "L1", "boom".to_string());
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:12: L1 boom");
    }

    #[test]
    fn finding_ids_are_stable_across_line_shifts() {
        let a = Finding {
            site: "panic:`.unwrap()`:shard.rs:query".to_string(),
            ..Finding::new("crates/x/src/lib.rs", 12, "L1", "x at line 12".to_string())
        };
        let b = Finding {
            site: "panic:`.unwrap()`:shard.rs:query".to_string(),
            ..Finding::new("crates/x/src/lib.rs", 99, "L1", "x at line 99".to_string())
        };
        assert_eq!(a.id(), b.id());
        assert!(a.id().starts_with("L1-"), "{}", a.id());
    }

    #[test]
    fn finding_ids_differ_by_site() {
        let a = Finding {
            site: "panic:`.unwrap()`:a".to_string(),
            ..Finding::new("f.rs", 1, "L1", String::new())
        };
        let b = Finding {
            site: "panic:`.expect()`:a".to_string(),
            ..Finding::new("f.rs", 1, "L1", String::new())
        };
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let report = Report {
            findings: vec![Finding {
                site: "s".to_string(),
                chain: vec!["a.rs:f".to_string()],
                ..Finding::new("x.rs", 3, "L1", "say \"hi\"".to_string())
            }],
            stats: Stats {
                files: 1,
                functions: 2,
                edges: 3,
                findings: 1,
            },
        };
        let j = report.to_json();
        assert!(j.contains("\"say \\\"hi\\\"\""), "{j}");
        assert!(j.contains("\"chain\":[\"a.rs:f\"]"), "{j}");
        assert!(j.contains("\"edges\":3"), "{j}");
    }

    #[test]
    fn rel_path_uses_forward_slashes() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/x/src/lib.rs");
        assert_eq!(rel_path(root, p), "crates/x/src/lib.rs");
    }
}
