//! `dsh-lint` — repo-specific static analysis for the dsh workspace.
//!
//! A pure-`std`, zero-dependency lint pass (no `syn`, no registry crates —
//! the build environment is offline) built from a hand-rolled Rust lexer
//! ([`lexer`]) and a lightweight brace/function-scope parser ([`scope`]).
//! It mechanically enforces the invariants that PRs 4–5 documented only in
//! comments:
//!
//! | id | lint | escape hatch |
//! |----|------|--------------|
//! | L1 | panic-freedom on serving-path modules (`shard.rs`, `table.rs`, `dynamic.rs`, `parallel.rs`): no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`unreachable!`/`assert!` family outside tests | `// lint: allow(panic) — <reason>` |
//! | L2 | no allocation-shaped calls inside functions marked `// lint: hot` | `// lint: allow(alloc) — <reason>` |
//! | L3 | every public `&mut self` method on `ShardedIndex` reaches `publish` on all return paths, and no publication-cell `.read()`/`.write()` guard is live across a shard clone / seal / compact | `// lint: allow(publish)` / `// lint: allow(guard)` |
//! | L4 | crate roots carry `#![forbid(unsafe_code)]`; any `unsafe` token needs a `// SAFETY:` comment within 3 lines | the `SAFETY:` comment itself |
//! | M1 | `lint:` comment that parses as neither `hot` nor `allow(<id>) — <reason>` | fix the marker |
//!
//! Run it over the workspace with `cargo run -p dsh-lint -- check`; output
//! is machine-readable, one finding per line: `<file>:<line>: <lint-id>
//! <message>`. Exit code 0 = clean, 1 = findings, 2 = usage error.
//!
//! `debug_assert!` is deliberately *not* flagged by L1: the debug asserts
//! are the dynamic complement to this static pass and compile out of
//! release serving builds.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
pub mod scope;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding. Renders as `<file>:<line>: <lint> <message>`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, lint: &'static str, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            lint,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Where the publication-discipline lint (L3) applies.
pub struct PublicationSpec {
    /// Path suffix of the file holding the publication protocol.
    pub file_suffix: String,
    /// Self type whose public `&mut self` methods must publish.
    pub type_name: String,
    /// The method every write path must reach.
    pub publish_method: String,
    /// Field names of the publication cell (`.read()`/`.write()` on a
    /// chain mentioning one of these is treated as a cell guard).
    pub cell_fields: Vec<String>,
}

/// Lint configuration. [`Config::repo_default`] encodes this repository's
/// serving-path layout; tests construct custom configs to aim the lints at
/// fixture paths.
pub struct Config {
    /// Path suffixes of serving-path modules subject to L1.
    pub serving_suffixes: Vec<String>,
    /// L3 target, or `None` to disable the publication lint.
    pub publication: Option<PublicationSpec>,
}

impl Config {
    /// The configuration for this repository: L1 over the dsh-index
    /// serving modules, L3 over `ShardedIndex` in `shard.rs`.
    pub fn repo_default() -> Self {
        Config {
            serving_suffixes: vec![
                "crates/dsh-index/src/shard.rs".to_string(),
                "crates/dsh-index/src/table.rs".to_string(),
                "crates/dsh-index/src/dynamic.rs".to_string(),
                "crates/dsh-index/src/parallel.rs".to_string(),
            ],
            publication: Some(PublicationSpec {
                file_suffix: "crates/dsh-index/src/shard.rs".to_string(),
                type_name: "ShardedIndex".to_string(),
                publish_method: "publish".to_string(),
                cell_fields: vec!["published".to_string(), "cell".to_string()],
            }),
        }
    }
}

/// Lint one file's source text. `rel_path` selects which lints apply
/// (serving-path membership, crate-root checks) — pass repo-relative
/// paths with forward slashes.
pub fn check_file_source(rel_path: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let scope = scope::FileScope::parse(source);
    let mut findings = lints::check_file(rel_path, &scope, cfg);
    findings.sort();
    findings
}

/// Walk a workspace root and lint every `.rs` file under `src/`,
/// `crates/`, `tests/`, and `examples/`, skipping `target/`, `vendor/`
/// (API-subset shims, out of scope), and lint fixture corpora. Findings
/// come back sorted by (file, line).
pub fn check_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut files = BTreeSet::new();
    for top in ["src", "crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = rel_path(root, &path);
        let source = fs::read_to_string(&path)?;
        findings.extend(check_file_source(&rel, &source, cfg));
    }
    findings.sort();
    Ok(findings)
}

fn walk(dir: &Path, out: &mut BTreeSet<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.insert(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_is_machine_readable() {
        let f = Finding::new("crates/x/src/lib.rs", 12, "L1", "boom".to_string());
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:12: L1 boom");
    }

    #[test]
    fn rel_path_uses_forward_slashes() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/x/src/lib.rs");
        assert_eq!(rel_path(root, p), "crates/x/src/lib.rs");
    }
}
