//! A hand-rolled Rust lexer sufficient for token-level lint analysis.
//!
//! This is deliberately **not** a full Rust lexer — it is the minimal
//! tokenizer that makes the lint passes in [`crate::lints`] sound against
//! the constructs that defeat naive `grep`-style scanning:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//!   kept as [`TokenKind::Comment`] tokens so marker/annotation comments
//!   (`// lint: hot`, `// lint: allow(...)`, `// SAFETY:`) stay addressable;
//! * string literals with escapes, raw strings with arbitrary `#` fences
//!   (`r"…"`, `r#"…"#`, `br##"…"##`), byte strings, and char literals —
//!   so `".unwrap()"` inside a string, or a `'{'` char literal, can never
//!   produce a phantom token or desynchronize brace matching;
//! * lifetimes vs char literals (`'a` vs `'a'`), including escaped chars;
//! * raw identifiers (`r#fn` lexes as the identifier `fn` flagged raw,
//!   never as the keyword).
//!
//! Numbers, identifiers, and punctuation are tokenized coarsely (one
//! punct char per token); the scope parser in [`crate::scope`] works on
//! that granularity.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `self`, ...). Raw
    /// identifiers (`r#type`) are lexed as `Ident` with `raw = true`.
    Ident,
    /// A lifetime (`'a`, `'static`), text without the leading quote.
    Lifetime,
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
    /// One punctuation character (`.`, `!`, `&`, `:`, `#`, ...).
    Punct,
    /// `{`
    OpenBrace,
    /// `}`
    CloseBrace,
    /// `(`
    OpenParen,
    /// `)`
    CloseParen,
    /// `[`
    OpenBracket,
    /// `]`
    CloseBracket,
    /// A whole comment, text included (`// ...` or `/* ... */`).
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// The token text. For comments this is the full comment including
    /// delimiters; for string/char literals it includes the quotes; for
    /// lifetimes it excludes the leading `'`.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// True for raw identifiers (`r#ident`).
    pub raw: bool,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: u32) -> Self {
        Token {
            kind,
            text: text.into(),
            line,
            raw: false,
        }
    }

    /// True when the token is the identifier `name` (raw or not).
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Character cursor with line tracking.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into a token stream. Never fails: malformed input (e.g. an
/// unterminated string at EOF) produces a best-effort literal token so
/// the lint pass can still run over the rest of the workspace.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                out.push(Token::new(TokenKind::Comment, line_comment(&mut cur), line));
            }
            '/' if cur.peek_at(1) == Some('*') => {
                out.push(Token::new(
                    TokenKind::Comment,
                    block_comment(&mut cur),
                    line,
                ));
            }
            '"' => out.push(Token::new(
                TokenKind::Literal,
                string_literal(&mut cur),
                line,
            )),
            '\'' => out.push(char_or_lifetime(&mut cur, line)),
            'r' | 'b' => out.push(r_or_b_prefixed(&mut cur, line)),
            c if c.is_ascii_digit() => {
                out.push(Token::new(TokenKind::Literal, number(&mut cur), line));
            }
            c if is_ident_start(c) => {
                out.push(Token::new(TokenKind::Ident, ident(&mut cur), line));
            }
            '{' => {
                cur.bump();
                out.push(Token::new(TokenKind::OpenBrace, "{", line));
            }
            '}' => {
                cur.bump();
                out.push(Token::new(TokenKind::CloseBrace, "}", line));
            }
            '(' => {
                cur.bump();
                out.push(Token::new(TokenKind::OpenParen, "(", line));
            }
            ')' => {
                cur.bump();
                out.push(Token::new(TokenKind::CloseParen, ")", line));
            }
            '[' => {
                cur.bump();
                out.push(Token::new(TokenKind::OpenBracket, "[", line));
            }
            ']' => {
                cur.bump();
                out.push(Token::new(TokenKind::CloseBracket, "]", line));
            }
            c => {
                cur.bump();
                out.push(Token::new(TokenKind::Punct, c.to_string(), line));
            }
        }
    }
    out
}

fn line_comment(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        s.push(c);
        cur.bump();
    }
    s
}

fn block_comment(cur: &mut Cursor) -> String {
    let mut s = String::new();
    // Consume the opening `/*`.
    s.push(cur.bump().unwrap_or_default());
    s.push(cur.bump().unwrap_or_default());
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                s.push(cur.bump().unwrap_or_default());
                s.push(cur.bump().unwrap_or_default());
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                s.push(cur.bump().unwrap_or_default());
                s.push(cur.bump().unwrap_or_default());
            }
            (Some(c), _) => {
                s.push(c);
                cur.bump();
            }
            (None, _) => break, // unterminated at EOF: tolerate
        }
    }
    s
}

/// A `"…"` string with `\` escapes; the cursor sits on the opening quote.
fn string_literal(cur: &mut Cursor) -> String {
    let mut s = String::new();
    s.push(cur.bump().unwrap_or_default()); // opening "
    while let Some(c) = cur.bump() {
        s.push(c);
        match c {
            '\\' => {
                if let Some(e) = cur.bump() {
                    s.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    s
}

/// A raw string; the cursor sits on the first `#` or `"` after the `r`
/// prefix (already consumed into `prefix`).
fn raw_string(cur: &mut Cursor, mut prefix: String) -> String {
    let mut hashes = 0usize;
    while cur.eat('#') {
        prefix.push('#');
        hashes += 1;
    }
    if !cur.eat('"') {
        return prefix; // not actually a raw string; tolerate
    }
    prefix.push('"');
    loop {
        match cur.bump() {
            None => break, // unterminated at EOF: tolerate
            Some('"') => {
                prefix.push('"');
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    prefix.push('#');
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(c) => prefix.push(c),
        }
    }
    prefix
}

/// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` / `'{'` (char).
fn char_or_lifetime(cur: &mut Cursor, line: u32) -> Token {
    cur.bump(); // the opening '
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            let mut s = String::from("'");
            while let Some(c) = cur.bump() {
                s.push(c);
                if c == '\\' {
                    if let Some(e) = cur.bump() {
                        s.push(e);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            Token::new(TokenKind::Literal, s, line)
        }
        Some(c) if is_ident_start(c) => {
            // Could be `'a'` (char) or `'abc` (lifetime): consume the
            // ident run, then look for a closing quote.
            let mut name = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    name.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.eat('\'') {
                Token::new(TokenKind::Literal, format!("'{name}'"), line)
            } else {
                Token::new(TokenKind::Lifetime, name, line)
            }
        }
        Some(c) => {
            // Non-ident char literal: `'{'`, `'3'`, `' '`, ...
            cur.bump();
            let closed = cur.eat('\'');
            let mut s = format!("'{c}");
            if closed {
                s.push('\'');
            }
            Token::new(TokenKind::Literal, s, line)
        }
        None => Token::new(TokenKind::Punct, "'", line),
    }
}

/// Tokens starting with `r` or `b`: raw strings, byte strings, byte
/// chars, raw identifiers, or plain identifiers starting with r/b.
fn r_or_b_prefixed(cur: &mut Cursor, line: u32) -> Token {
    let c0 = cur.peek().unwrap_or_default();
    let c1 = cur.peek_at(1);
    match (c0, c1) {
        // r"..." or r#"..."#
        ('r', Some('"')) => {
            cur.bump();
            Token::new(TokenKind::Literal, raw_string(cur, "r".into()), line)
        }
        ('r', Some('#')) => {
            // r#"..."# (raw string) vs r#ident (raw identifier).
            if cur.peek_at(2).is_some_and(|c| c == '"' || c == '#') {
                cur.bump();
                Token::new(TokenKind::Literal, raw_string(cur, "r".into()), line)
            } else {
                cur.bump(); // r
                cur.bump(); // #
                let mut t = Token::new(TokenKind::Ident, ident(cur), line);
                t.raw = true;
                t
            }
        }
        // b"..." / b'x' / br"..." / br#"..."#
        ('b', Some('"')) => {
            cur.bump();
            cur.bump();
            let mut s = string_literal_tail(cur);
            s.insert_str(0, "b\"");
            Token::new(TokenKind::Literal, s, line)
        }
        ('b', Some('\'')) => {
            cur.bump();
            let t = char_or_lifetime(cur, line);
            Token::new(TokenKind::Literal, format!("b{}", t.text), line)
        }
        ('b', Some('r')) if matches!(cur.peek_at(2), Some('"') | Some('#')) => {
            cur.bump();
            cur.bump();
            Token::new(TokenKind::Literal, raw_string(cur, "br".into()), line)
        }
        _ => Token::new(TokenKind::Ident, ident(cur), line),
    }
}

/// The tail of a `"…"` string after the opening quote has been consumed.
fn string_literal_tail(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.bump() {
        s.push(c);
        match c {
            '\\' => {
                if let Some(e) = cur.bump() {
                    s.push(e);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    s
}

fn ident(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

/// A numeric literal, coarsely: digits, `_`, type suffixes, hex/oct/bin
/// bodies, a fraction only when `.` is followed by a digit (so `0..n`
/// range syntax stays two punct tokens), and signed exponents.
fn number(cur: &mut Cursor) -> String {
    let mut s = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            s.push(c);
            cur.bump();
            // Signed exponent: `1e-5`, `2.5E+10`.
            if (c == 'e' || c == 'E')
                && matches!(cur.peek(), Some('+') | Some('-'))
                && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                && !s.starts_with("0x")
                && !s.starts_with("0b")
                && !s.starts_with("0o")
            {
                s.push(cur.bump().unwrap_or_default());
            }
        } else if c == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) && !s.contains('.')
        {
            s.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // `.unwrap()` inside a string must not produce ident tokens.
        assert_eq!(idents(r#"let s = "x.unwrap()";"#), vec!["let", "s"]);
        // Escaped quotes do not terminate early.
        assert_eq!(
            idents(r#"let s = "a\".unwrap()\"b"; y"#),
            vec!["let", "s", "y"]
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"contains "quotes" and .unwrap()"#; tail"####;
        assert_eq!(idents(src), vec!["let", "s", "tail"]);
        let src2 = "let s = r\"plain raw .unwrap()\"; tail";
        assert_eq!(idents(src2), vec!["let", "s", "tail"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        assert_eq!(
            idents(r#"let s = b"unwrap"; let c = b'u'; tail"#),
            vec!["let", "s", "let", "c", "tail"]
        );
        let src = r###"let s = br#"raw bytes"#; tail"###;
        assert_eq!(idents(src), vec!["let", "s", "tail"]);
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = lex("// x.unwrap()\nlet y = 1; /* panic!() */ z");
        let comment_count = toks.iter().filter(|t| t.kind == TokenKind::Comment).count();
        assert_eq!(comment_count, 2);
        assert_eq!(
            idents("// x.unwrap()\nlet y = 1; /* panic!() */ z"),
            vec!["let", "y", "z"]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("/* outer /* inner */ still comment */ code"),
            vec!["code"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let b = '{'; let s = 'static_life; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static_life"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text.starts_with('\''))
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'x'", "'{'"]);
    }

    #[test]
    fn escaped_char_literals() {
        assert_eq!(
            idents(r"let c = '\n'; let q = '\''; let u = '\u{1F600}'; tail"),
            vec!["let", "c", "let", "q", "let", "u", "tail"]
        );
    }

    #[test]
    fn brace_chars_do_not_unbalance() {
        // One open + one close from code; the literals contribute none.
        let toks = lex("{ let a = '{'; let b = \"}}}\"; }");
        let opens = toks
            .iter()
            .filter(|t| t.kind == TokenKind::OpenBrace)
            .count();
        let closes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::CloseBrace)
            .count();
        assert_eq!((opens, closes), (1, 1));
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#fn = 1; r#unwrap");
        let raws: Vec<_> = toks
            .iter()
            .filter(|t| t.raw)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(raws, vec!["fn", "unwrap"]);
    }

    #[test]
    fn numbers_and_ranges() {
        // `0..n` must not swallow the range dots as a fraction.
        let k = kinds("for i in 0..n {}");
        assert!(k.contains(&(TokenKind::Punct, ".".into())));
        assert_eq!(
            idents("let x = 1.5e-3f64; let y = 0xFF_u8;"),
            vec!["let", "x", "let", "y"]
        );
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        let _ = lex("let s = \"unterminated");
        let _ = lex("let s = r#\"unterminated");
        let _ = lex("/* unterminated");
        let _ = lex("let c = '");
    }
}
