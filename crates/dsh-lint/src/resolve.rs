//! Whole-workspace symbol resolution: from per-file token streams to a
//! symbol table and per-function facts (calls, panic sites, allocation
//! sites, opaque macros) that [`crate::graph`] turns into reachability.
//!
//! ## Resolution model
//!
//! The resolver is heuristic and deliberately *conservative in the
//! direction of more edges* where it matters for the serving-path lints:
//!
//! * `self.method()` resolves through the enclosing impl's self type;
//! * `self.field.method()` resolves through a struct-field type table
//!   built from every `struct` definition in the workspace, with
//!   transparent wrappers (`Arc`/`Rc`/`Box`) stripped — so
//!   `Arc<dyn PointHasher<P>>` dispatches to every workspace
//!   implementation of `PointHasher` (conservative trait fan-out);
//! * `let x: T` / `let x = T::new(..)` / parameter types feed a local
//!   variable-type map;
//! * receivers that resolve to std types, primitives, slices, or
//!   literals are cut off (no edge): `.len()`/`.push()` on a `Vec` field
//!   never links to a workspace function that happens to share the name;
//! * receivers we cannot type at all fall back to *every* workspace
//!   method of that name (trait/dyn-dispatch fallback);
//! * free calls resolve same-file first (shadowing), then to all free
//!   functions of that name anywhere in the workspace; `Type::assoc()`
//!   paths resolve through the type table, and `Trait::method()` through
//!   the trait table; paths rooted at `std`/`core`/`alloc` are external;
//! * `Type::method` mentioned *without* a call (a function reference
//!   passed to `map`, say) still contributes an edge;
//! * macro bodies are walked like ordinary code, and any macro that is
//!   not on the known-benign list is additionally recorded as an opaque
//!   site — the lints report "cannot prove" (C1) when one is reachable.
//!
//! What it does not do: no type inference across function returns, no
//! generic instantiation, no macro expansion. Those show up either as
//! the conservative name fallback or as C1 findings, never as silence.

use crate::lexer::{Token, TokenKind};
use crate::scope::{FileScope, Function};
use std::collections::{BTreeSet, HashMap};

/// Index into [`Workspace::fns`].
pub type FnId = usize;

/// Transparent smart-pointer wrappers stripped when typing a receiver.
const WRAPPERS: [&str; 3] = ["Arc", "Rc", "Box"];

/// Std / external container types: a receiver of one of these never
/// links to a workspace function (methods on them are std methods).
const STD_TYPES: [&str; 40] = [
    "Vec",
    "String",
    "HashMap",
    "BTreeMap",
    "HashSet",
    "BTreeSet",
    "VecDeque",
    "BinaryHeap",
    "Option",
    "Result",
    "Arc",
    "Rc",
    "Box",
    "RwLock",
    "Mutex",
    "RefCell",
    "Cell",
    "Condvar",
    "AtomicUsize",
    "AtomicU64",
    "AtomicU32",
    "AtomicBool",
    "AtomicPtr",
    "Ordering",
    "Instant",
    "Duration",
    "PathBuf",
    "Path",
    "OsString",
    "Cow",
    "Wrapping",
    "Reverse",
    "Range",
    "PhantomData",
    "ManuallyDrop",
    "MaybeUninit",
    "JoinHandle",
    "Sender",
    "Receiver",
    "RandomState",
];

/// Macros that panic: their invocation is a panic site (L1').
pub const PANIC_MACROS: [&str; 7] = [
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Macros that allocate: their invocation is an allocation site (L2').
pub const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Macros known not to hide panics or allocations relevant to the hot
/// path (`debug_assert*` compiles out of release builds by policy).
/// Anything not listed here, in [`PANIC_MACROS`], or in [`ALLOC_MACROS`]
/// is treated as opaque — a C1 "cannot prove" site.
const BENIGN_MACROS: [&str; 16] = [
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
    "write",
    "writeln",
    "println",
    "eprintln",
    "print",
    "eprint",
    "format_args",
    "cfg",
    "concat",
    "env",
    "include_str",
    "stringify",
];

/// Methods that panic (L1' sites); never call edges.
pub const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Methods that allocate (L2' sites); never call edges.
pub const ALLOC_METHODS: [&str; 5] = ["to_vec", "collect", "clone", "to_string", "to_owned"];

/// Path-form constructors that allocate: `Vec::new(`, `Box::new(`, ...
pub const ALLOC_TYPES: [&str; 5] = ["Vec", "Box", "String", "HashMap", "BTreeMap"];
pub const ALLOC_CTORS: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];

const KEYWORDS: [&str; 30] = [
    "if", "while", "match", "for", "loop", "return", "let", "in", "as", "move", "ref", "break",
    "continue", "else", "fn", "impl", "use", "pub", "mod", "where", "unsafe", "dyn", "await",
    "const", "static", "type", "enum", "struct", "trait", "box",
];

/// The resolver's notion of a receiver/field/variable type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// A named nominal type (workspace, or external-but-named).
    Concrete(String),
    /// A trait object or `impl Trait` — dispatches to every workspace
    /// implementation of the trait.
    TraitObj(String),
    /// Primitive / slice / tuple / std container: never a workspace
    /// receiver, cuts the edge search off.
    Std,
    /// Untypeable: conservative name fallback applies.
    Unknown,
}

/// One lexed-and-parsed source file plus its non-comment token view.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    pub scope: FileScope,
    /// True for `tests/` / `benches/` / `examples/` sources: exempt from
    /// the serving-path lints and excluded from the symbol table.
    pub is_test_path: bool,
    /// Indexes of non-comment tokens, in order.
    pub view: Vec<usize>,
}

impl SourceFile {
    /// The last path component (`shard.rs`), used in call-chain display.
    pub fn short(&self) -> &str {
        self.rel.rsplit('/').next().unwrap_or(&self.rel)
    }
}

/// One function known to the workspace symbol table.
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The scope-parser view of the function (cloned).
    pub func: Function,
}

impl FnInfo {
    /// `Type::name` when inside an impl, plain `name` otherwise.
    pub fn qual(&self) -> String {
        match &self.func.self_type {
            Some(t) => format!("{t}::{}", self.func.name),
            None => match &self.func.trait_name {
                Some(tr) => format!("{tr}::{}", self.func.name),
                None => self.func.name.clone(),
            },
        }
    }
}

/// A panic / allocation / opaque-macro site inside a function body.
pub struct Site {
    pub line: u32,
    /// Human-readable shape, e.g. "`.unwrap()`" or "`assert_eq!`".
    pub what: String,
}

/// Everything extracted from one function body.
#[derive(Default)]
pub struct Facts {
    /// Resolved workspace callees (sorted, deduplicated).
    pub calls: Vec<FnId>,
    pub panics: Vec<Site>,
    pub allocs: Vec<Site>,
    pub opaques: Vec<Site>,
}

/// The whole workspace: files, functions, symbol tables, and per-function
/// facts. Built once per lint run by [`Workspace::build`].
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub fns: Vec<FnInfo>,
    /// Parallel to [`Workspace::fns`].
    pub facts: Vec<Facts>,
    methods_by_type: HashMap<(String, String), Vec<FnId>>,
    trait_methods: HashMap<(String, String), Vec<FnId>>,
    methods_by_name: HashMap<String, Vec<FnId>>,
    free_by_name: HashMap<String, Vec<FnId>>,
    free_in_file: HashMap<(usize, String), FnId>,
    field_types: HashMap<(String, String), Ty>,
    aliases: HashMap<String, Ty>,
    known_types: BTreeSet<String>,
    known_traits: BTreeSet<String>,
    traits_of_type: HashMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Parse and resolve a set of `(rel_path, source)` files.
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| {
                let scope = FileScope::parse(src);
                let view = scope
                    .tokens
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.kind != TokenKind::Comment)
                    .map(|(i, _)| i)
                    .collect();
                SourceFile {
                    rel: rel.clone(),
                    is_test_path: is_test_path(rel),
                    scope,
                    view,
                }
            })
            .collect();

        let mut ws = Workspace {
            files,
            fns: Vec::new(),
            facts: Vec::new(),
            methods_by_type: HashMap::new(),
            trait_methods: HashMap::new(),
            methods_by_name: HashMap::new(),
            free_by_name: HashMap::new(),
            free_in_file: HashMap::new(),
            field_types: HashMap::new(),
            aliases: HashMap::new(),
            known_types: BTreeSet::new(),
            known_traits: BTreeSet::new(),
            traits_of_type: HashMap::new(),
        };
        ws.scan_types();
        ws.register_fns();
        ws.extract_facts();
        ws
    }

    /// The function whose `fn` keyword sits at raw token index `fn_idx`
    /// of file `file`, if it was registered.
    pub fn fn_at(&self, file: usize, fn_idx: usize) -> Option<FnId> {
        self.fns
            .iter()
            .position(|f| f.file == file && f.func.fn_idx == fn_idx)
    }

    /// `shard.rs:query`-style display name for call chains.
    pub fn chain_label(&self, id: FnId) -> String {
        format!(
            "{}:{}",
            self.files[self.fns[id].file].short(),
            self.fns[id].func.name
        )
    }

    // -- pass 1: nominal types, traits, struct fields, aliases ------------

    fn scan_types(&mut self) {
        let mut field_types = HashMap::new();
        let mut aliases = HashMap::new();
        let mut known_types = BTreeSet::new();
        let mut known_traits = BTreeSet::new();
        for file in &self.files {
            if file.is_test_path {
                continue;
            }
            let v = &file.view;
            let toks = &file.scope.tokens;
            for (k, &i) in v.iter().enumerate() {
                let t = &toks[i];
                if t.kind != TokenKind::Ident || t.raw {
                    continue;
                }
                match t.text.as_str() {
                    "struct" | "enum" | "union" => {
                        if let Some(name) = ident_at(toks, v, k + 1) {
                            known_types.insert(name.to_string());
                            if t.text == "struct" {
                                scan_struct_fields(toks, v, k + 1, &mut field_types);
                            }
                        }
                    }
                    "trait" => {
                        if let Some(name) = ident_at(toks, v, k + 1) {
                            known_traits.insert(name.to_string());
                        }
                    }
                    "type" => {
                        // `type Name<...> = <ty>;` — record the alias target.
                        if let (Some(name), Some(eq)) = (
                            ident_at(toks, v, k + 1),
                            v[k + 1..].iter().position(|&j| toks[j].is_punct('=')),
                        ) {
                            let start = k + 1 + eq + 1;
                            let end = v[start..]
                                .iter()
                                .position(|&j| {
                                    toks[j].kind == TokenKind::Punct && toks[j].text == ";"
                                })
                                .map_or(v.len(), |p| start + p);
                            let ts: Vec<&Token> = v[start..end].iter().map(|&j| &toks[j]).collect();
                            aliases.insert(name.to_string(), parse_ty(&ts));
                        }
                    }
                    _ => {}
                }
            }
        }
        self.field_types = field_types;
        self.aliases = aliases;
        self.known_types = known_types;
        self.known_traits = known_traits;
    }

    // -- pass 2: function registration ------------------------------------

    fn register_fns(&mut self) {
        for fi in 0..self.files.len() {
            if self.files[fi].is_test_path {
                continue;
            }
            let funcs: Vec<Function> = self.files[fi].scope.functions.clone();
            for f in funcs {
                if f.is_test {
                    continue;
                }
                let id = self.fns.len();
                let name = f.name.clone();
                if let Some(st) = &f.self_type {
                    self.known_types.insert(st.clone());
                    self.methods_by_type
                        .entry((st.clone(), name.clone()))
                        .or_default()
                        .push(id);
                    self.methods_by_name
                        .entry(name.clone())
                        .or_default()
                        .push(id);
                    if let Some(tr) = &f.trait_name {
                        self.known_traits.insert(tr.clone());
                        self.trait_methods
                            .entry((tr.clone(), name.clone()))
                            .or_default()
                            .push(id);
                        self.traits_of_type
                            .entry(st.clone())
                            .or_default()
                            .insert(tr.clone());
                    }
                } else if let Some(tr) = &f.trait_name {
                    // A method declared in a `trait` block; only default
                    // bodies are callable targets, but register the name
                    // either way so dyn fallback stays conservative.
                    self.known_traits.insert(tr.clone());
                    if f.body.is_some() {
                        self.trait_methods
                            .entry((tr.clone(), name.clone()))
                            .or_default()
                            .push(id);
                        self.methods_by_name
                            .entry(name.clone())
                            .or_default()
                            .push(id);
                    }
                } else {
                    self.free_in_file.entry((fi, name.clone())).or_insert(id);
                    self.free_by_name.entry(name.clone()).or_default().push(id);
                }
                self.fns.push(FnInfo { file: fi, func: f });
            }
        }
    }

    // -- pass 3: per-function fact extraction ------------------------------

    fn extract_facts(&mut self) {
        let mut all = Vec::with_capacity(self.fns.len());
        for id in 0..self.fns.len() {
            all.push(self.facts_of(id));
        }
        self.facts = all;
    }

    fn facts_of(&self, id: FnId) -> Facts {
        let info = &self.fns[id];
        let file = &self.files[info.file];
        let Some((open, close)) = info.func.body else {
            return Facts::default();
        };
        // Positions (into file.view) of the body's tokens, excluding
        // nested fn items (they get their own facts) and test regions.
        let nested: Vec<(usize, usize)> = file
            .scope
            .functions
            .iter()
            .filter(|g| g.fn_idx > open && g.fn_idx < close)
            .map(|g| (g.fn_idx, g.body.map_or(g.fn_idx, |(_, c)| c)))
            .collect();
        let body: Vec<usize> = (0..file.view.len())
            .filter(|&k| {
                let i = file.view[k];
                i > open
                    && i < close
                    && !file.scope.in_test[i]
                    && !nested.iter().any(|&(a, b)| i >= a && i <= b)
            })
            .collect();

        let vars = self.var_types(info, file, &body);
        let mut facts = Facts::default();
        let mut calls: BTreeSet<FnId> = BTreeSet::new();
        let toks = &file.scope.tokens;
        let t = |k: usize| &toks[file.view[k]];

        for (bp, &k) in body.iter().enumerate() {
            let tok = t(k);
            // Macro invocation: `name!(` / `name![` / `name!{`.
            if tok.kind == TokenKind::Ident
                && !tok.raw
                && body.get(bp + 1).is_some_and(|&n| t(n).is_punct('!'))
                && body.get(bp + 2).is_some_and(|&n| {
                    matches!(
                        t(n).kind,
                        TokenKind::OpenParen | TokenKind::OpenBracket | TokenKind::OpenBrace
                    )
                })
            {
                let name = tok.text.as_str();
                if PANIC_MACROS.contains(&name) {
                    facts.panics.push(Site {
                        line: tok.line,
                        what: format!("`{name}!`"),
                    });
                } else if ALLOC_MACROS.contains(&name) {
                    facts.allocs.push(Site {
                        line: tok.line,
                        what: format!("`{name}!`"),
                    });
                } else if !BENIGN_MACROS.contains(&name) {
                    facts.opaques.push(Site {
                        line: tok.line,
                        what: format!("`{name}!`"),
                    });
                }
                continue;
            }
            // Method call: `.name(`.
            if tok.is_punct('.') {
                let (Some(&m), Some(&p)) = (body.get(bp + 1), body.get(bp + 2)) else {
                    continue;
                };
                if t(m).kind != TokenKind::Ident || t(m).raw || t(p).kind != TokenKind::OpenParen {
                    continue;
                }
                let name = t(m).text.as_str();
                if PANIC_METHODS.contains(&name) {
                    facts.panics.push(Site {
                        line: t(m).line,
                        what: format!("`.{name}()`"),
                    });
                } else if ALLOC_METHODS.contains(&name) {
                    facts.allocs.push(Site {
                        line: t(m).line,
                        what: format!("`.{name}()`"),
                    });
                } else {
                    let recv = self.receiver_ty(info, file, &body, bp, &vars);
                    calls.extend(self.resolve_method(&recv, name));
                }
                continue;
            }
            // Path-qualified mention: `A::B::name` (call or fn reference).
            if tok.kind == TokenKind::Ident && !tok.raw && is_path_sep(toks, &file.view, &body, bp)
            {
                // `name` is the last segment iff the next token is not `::`.
                let next_is_sep = body
                    .get(bp + 2)
                    .is_some_and(|&n2| t(body[bp + 1]).is_punct(':') && t(n2).is_punct(':'));
                if next_is_sep {
                    continue;
                }
                let name = tok.text.as_str();
                let segments = path_segments(toks, &file.view, &body, bp);
                // Path-form allocation ctor: `Vec::new(` etc.
                let called = body
                    .get(bp + 1)
                    .is_some_and(|&n| t(n).kind == TokenKind::OpenParen);
                if called
                    && segments.len() == 1
                    && ALLOC_TYPES.contains(&segments[0].as_str())
                    && ALLOC_CTORS.contains(&name)
                {
                    facts.allocs.push(Site {
                        line: tok.line,
                        what: format!("`{}::{name}()`", segments[0]),
                    });
                    continue;
                }
                calls.extend(self.resolve_path(info, &segments, name));
                continue;
            }
            // Free call: `name(` not preceded by `.` or `::` or `fn`.
            if tok.kind == TokenKind::Ident
                && !tok.raw
                && body
                    .get(bp + 1)
                    .is_some_and(|&n| t(n).kind == TokenKind::OpenParen)
                && !KEYWORDS.contains(&tok.text.as_str())
                && tok
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
            {
                let prev_blocks = bp > 0 && {
                    let pv = t(body[bp - 1]);
                    pv.is_punct('.') || pv.is_punct(':') || pv.is_ident("fn")
                };
                if !prev_blocks {
                    calls.extend(self.resolve_free(info.file, &tok.text));
                }
            }
        }

        facts.calls = calls.into_iter().collect();
        facts
    }

    /// Parameter and `let`-binding types for one function body.
    fn var_types(&self, info: &FnInfo, file: &SourceFile, body: &[usize]) -> HashMap<String, Ty> {
        let toks = &file.scope.tokens;
        let t = |k: usize| &toks[file.view[k]];
        let mut vars: HashMap<String, Ty> = HashMap::new();

        // Parameters: `name: Type` segments at paren depth 1.
        if let Some(open_raw) = info.func.args_open {
            if let Some(open) = file.view.iter().position(|&i| i == open_raw) {
                let mut depth = 0i32;
                let mut k = open;
                let mut seg: Vec<usize> = Vec::new();
                let mut segments: Vec<Vec<usize>> = Vec::new();
                loop {
                    let tok = t(k);
                    match tok.kind {
                        TokenKind::OpenParen | TokenKind::OpenBracket | TokenKind::OpenBrace => {
                            depth += 1;
                            if depth > 1 {
                                seg.push(k);
                            }
                        }
                        TokenKind::CloseParen | TokenKind::CloseBracket | TokenKind::CloseBrace => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                            seg.push(k);
                        }
                        TokenKind::Punct if tok.text == "," && depth == 1 => {
                            segments.push(std::mem::take(&mut seg));
                        }
                        _ => {
                            if depth >= 1 && k != open {
                                seg.push(k);
                            }
                        }
                    }
                    k += 1;
                    if k >= file.view.len() {
                        break;
                    }
                }
                if !seg.is_empty() {
                    segments.push(seg);
                }
                for seg in segments {
                    // `mut name : TYPE...` — skip receivers and patterns.
                    let mut s = 0;
                    if seg.first().is_some_and(|&k| t(k).is_ident("mut")) {
                        s = 1;
                    }
                    let Some(&nk) = seg.get(s) else { continue };
                    if t(nk).kind != TokenKind::Ident || t(nk).is_ident("self") {
                        continue;
                    }
                    if !seg.get(s + 1).is_some_and(|&k| t(k).is_punct(':')) {
                        continue;
                    }
                    let ts: Vec<&Token> = seg[s + 2..].iter().map(|&k| t(k)).collect();
                    vars.insert(t(nk).text.clone(), parse_ty(&ts));
                }
            }
        }

        // `let [mut] name [: TY] = ...` bindings.
        for (bp, &k) in body.iter().enumerate() {
            if !t(k).is_ident("let") || t(k).raw {
                continue;
            }
            let mut p = bp + 1;
            if body.get(p).is_some_and(|&k| t(k).is_ident("mut")) {
                p += 1;
            }
            let Some(&nk) = body.get(p) else { continue };
            if t(nk).kind != TokenKind::Ident {
                continue; // destructuring pattern
            }
            let name = t(nk).text.clone();
            let Some(&after) = body.get(p + 1) else {
                continue;
            };
            if t(after).is_punct(':') {
                // Annotated: type runs to `=` or `;` at depth 0.
                let mut ts: Vec<&Token> = Vec::new();
                for &j in &body[p + 2..] {
                    let tok = t(j);
                    if tok.is_punct('=') || (tok.kind == TokenKind::Punct && tok.text == ";") {
                        break;
                    }
                    ts.push(tok);
                }
                vars.insert(name, parse_ty(&ts));
            } else if t(after).is_punct('=') {
                // `= Type::ctor(` / `= Type {` / `= Type(`.
                let Some(&vk) = body.get(p + 2) else { continue };
                let vt = t(vk);
                if vt.kind == TokenKind::Ident
                    && vt
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                {
                    let follows = body.get(p + 3).map(|&j| t(j));
                    let ctorish = follows.is_some_and(|f| {
                        f.is_punct(':')
                            || f.kind == TokenKind::OpenBrace
                            || f.kind == TokenKind::OpenParen
                    });
                    if ctorish && !STD_TYPES.contains(&vt.text.as_str()) {
                        vars.insert(name, Ty::Concrete(vt.text.clone()));
                    }
                }
            }
        }
        vars
    }

    /// Type of the receiver chain ending at the `.` at body position `bp`.
    fn receiver_ty(
        &self,
        info: &FnInfo,
        file: &SourceFile,
        body: &[usize],
        bp: usize,
        vars: &HashMap<String, Ty>,
    ) -> Ty {
        let toks = &file.scope.tokens;
        let t = |k: usize| &toks[file.view[k]];
        if bp == 0 {
            return Ty::Unknown;
        }
        let b = t(body[bp - 1]);
        match b.kind {
            TokenKind::Literal => Ty::Std,
            TokenKind::Ident if b.is_ident("self") => self_ty(&info.func),
            TokenKind::Ident => {
                let prev_dot = bp >= 2 && t(body[bp - 2]).is_punct('.');
                if prev_dot {
                    // `<base>.field.m(` — type the base, then the field.
                    let base = if bp >= 3 && t(body[bp - 3]).is_ident("self") {
                        self_ty(&info.func)
                    } else if bp >= 3
                        && t(body[bp - 3]).kind == TokenKind::Ident
                        && (bp < 4 || !t(body[bp - 4]).is_punct('.'))
                    {
                        vars.get(&t(body[bp - 3]).text)
                            .cloned()
                            .unwrap_or(Ty::Unknown)
                    } else {
                        Ty::Unknown
                    };
                    if let Ty::Concrete(bt) = &base {
                        let key = (self.canon(bt), b.text.clone());
                        return self.field_types.get(&key).cloned().unwrap_or(Ty::Unknown);
                    }
                    return Ty::Unknown;
                }
                let prev_path =
                    bp >= 3 && t(body[bp - 2]).is_punct(':') && t(body[bp - 3]).is_punct(':');
                if prev_path {
                    return Ty::Unknown; // `path::CONST.m()`
                }
                vars.get(&b.text).cloned().unwrap_or(Ty::Unknown)
            }
            _ => Ty::Unknown,
        }
    }

    /// Canonical type name through `type` aliases.
    fn canon(&self, name: &str) -> String {
        match self.aliases.get(name) {
            Some(Ty::Concrete(target)) if target != name => self.canon(target),
            _ => name.to_string(),
        }
    }

    /// Resolve a method call by receiver type.
    fn resolve_method(&self, recv: &Ty, name: &str) -> Vec<FnId> {
        match recv {
            Ty::Std => Vec::new(),
            Ty::TraitObj(tr) => {
                if let Some(v) = self.trait_methods.get(&(tr.clone(), name.to_string())) {
                    v.clone()
                } else if self.known_traits.contains(tr) {
                    // Workspace trait, but the method belongs to a
                    // supertrait or blanket impl we didn't attribute —
                    // stay conservative.
                    self.fallback(name)
                } else {
                    Vec::new() // std trait (Iterator, Fn, ...)
                }
            }
            Ty::Concrete(raw_name) => {
                let tname = self.canon(raw_name);
                if let Some(alias_ty) = self.aliases.get(raw_name) {
                    if !matches!(alias_ty, Ty::Concrete(_)) {
                        return self.resolve_method(&alias_ty.clone(), name);
                    }
                }
                if let Some(v) = self.methods_by_type.get(&(tname.clone(), name.to_string())) {
                    return v.clone();
                }
                if self.known_types.contains(&tname) {
                    // Known workspace type: maybe a default trait method.
                    let mut out = BTreeSet::new();
                    if let Some(trs) = self.traits_of_type.get(&tname) {
                        for tr in trs {
                            if let Some(v) = self.trait_methods.get(&(tr.clone(), name.to_string()))
                            {
                                out.extend(v.iter().copied());
                            }
                        }
                    }
                    return out.into_iter().collect();
                }
                if STD_TYPES.contains(&tname.as_str()) || is_primitive(&tname) {
                    return Vec::new();
                }
                if is_generic_name(&tname) {
                    return self.fallback(name);
                }
                // A named type the workspace never defines: external.
                Vec::new()
            }
            Ty::Unknown => self.fallback(name),
        }
    }

    /// Conservative dyn-dispatch fallback: every workspace method of
    /// this name.
    fn fallback(&self, name: &str) -> Vec<FnId> {
        self.methods_by_name.get(name).cloned().unwrap_or_default()
    }

    /// Resolve `segments::name` (assoc fn, trait method, module-qualified
    /// free fn).
    fn resolve_path(&self, info: &FnInfo, segments: &[String], name: &str) -> Vec<FnId> {
        let Some(first) = segments.first() else {
            return Vec::new();
        };
        if matches!(first.as_str(), "std" | "core" | "alloc") {
            return Vec::new();
        }
        let q = segments.last().map(String::as_str).unwrap_or_default();
        if q == "Self" {
            return self.resolve_method(&self_ty(&info.func), name);
        }
        let starts_upper = q.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if starts_upper {
            if self.known_traits.contains(q) {
                return self
                    .trait_methods
                    .get(&(q.to_string(), name.to_string()))
                    .cloned()
                    .unwrap_or_default();
            }
            return self.resolve_method(&Ty::Concrete(q.to_string()), name);
        }
        // Module-qualified free function: `crate::points::dot(...)`.
        self.free_by_name.get(name).cloned().unwrap_or_default()
    }

    /// Resolve a bare free-function call: same file shadows the world.
    fn resolve_free(&self, file: usize, name: &str) -> Vec<FnId> {
        if let Some(&id) = self.free_in_file.get(&(file, name.to_string())) {
            return vec![id];
        }
        self.free_by_name.get(name).cloned().unwrap_or_default()
    }
}

/// The type `self` has inside function `f`.
fn self_ty(f: &Function) -> Ty {
    if let Some(t) = &f.self_type {
        Ty::Concrete(t.clone())
    } else if let Some(tr) = &f.trait_name {
        Ty::TraitObj(tr.clone())
    } else {
        Ty::Unknown
    }
}

/// Whether the token at body position `bp` is part of a `::` path (i.e.
/// the two preceding view tokens are `:` `:`).
fn is_path_sep(toks: &[Token], view: &[usize], body: &[usize], bp: usize) -> bool {
    bp >= 2 && toks[view[body[bp - 1]]].is_punct(':') && toks[view[body[bp - 2]]].is_punct(':')
}

/// Collect the `::`-separated segments before body position `bp`
/// (which holds the final path segment), innermost-last.
fn path_segments(toks: &[Token], view: &[usize], body: &[usize], bp: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut p = bp;
    while p >= 3
        && toks[view[body[p - 1]]].is_punct(':')
        && toks[view[body[p - 2]]].is_punct(':')
        && toks[view[body[p - 3]]].kind == TokenKind::Ident
    {
        segs.push(toks[view[body[p - 3]]].text.clone());
        p -= 3;
    }
    segs.reverse();
    segs
}

fn ident_at<'a>(toks: &'a [Token], view: &[usize], k: usize) -> Option<&'a str> {
    view.get(k)
        .map(|&i| &toks[i])
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
}

/// Record `field -> Ty` for a `struct Name { ... }` whose name sits at
/// view position `name_k`.
fn scan_struct_fields(
    toks: &[Token],
    view: &[usize],
    name_k: usize,
    out: &mut HashMap<(String, String), Ty>,
) {
    let Some(struct_name) = ident_at(toks, view, name_k) else {
        return;
    };
    // Walk to the body `{` at angle depth 0; `;` or `(` means unit/tuple.
    let mut k = name_k + 1;
    let mut angle = 0i32;
    let open = loop {
        let Some(&i) = view.get(k) else { return };
        let t = &toks[i];
        match t.kind {
            TokenKind::OpenBrace if angle == 0 => break k,
            TokenKind::OpenParen if angle == 0 => return,
            TokenKind::Punct if t.text == ";" && angle == 0 => return,
            TokenKind::Punct if t.text == "<" => angle += 1,
            // `->` in a where-clause fn type must not underflow.
            TokenKind::Punct
                if t.text == ">"
                    && !view
                        .get(k.wrapping_sub(1))
                        .is_some_and(|&j| toks[j].is_punct('-')) =>
            {
                angle -= 1;
            }
            _ => {}
        }
        k += 1;
    };
    // Split top-level comma segments between the braces.
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut seg: Vec<usize> = Vec::new();
    let mut segments: Vec<Vec<usize>> = Vec::new();
    let mut k = open;
    while let Some(&i) = view.get(k) {
        let t = &toks[i];
        match t.kind {
            TokenKind::OpenBrace | TokenKind::OpenParen | TokenKind::OpenBracket => {
                depth += 1;
                if depth > 1 {
                    seg.push(k);
                }
            }
            TokenKind::CloseBrace | TokenKind::CloseParen | TokenKind::CloseBracket => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                seg.push(k);
            }
            TokenKind::Punct if t.text == "<" && depth == 1 => {
                angle += 1;
                seg.push(k);
            }
            TokenKind::Punct if t.text == ">" && depth == 1 => {
                if !view
                    .get(k.wrapping_sub(1))
                    .is_some_and(|&j| toks[j].is_punct('-'))
                {
                    angle -= 1;
                }
                seg.push(k);
            }
            TokenKind::Punct if t.text == "," && depth == 1 && angle == 0 => {
                segments.push(std::mem::take(&mut seg));
            }
            _ => {
                if depth >= 1 {
                    seg.push(k);
                }
            }
        }
        k += 1;
    }
    if !seg.is_empty() {
        segments.push(seg);
    }
    for seg in segments {
        // Strip `#[...]` attributes and `pub` / `pub(...)` qualifiers.
        let mut s = 0;
        while s < seg.len() {
            let t = &toks[view[seg[s]]];
            if t.is_punct('#') {
                // Skip to the matching `]`.
                let mut d = 0i32;
                while s < seg.len() {
                    match toks[view[seg[s]]].kind {
                        TokenKind::OpenBracket => d += 1,
                        TokenKind::CloseBracket => {
                            d -= 1;
                            if d == 0 {
                                s += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    s += 1;
                }
                continue;
            }
            if t.is_ident("pub") {
                s += 1;
                if seg
                    .get(s)
                    .is_some_and(|&k| toks[view[k]].kind == TokenKind::OpenParen)
                {
                    let mut d = 0i32;
                    while s < seg.len() {
                        match toks[view[seg[s]]].kind {
                            TokenKind::OpenParen => d += 1,
                            TokenKind::CloseParen => {
                                d -= 1;
                                if d == 0 {
                                    s += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        s += 1;
                    }
                }
                continue;
            }
            break;
        }
        let Some(&nk) = seg.get(s) else { continue };
        let name_tok = &toks[view[nk]];
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        if !seg.get(s + 1).is_some_and(|&k| toks[view[k]].is_punct(':')) {
            continue;
        }
        let ts: Vec<&Token> = seg[s + 2..].iter().map(|&k| &toks[view[k]]).collect();
        out.insert(
            (struct_name.to_string(), name_tok.text.clone()),
            parse_ty(&ts),
        );
    }
}

/// Parse a type from its code tokens: strip references / lifetimes /
/// `mut` / transparent wrappers, recognize `dyn Trait` / `impl Trait`,
/// classify primitives, slices, tuples, and std containers as [`Ty::Std`].
pub fn parse_ty(ts: &[&Token]) -> Ty {
    let mut i = 0;
    loop {
        let Some(t) = ts.get(i) else {
            return Ty::Unknown;
        };
        if t.is_punct('&')
            || t.is_punct('*')
            || t.kind == TokenKind::Lifetime
            || t.is_ident("mut")
            || t.is_ident("const")
        {
            i += 1;
            continue;
        }
        if matches!(t.kind, TokenKind::OpenBracket | TokenKind::OpenParen) {
            return Ty::Std; // slice / array / tuple
        }
        if t.is_ident("dyn") || t.is_ident("impl") {
            return match ts.get(i + 1) {
                Some(n) if n.kind == TokenKind::Ident => Ty::TraitObj(n.text.clone()),
                _ => Ty::Unknown,
            };
        }
        if t.kind == TokenKind::Ident {
            let name = t.text.as_str();
            if WRAPPERS.contains(&name) && ts.get(i + 1).is_some_and(|n| n.is_punct('<')) {
                i += 2; // unwrap `Arc<...>` to the inner type
                continue;
            }
            if is_primitive(name) {
                return Ty::Std;
            }
            if STD_TYPES.contains(&name) {
                return Ty::Std;
            }
            return Ty::Concrete(name.to_string());
        }
        return Ty::Unknown;
    }
}

fn is_primitive(name: &str) -> bool {
    matches!(
        name,
        "u8" | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
            | "bool"
            | "char"
            | "str"
    )
}

/// A one-or-two-uppercase-letter name reads as a generic parameter: the
/// conservative name fallback applies instead of the external cutoff.
fn is_generic_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 2
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
}

/// Integration-test / bench / example sources: exempt from serving-path
/// lints and excluded from the symbol table.
pub fn is_test_path(rel: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    fn id_of(w: &Workspace, name: &str) -> FnId {
        w.fns
            .iter()
            .position(|f| f.func.name == name)
            .unwrap_or_else(|| panic!("fn {name} not registered"))
    }

    #[test]
    fn self_method_calls_resolve_within_impl() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n  fn a(&self) { self.b(); }\n  fn b(&self) {}\n}\n",
        )]);
        let (a, b) = (id_of(&w, "a"), id_of(&w, "b"));
        assert_eq!(w.facts[a].calls, vec![b]);
    }

    #[test]
    fn field_type_resolves_cross_type_methods() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct Inner;\nimpl Inner { pub fn go(&self) {} }\n\
             struct Outer { inner: Inner }\n\
             impl Outer { fn run(&self) { self.inner.go(); } }\n",
        )]);
        let (run, go) = (id_of(&w, "run"), id_of(&w, "go"));
        assert_eq!(w.facts[run].calls, vec![go]);
    }

    #[test]
    fn arc_dyn_field_dispatches_to_every_trait_impl() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "use std::sync::Arc;\n\
             trait Hasher { fn hash(&self) -> u64; }\n\
             struct A;\nimpl Hasher for A { fn hash(&self) -> u64 { 1 } }\n\
             struct B;\nimpl Hasher for B { fn hash(&self) -> u64 { 2 } }\n\
             struct Table { h: Arc<dyn Hasher> }\n\
             impl Table { fn probe(&self) -> u64 { self.h.hash() } }\n",
        )]);
        let probe = id_of(&w, "probe");
        assert_eq!(w.facts[probe].calls.len(), 2, "both impls are candidates");
    }

    #[test]
    fn std_receivers_are_cut_off() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct S { buf: Vec<u32> }\n\
             impl S {\n  fn len(&self) -> usize { 0 }\n  fn touch(&mut self, xs: &[u32]) { self.buf.push(1); let _ = xs.len(); }\n}\n",
        )]);
        let touch = id_of(&w, "touch");
        assert!(
            w.facts[touch].calls.is_empty(),
            "Vec::push / slice len must not link to workspace fns"
        );
    }

    #[test]
    fn free_call_shadowing_prefers_same_file() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub fn helper() {}\npub fn go() { helper(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn helper() { panic!(\"other\"); }\n",
            ),
        ]);
        let go = id_of(&w, "go");
        let local = w
            .fns
            .iter()
            .position(|f| f.func.name == "helper" && w.files[f.file].rel.contains("/a/"))
            .unwrap();
        assert_eq!(w.facts[go].calls, vec![local]);
    }

    #[test]
    fn unknown_receiver_falls_back_to_all_methods_of_name() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S { pub fn visit(&self) {} }\n\
             fn drive(xs: Thing) { xs.frob().visit(); }\n",
        )]);
        let drive = id_of(&w, "drive");
        let visit = id_of(&w, "visit");
        assert!(w.facts[drive].calls.contains(&visit));
    }

    #[test]
    fn panic_and_alloc_sites_are_recorded() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn f(x: Option<u32>) -> u32 {\n  let v = vec![1];\n  assert!(v.len() == 1);\n  x.unwrap()\n}\n",
        )]);
        let f = id_of(&w, "f");
        assert_eq!(w.facts[f].panics.len(), 2); // assert! + .unwrap()
        assert_eq!(w.facts[f].allocs.len(), 1); // vec!
        assert!(w.facts[f].opaques.is_empty());
    }

    #[test]
    fn unknown_macros_are_opaque() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn f() { mystery!(1, 2); debug_assert!(true); }\n",
        )]);
        let f = id_of(&w, "f");
        assert_eq!(w.facts[f].opaques.len(), 1);
        assert!(w.facts[f].panics.is_empty());
    }

    #[test]
    fn test_code_contributes_nothing() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { super::live(); panic!(\"x\"); }\n}\n",
        )]);
        assert_eq!(w.fns.len(), 1, "test fn is not registered");
        assert!(w.facts[0].panics.is_empty());
    }

    #[test]
    fn type_alias_canonicalizes_receivers() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct Real;\nimpl Real { pub fn go(&self) {} }\ntype Alias = Real;\n\
             fn f(x: Alias) { x.go(); }\n",
        )]);
        let f = id_of(&w, "f");
        let go = id_of(&w, "go");
        assert_eq!(w.facts[f].calls, vec![go]);
    }

    #[test]
    fn fn_reference_paths_contribute_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n  fn prefix_of(x: u64) -> u64 { x }\n  fn all(&self, xs: &[u64]) -> Vec<u64> { xs.iter().map(|&x| Self::prefix_of(x)).collect() }\n}\n",
        )]);
        let all = id_of(&w, "all");
        let pre = id_of(&w, "prefix_of");
        assert!(w.facts[all].calls.contains(&pre));
    }
}
