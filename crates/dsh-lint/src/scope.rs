//! A lightweight brace/function-scope parser over the lexed token stream.
//!
//! Recovers exactly the structure the lint passes need — no expression
//! parsing, no types:
//!
//! * matched brace pairs (robust against braces in strings/chars, which
//!   the lexer already hides inside literal tokens);
//! * function items: name, body token range, receiver shape
//!   (`&self` / `&mut self` / `self` / none), `pub`-ness, and the
//!   enclosing `impl` block's self-type name;
//! * test regions: `#[cfg(test)]` modules, modules named `tests`, and
//!   `#[test]` functions — lint findings are never raised inside them;
//! * `// lint:` marker comments, parsed and bound to source lines and to
//!   the function definition that follows them.

use crate::lexer::{Token, TokenKind};
use std::collections::HashMap;

/// The self-receiver shape of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// Free function or associated function without `self`.
    None,
    /// `&self` (possibly with a lifetime).
    Ref,
    /// `&mut self` (possibly with a lifetime).
    RefMut,
    /// `self` / `mut self` by value.
    Owned,
}

/// One function item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Self-type name of the enclosing inherent `impl` block (`None` for
    /// free functions and for functions inside trait `impl ... for` blocks).
    pub impl_type: Option<String>,
    /// Self-type name of the enclosing `impl` block, inherent *or* trait
    /// (`impl Trait for T` yields `T` here) — the receiver type the call
    /// resolver attributes `self.method()` calls to.
    pub self_type: Option<String>,
    /// Name of the trait when inside `impl Trait for T` or a `trait Name`
    /// declaration block.
    pub trait_name: Option<String>,
    /// True when the enclosing impl is a trait impl (`impl Trait for T`).
    pub is_trait_impl: bool,
    pub is_pub: bool,
    pub receiver: Receiver,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the parameter list's `(`, when found.
    pub args_open: Option<usize>,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// Token indexes of the body's `{` and matching `}` (None for
    /// bodiless trait-method declarations).
    pub body: Option<(usize, usize)>,
    /// True when the function is test code (`#[test]`, or inside a
    /// `#[cfg(test)]` / `mod tests` region).
    pub is_test: bool,
}

/// A parsed `// lint: ...` marker comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Marker {
    /// `// lint: hot` — the next function is a no-alloc hot kernel.
    Hot,
    /// `// lint: allow(<lint>) — <reason>`.
    Allow { lint: String, reason: String },
    /// A comment that says `lint:` but parses as neither of the above.
    Malformed { raw: String },
}

/// The structure of one source file.
pub struct FileScope {
    pub tokens: Vec<Token>,
    pub functions: Vec<Function>,
    /// Per-token: true when the token sits inside a test region.
    pub in_test: Vec<bool>,
    /// OpenBrace token index -> matching CloseBrace token index.
    pub brace_match: HashMap<usize, usize>,
    /// Source line -> allow markers active on that line.
    pub allows: HashMap<u32, Vec<Marker>>,
    /// `(comment line, bound fn token index or None)` for each hot marker.
    pub hot_markers: Vec<(u32, Option<usize>)>,
    /// Malformed `lint:` comments: `(line, raw text)`.
    pub malformed_markers: Vec<(u32, String)>,
    /// Source line -> true when a `SAFETY:` comment sits on that line.
    pub safety_lines: HashMap<u32, bool>,
    /// Marker-comment line -> true when that comment sits inside a test
    /// region (test-local markers are exempt from the dead-allow lint).
    pub marker_in_test: HashMap<u32, bool>,
}

impl FileScope {
    /// Lex and parse one file.
    pub fn parse(src: &str) -> Self {
        let tokens = crate::lexer::lex(src);
        let brace_match = match_braces(&tokens);
        let functions = collect_functions(&tokens, &brace_match);
        let in_test = mark_test_regions(&tokens, &functions, &brace_match);
        let functions = functions
            .into_iter()
            .map(|mut f| {
                f.is_test = f.is_test || in_test[f.fn_idx];
                f
            })
            .collect();
        let (allows, hot_markers, malformed_markers, safety_lines, marker_in_test) =
            collect_markers(&tokens, &in_test);
        FileScope {
            tokens,
            functions,
            in_test,
            brace_match,
            allows,
            hot_markers,
            malformed_markers,
            safety_lines,
            marker_in_test,
        }
    }

    /// Whether lint `name` is allowed at `line` (annotation on the same
    /// line or the line directly above).
    pub fn is_allowed(&self, name: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows.get(l).is_some_and(|ms| {
                ms.iter()
                    .any(|m| matches!(m, Marker::Allow { lint, .. } if lint == name))
            })
        })
    }

    /// The function whose body contains token index `i`, if any (the
    /// innermost one — nested items resolve to the closest `fn`).
    pub fn enclosing_fn(&self, i: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| f.body.is_some_and(|(open, close)| open < i && i < close))
            .max_by_key(|f| f.body.map(|(open, _)| open))
    }
}

/// Match `{` / `}` pairs across the whole stream. Tolerates unbalanced
/// input: stray closers are ignored, unclosed openers match the final
/// token index.
fn match_braces(tokens: &[Token]) -> HashMap<usize, usize> {
    let mut stack = Vec::new();
    let mut map = HashMap::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::OpenBrace => stack.push(i),
            TokenKind::CloseBrace => {
                if let Some(open) = stack.pop() {
                    map.insert(open, i);
                }
            }
            _ => {}
        }
    }
    let end = tokens.len().saturating_sub(1);
    for open in stack {
        map.insert(open, end);
    }
    map
}

fn next_code(tokens: &[Token], mut i: usize) -> Option<usize> {
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Comment {
            return Some(i);
        }
        i += 1;
    }
    None
}

fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| tokens[j].kind != TokenKind::Comment)
}

/// Flattened text of the `#[...]` attributes directly above item token
/// `idx` (doc comments and qualifiers like `pub` are skipped over).
fn item_attrs(tokens: &[Token], idx: usize) -> Vec<String> {
    let mut attrs = Vec::new();
    let mut i = idx;
    while let Some(j) = prev_code(tokens, i) {
        let t = &tokens[j];
        let qualifier = t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "pub"
                    | "const"
                    | "unsafe"
                    | "async"
                    | "extern"
                    | "crate"
                    | "in"
                    | "super"
                    | "self"
                    | "default"
            );
        if qualifier || (t.kind == TokenKind::Literal && t.text.starts_with('"')) {
            i = j;
            continue;
        }
        if t.kind == TokenKind::CloseParen {
            // pub(crate): hop over the paren group.
            let mut depth = 1;
            let mut k = j;
            while depth > 0 {
                let Some(p) = prev_code(tokens, k) else { break };
                match tokens[p].kind {
                    TokenKind::CloseParen => depth += 1,
                    TokenKind::OpenParen => depth -= 1,
                    _ => {}
                }
                k = p;
            }
            i = k;
            continue;
        }
        if t.kind == TokenKind::CloseBracket {
            // An attribute: hop back to the matching `[`, flatten.
            let mut depth = 1;
            let mut k = j;
            let mut body = Vec::new();
            while depth > 0 {
                let Some(p) = prev_code(tokens, k) else { break };
                match tokens[p].kind {
                    TokenKind::CloseBracket => depth += 1,
                    TokenKind::OpenBracket => depth -= 1,
                    _ => {}
                }
                if depth > 0 {
                    body.push(tokens[p].text.clone());
                }
                k = p;
            }
            // Inner attributes (`#![...]`) have a `!` before the `[`;
            // either way the token before is `#` (possibly via `!`).
            let mut h = prev_code(tokens, k);
            if h.is_some_and(|p| tokens[p].is_punct('!')) {
                h = prev_code(tokens, h.unwrap_or(0));
            }
            if h.is_some_and(|p| tokens[p].is_punct('#')) {
                body.reverse();
                attrs.push(body.concat());
                i = h.unwrap_or(0);
                continue;
            }
            break;
        }
        break;
    }
    attrs
}

/// Whether item token `idx` carries a `pub` qualifier.
fn item_is_pub(tokens: &[Token], idx: usize) -> bool {
    let mut i = idx;
    loop {
        let Some(j) = prev_code(tokens, i) else {
            return false;
        };
        let t = &tokens[j];
        if t.is_ident("pub") {
            return true;
        }
        if t.kind == TokenKind::CloseParen {
            // pub(crate) / pub(in path): hop over the paren group.
            let mut depth = 1;
            let mut k = j;
            while depth > 0 {
                let Some(p) = prev_code(tokens, k) else {
                    return false;
                };
                match tokens[p].kind {
                    TokenKind::CloseParen => depth += 1,
                    TokenKind::OpenParen => depth -= 1,
                    _ => {}
                }
                k = p;
            }
            i = k;
            continue;
        }
        let skippable = (t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern"))
            || (t.kind == TokenKind::Literal && t.text.starts_with('"'));
        if !skippable {
            return false;
        }
        i = j;
    }
}

/// Parse the receiver shape from the tokens of a parameter list that
/// starts at OpenParen index `open`.
fn receiver_of(tokens: &[Token], open: usize) -> Receiver {
    let Some(a) = next_code(tokens, open + 1) else {
        return Receiver::None;
    };
    if tokens[a].is_ident("self") {
        return Receiver::Owned;
    }
    if tokens[a].is_ident("mut") {
        if next_code(tokens, a + 1).is_some_and(|b| tokens[b].is_ident("self")) {
            return Receiver::Owned;
        }
        return Receiver::None;
    }
    if tokens[a].is_punct('&') {
        let Some(mut b) = next_code(tokens, a + 1) else {
            return Receiver::None;
        };
        if tokens[b].kind == TokenKind::Lifetime {
            let Some(n) = next_code(tokens, b + 1) else {
                return Receiver::None;
            };
            b = n;
        }
        if tokens[b].is_ident("self") {
            return Receiver::Ref;
        }
        if tokens[b].is_ident("mut")
            && next_code(tokens, b + 1).is_some_and(|c| tokens[c].is_ident("self"))
        {
            return Receiver::RefMut;
        }
    }
    Receiver::None
}

/// One enclosing impl or trait block, for attributing functions to types.
struct ImplCtx {
    /// The self type: `T` for both `impl T` and `impl Trait for T`
    /// (`None` for `trait Name` declaration blocks).
    type_name: Option<String>,
    /// The trait: `Trait` for `impl Trait for T` and for `trait Trait`
    /// declaration blocks.
    trait_name: Option<String>,
    is_trait_impl: bool,
    close: usize,
}

fn collect_functions(tokens: &[Token], brace_match: &HashMap<usize, usize>) -> Vec<Function> {
    let mut fns = Vec::new();
    let mut impls: Vec<ImplCtx> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        impls.retain(|ctx| i <= ctx.close);
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || t.raw {
            i += 1;
            continue;
        }
        if t.text == "impl" {
            if let Some((ctx, body_open)) = parse_impl_header(tokens, i, brace_match) {
                impls.push(ctx);
                i = body_open + 1;
                continue;
            }
        }
        if t.text == "trait" {
            if let Some((ctx, body_open)) = parse_trait_header(tokens, i, brace_match) {
                impls.push(ctx);
                i = body_open + 1;
                continue;
            }
        }
        if t.text == "fn" {
            // `fn` directly followed by `(` is a fn-pointer type, not an item.
            let Some(name_idx) = next_code(tokens, i + 1) else {
                break;
            };
            if tokens[name_idx].kind == TokenKind::Ident {
                let (body, args_open) = find_fn_body(tokens, name_idx + 1, brace_match);
                let attrs = item_attrs(tokens, i);
                let innermost = impls.last();
                fns.push(Function {
                    name: tokens[name_idx].text.clone(),
                    impl_type: innermost.and_then(|c| {
                        if c.is_trait_impl {
                            None
                        } else {
                            c.type_name.clone()
                        }
                    }),
                    self_type: innermost.and_then(|c| c.type_name.clone()),
                    trait_name: innermost.and_then(|c| c.trait_name.clone()),
                    is_trait_impl: innermost.is_some_and(|c| c.is_trait_impl),
                    is_pub: item_is_pub(tokens, i),
                    receiver: args_open.map_or(Receiver::None, |o| receiver_of(tokens, o)),
                    fn_idx: i,
                    args_open,
                    line: t.line,
                    body,
                    is_test: attrs.iter().any(|a| a == "test"),
                });
                // Continue scanning *inside* the body too (nested fns and
                // the impl bookkeeping both want a linear walk).
                i = name_idx + 1;
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parse a `trait Name ... {` header starting at the `trait` keyword;
/// returns the block context plus the index of the body `{`.
fn parse_trait_header(
    tokens: &[Token],
    trait_idx: usize,
    brace_match: &HashMap<usize, usize>,
) -> Option<(ImplCtx, usize)> {
    let name_idx = next_code(tokens, trait_idx + 1)?;
    if tokens[name_idx].kind != TokenKind::Ident {
        return None;
    }
    // Walk to the body `{` (skipping generics, supertrait bounds, and
    // `where` clauses; angle depth keeps `Bound<{ N }>`-free code honest).
    let mut angle_depth = 0usize;
    let mut i = next_code(tokens, name_idx + 1)?;
    loop {
        let t = &tokens[i];
        if t.kind == TokenKind::OpenBrace && angle_depth == 0 {
            break;
        }
        if t.kind == TokenKind::Punct && t.text == ";" && angle_depth == 0 {
            return None; // trait alias, no body
        }
        if t.is_punct('<') {
            angle_depth += 1;
        } else if t.is_punct('>') {
            angle_depth = angle_depth.saturating_sub(1);
        }
        i = next_code(tokens, i + 1)?;
    }
    let close = *brace_match.get(&i)?;
    Some((
        ImplCtx {
            type_name: None,
            trait_name: Some(tokens[name_idx].text.clone()),
            is_trait_impl: false,
            close,
        },
        i,
    ))
}

/// Parse an `impl` header starting at token `impl_idx`; returns the impl
/// context plus the index of the body `{`.
fn parse_impl_header(
    tokens: &[Token],
    impl_idx: usize,
    brace_match: &HashMap<usize, usize>,
) -> Option<(ImplCtx, usize)> {
    let mut i = next_code(tokens, impl_idx + 1)?;
    // Skip the generic parameter list if present.
    if tokens[i].is_punct('<') {
        let mut depth = 1;
        while depth > 0 {
            i = next_code(tokens, i + 1)?;
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if tokens[i].is_punct('>') {
                depth -= 1;
            }
        }
        i = next_code(tokens, i + 1)?;
    }
    // Walk to the body `{`, remembering the first identifier after the
    // generics (the type, or the trait for `impl Trait for Type`).
    let mut first_ident: Option<String> = None;
    let mut after_for_ident: Option<String> = None;
    let mut seen_for = false;
    let mut angle_depth = 0usize;
    loop {
        let t = &tokens[i];
        if t.kind == TokenKind::OpenBrace && angle_depth == 0 {
            break;
        }
        if t.is_punct('<') {
            angle_depth += 1;
        } else if t.is_punct('>') {
            angle_depth = angle_depth.saturating_sub(1);
        } else if t.is_ident("for") && angle_depth == 0 {
            seen_for = true;
        } else if t.kind == TokenKind::Ident && angle_depth == 0 && !t.is_ident("where") {
            if seen_for {
                if after_for_ident.is_none() {
                    after_for_ident = Some(t.text.clone());
                }
            } else if first_ident.is_none() {
                first_ident = Some(t.text.clone());
            }
        }
        i = next_code(tokens, i + 1)?;
    }
    let close = *brace_match.get(&i)?;
    Some((
        ImplCtx {
            type_name: if seen_for {
                after_for_ident
            } else {
                first_ident.clone()
            },
            trait_name: if seen_for { first_ident } else { None },
            is_trait_impl: seen_for,
            close,
        },
        i,
    ))
}

/// Find a function's body braces: scan from just past the name, tracking
/// paren/bracket nesting; the body is the first `{` at nesting depth 0
/// outside a generic list, and a `;` at depth 0 means a bodiless
/// declaration. Also returns the OpenParen index of the parameter list.
fn find_fn_body(
    tokens: &[Token],
    mut i: usize,
    brace_match: &HashMap<usize, usize>,
) -> (Option<(usize, usize)>, Option<usize>) {
    let mut depth = 0usize;
    let mut args_open = None;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::OpenParen | TokenKind::OpenBracket => {
                if args_open.is_none() && t.kind == TokenKind::OpenParen {
                    args_open = Some(i);
                }
                depth += 1;
            }
            TokenKind::CloseParen | TokenKind::CloseBracket => depth = depth.saturating_sub(1),
            TokenKind::OpenBrace if depth == 0 => {
                let close = brace_match.get(&i).copied().unwrap_or(tokens.len() - 1);
                return (Some((i, close)), args_open);
            }
            TokenKind::Punct if t.text == ";" && depth == 0 => return (None, args_open),
            _ => {}
        }
        i += 1;
    }
    (None, args_open)
}

/// Mark every token inside a test region: `#[cfg(test)]` modules, `mod
/// tests`, and `#[test]` function bodies.
fn mark_test_regions(
    tokens: &[Token],
    functions: &[Function],
    brace_match: &HashMap<usize, usize>,
) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut mark = |from: usize, to: usize| {
        for slot in in_test.iter_mut().take(to + 1).skip(from) {
            *slot = true;
        }
    };
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("mod") && !t.raw {
            let Some(name_idx) = next_code(tokens, i + 1) else {
                continue;
            };
            let Some(brace_idx) = next_code(tokens, name_idx + 1) else {
                continue;
            };
            if tokens[brace_idx].kind != TokenKind::OpenBrace {
                continue;
            }
            let attrs = item_attrs(tokens, i);
            let is_test_mod = tokens[name_idx].is_ident("tests")
                || attrs.iter().any(|a| a.replace(' ', "") == "cfg(test)");
            if is_test_mod {
                let close = brace_match
                    .get(&brace_idx)
                    .copied()
                    .unwrap_or(tokens.len() - 1);
                mark(i, close);
            }
        }
    }
    for f in functions {
        if f.is_test {
            if let Some((open, close)) = f.body {
                mark(open.min(f.fn_idx), close);
            }
        }
    }
    in_test
}

/// Normalize a comment's text: strip `//`, `/*`, `*/`, `!`, leading `*`s
/// and whitespace.
fn comment_body(text: &str) -> &str {
    let t = text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start_matches('*');
    t.trim_end_matches('/').trim_end_matches('*').trim()
}

type Markers = (
    HashMap<u32, Vec<Marker>>,
    Vec<(u32, Option<usize>)>,
    Vec<(u32, String)>,
    HashMap<u32, bool>,
    HashMap<u32, bool>,
);

/// Scan comments for `lint:` markers and `SAFETY:` annotations.
fn collect_markers(tokens: &[Token], in_test: &[bool]) -> Markers {
    let mut allows: HashMap<u32, Vec<Marker>> = HashMap::new();
    let mut hots = Vec::new();
    let mut malformed = Vec::new();
    let mut safety: HashMap<u32, bool> = HashMap::new();
    let mut marker_in_test: HashMap<u32, bool> = HashMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let body = comment_body(&t.text);
        if body.contains("SAFETY:") {
            // A block comment can span lines; mark its first line (the
            // unsafe lint looks back a few lines anyway).
            safety.insert(t.line, true);
        }
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        marker_in_test.insert(t.line, in_test.get(i).copied().unwrap_or(false));
        match parse_marker(rest) {
            Some(Marker::Hot) => {
                let bound =
                    (i + 1..tokens.len()).find(|&j| tokens[j].is_ident("fn") && !tokens[j].raw);
                hots.push((t.line, bound));
            }
            Some(m @ Marker::Allow { .. }) => allows.entry(t.line).or_default().push(m),
            _ => malformed.push((t.line, t.text.clone())),
        }
    }
    (allows, hots, malformed, safety, marker_in_test)
}

/// Parse the text after `lint:`. Grammar:
/// `hot` | `allow(<lint-id>) <sep> <non-empty reason>` where `<sep>` is
/// `—`, `–`, `-`, or `:`.
fn parse_marker(rest: &str) -> Option<Marker> {
    if rest == "hot" {
        return Some(Marker::Hot);
    }
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    if lint.is_empty() || !lint.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
        return None;
    }
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim();
    if reason.is_empty() {
        return None;
    }
    Some(Marker::Allow {
        lint,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileScope {
        FileScope::parse(src)
    }

    #[test]
    fn finds_functions_with_receivers() {
        let s = parse(
            "struct X;\n\
             impl X {\n\
                 pub fn a(&self) {}\n\
                 pub fn b(&mut self, y: u32) -> u32 { y }\n\
                 fn c(self) {}\n\
                 pub(crate) fn d() {}\n\
             }\n\
             fn free<'a>(x: &'a str) -> &'a str { x }\n",
        );
        let by_name: Vec<(String, Receiver, bool, Option<String>)> = s
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.receiver, f.is_pub, f.impl_type.clone()))
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("a".into(), Receiver::Ref, true, Some("X".into())),
                ("b".into(), Receiver::RefMut, true, Some("X".into())),
                ("c".into(), Receiver::Owned, false, Some("X".into())),
                ("d".into(), Receiver::None, true, Some("X".into())),
                ("free".into(), Receiver::None, false, None),
            ]
        );
    }

    #[test]
    fn trait_impls_are_distinguished() {
        let s = parse(
            "impl<S: Clone> Backend for Sharded<S> {\n\
                 fn go(&mut self) {}\n\
             }\n\
             impl<S: Clone> Sharded<S> {\n\
                 pub fn own(&mut self) {}\n\
             }\n",
        );
        assert!(s.functions[0].is_trait_impl);
        assert_eq!(s.functions[0].impl_type, None);
        assert!(!s.functions[1].is_trait_impl);
        assert_eq!(s.functions[1].impl_type, Some("Sharded".into()));
    }

    #[test]
    fn cfg_test_mod_and_test_fns_are_marked() {
        let s = parse(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { y.unwrap(); }\n\
             }\n",
        );
        assert!(!s.functions[0].is_test);
        assert!(s.functions[1].is_test);
        // Tokens inside the mod are flagged.
        let unwrap_idxs: Vec<usize> = s
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwrap_idxs.len(), 2);
        assert!(!s.in_test[unwrap_idxs[0]]);
        assert!(s.in_test[unwrap_idxs[1]]);
    }

    #[test]
    fn mod_named_tests_without_attr_is_test_region() {
        let s = parse("mod tests { fn t() { x.unwrap(); } }");
        assert!(s.functions[0].is_test);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let s = parse("type F = fn(u32) -> u32;\nfn real() {}");
        assert_eq!(s.functions.len(), 1);
        assert_eq!(s.functions[0].name, "real");
    }

    #[test]
    fn markers_parse_and_bind() {
        let s = parse(
            "// lint: hot\n\
             fn kernel(a: &[f64]) -> f64 { 0.0 }\n\
             fn other() {\n\
                 // lint: allow(panic) — contract: caller must pass a valid id\n\
                 assert!(true);\n\
             }\n\
             // lint: allow(panic)\n\
             fn missing_reason() {}\n",
        );
        assert_eq!(s.hot_markers.len(), 1);
        let bound = s.hot_markers[0].1.expect("hot marker must bind");
        assert!(s.tokens[bound].is_ident("fn"));
        assert!(s.is_allowed("panic", 5));
        assert!(!s.is_allowed("alloc", 5));
        // allow without a reason is malformed.
        assert_eq!(s.malformed_markers.len(), 1);
    }

    #[test]
    fn enclosing_fn_resolves_innermost() {
        let s = parse("fn outer() { fn inner() { marker(); } }");
        let marker_idx = s
            .tokens
            .iter()
            .position(|t| t.is_ident("marker"))
            .expect("token present");
        assert_eq!(
            s.enclosing_fn(marker_idx).map(|f| f.name.as_str()),
            Some("inner")
        );
    }

    #[test]
    fn safety_comments_recorded() {
        let s = parse("// SAFETY: checked above\nlet x = 1;");
        assert!(s.safety_lines.contains_key(&1));
    }

    #[test]
    fn where_clause_and_return_impl_do_not_confuse_body() {
        let s = parse(
            "pub fn live_ids(&self) -> impl Iterator<Item = usize> + '_ where Self: Sized {\n\
                 (0..9).filter(|_| true)\n\
             }",
        );
        assert_eq!(s.functions.len(), 1);
        assert!(s.functions[0].body.is_some());
        assert_eq!(s.functions[0].receiver, Receiver::Ref);
    }
}
