//! `dsh-lint.toml` — the checked-in lint configuration, and its reader.
//!
//! The module sets the lints operate on (serving roots, kernel modules,
//! extra entry points, the publication spec) live in a `dsh-lint.toml`
//! at the workspace root instead of hardcoded Rust, so covering a new
//! crate is a one-line config change. The reader is a tiny hand-rolled
//! TOML-subset parser in the repo's vendored-shim tradition (offline
//! build, no registry deps): it accepts exactly `[section]` headers,
//! `key = "string"`, and `key = ["a", "b", ...]` arrays (single- or
//! multi-line), with `#` comments. Anything else — and any unknown
//! section or key — is a hard error, so a typo'd config can never
//! silently disable a lint.
//!
//! Schema:
//!
//! ```toml
//! [serving]
//! roots = ["crates/dsh-index/src/shard.rs"]   # L1': pub fns here are entry points
//! entry_points = ["ShardedIndex::query"]      # L1': extra roots by name
//!
//! [kernel]
//! modules = []                                # L5: the only files allowed `unsafe`
//!
//! [publication]                               # L3 target (section optional)
//! file = "crates/dsh-index/src/shard.rs"
//! type = "ShardedIndex"
//! method = "publish"
//! cell_fields = ["published", "cell"]
//! ```
//!
//! Every path named by the config must exist under the workspace root —
//! [`Config::validate_paths`] fails loudly otherwise, so renaming a
//! serving module away cannot silently shrink lint coverage.

use std::fmt;
use std::path::Path;

/// Where the publication-discipline lint (L3) applies.
#[derive(Debug, Clone)]
pub struct PublicationSpec {
    /// Path suffix of the file holding the publication protocol.
    pub file_suffix: String,
    /// Self type whose public `&mut self` methods must publish.
    pub type_name: String,
    /// The method every write path must reach.
    pub publish_method: String,
    /// Field names of the publication cell (`.read()`/`.write()` on a
    /// chain mentioning one of these is treated as a cell guard).
    pub cell_fields: Vec<String>,
}

/// Lint configuration, normally read from `dsh-lint.toml` at the
/// workspace root. Tests construct custom configs to aim the lints at
/// fixture paths.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Path suffixes of serving-root modules: their public functions are
    /// the L1' entry points, and the files are subject to the local
    /// panic-shape scan.
    pub serving_roots: Vec<String>,
    /// Extra entry-point functions by name: `"Type::method"` or a free
    /// `"function"` name, matched anywhere in the workspace.
    pub entry_points: Vec<String>,
    /// Path suffixes of kernel modules — the only files permitted to
    /// contain `unsafe` (L5). Crates containing one must carry
    /// `#![deny(unsafe_code)]` at the root instead of `forbid`.
    pub kernel_modules: Vec<String>,
    /// L3 target, or `None` to disable the publication lint.
    pub publication: Option<PublicationSpec>,
}

/// A configuration error: parse failure or a path that no longer exists.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dsh-lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// The empty configuration: no serving roots, no kernel modules, no
    /// publication spec. Only the location-independent lints (L4, L5 as
    /// blanket unsafe rejection, M1, M2 and hot-marker L2) apply.
    pub fn empty() -> Self {
        Config::default()
    }

    /// The checked-in repository configuration (`dsh-lint.toml` at the
    /// workspace root, embedded at compile time so the code default can
    /// never drift from the file CI reads).
    pub fn repo_default() -> Self {
        Config::from_toml(include_str!("../../../dsh-lint.toml"))
            .expect("checked-in dsh-lint.toml must parse")
    }

    /// Parse the TOML-subset configuration text.
    pub fn from_toml(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config::empty();
        let mut pub_file = None;
        let mut pub_type = None;
        let mut pub_method = None;
        let mut pub_fields = Vec::new();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                if !matches!(section.as_str(), "serving" | "kernel" | "publication") {
                    return Err(err(ln, format!("unknown section `[{section}]`")));
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(err(ln, format!("expected `key = value`, got {line:?}")));
            };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // A multi-line array: keep consuming lines until the `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, more) in lines.by_ref() {
                    let more = strip_comment(more).trim().to_string();
                    value.push(' ');
                    value.push_str(&more);
                    if more.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(err(ln, format!("unterminated array for key `{key}`")));
                }
            }
            match (section.as_str(), key.as_str()) {
                ("serving", "roots") => cfg.serving_roots = parse_array(ln, &value)?,
                ("serving", "entry_points") => cfg.entry_points = parse_array(ln, &value)?,
                ("kernel", "modules") => cfg.kernel_modules = parse_array(ln, &value)?,
                ("publication", "file") => pub_file = Some(parse_string(ln, &value)?),
                ("publication", "type") => pub_type = Some(parse_string(ln, &value)?),
                ("publication", "method") => pub_method = Some(parse_string(ln, &value)?),
                ("publication", "cell_fields") => pub_fields = parse_array(ln, &value)?,
                (s, k) => {
                    return Err(err(ln, format!("unknown key `{k}` in section `[{s}]`")));
                }
            }
        }
        match (pub_file, pub_type, pub_method) {
            (None, None, None) => {}
            (Some(file), Some(ty), Some(method)) => {
                cfg.publication = Some(PublicationSpec {
                    file_suffix: file,
                    type_name: ty,
                    publish_method: method,
                    cell_fields: pub_fields,
                });
            }
            _ => {
                return Err(ConfigError(
                    "[publication] requires all of `file`, `type`, and `method`".to_string(),
                ));
            }
        }
        Ok(cfg)
    }

    /// Every module path the config names must exist under `root` —
    /// renaming a serving or kernel module away must fail loudly, never
    /// silently shrink coverage.
    pub fn validate_paths(&self, root: &Path) -> Result<(), ConfigError> {
        let mut missing = Vec::new();
        let pub_file = self.publication.iter().map(|p| p.file_suffix.as_str());
        for rel in self
            .serving_roots
            .iter()
            .chain(self.kernel_modules.iter())
            .map(String::as_str)
            .chain(pub_file)
        {
            if !root.join(rel).is_file() {
                missing.push(rel.to_string());
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            Err(ConfigError(format!(
                "configured module(s) do not exist under {}: {}",
                root.display(),
                missing.join(", ")
            )))
        }
    }
}

fn err(ln: usize, msg: impl std::fmt::Display) -> ConfigError {
    ConfigError(format!("line {}: {msg}", ln + 1))
}

/// Strip a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `"a string"`.
fn parse_string(ln: usize, value: &str) -> Result<String, ConfigError> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .filter(|s| !s.contains('"') && !s.is_empty())
        .map(str::to_string)
        .ok_or_else(|| err(ln, format!("expected a non-empty \"string\", got {v:?}")))
}

/// Parse `["a", "b", ...]` (trailing comma tolerated).
fn parse_array(ln: usize, value: &str) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(ln, format!("expected a [\"...\"] array, got {v:?}")))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(ln, item)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_schema() {
        let cfg = Config::from_toml(
            r#"
            # comment
            [serving]
            roots = [
                "crates/a/src/serve.rs",  # inline comment
                "crates/b/src/serve.rs",
            ]
            entry_points = ["T::m", "free"]

            [kernel]
            modules = ["crates/a/src/simd.rs"]

            [publication]
            file = "crates/a/src/serve.rs"
            type = "Srv"
            method = "publish"
            cell_fields = ["cell"]
            "#,
        )
        .expect("parses");
        assert_eq!(cfg.serving_roots.len(), 2);
        assert_eq!(cfg.entry_points, vec!["T::m", "free"]);
        assert_eq!(cfg.kernel_modules, vec!["crates/a/src/simd.rs"]);
        let p = cfg.publication.expect("publication parsed");
        assert_eq!(p.type_name, "Srv");
        assert_eq!(p.cell_fields, vec!["cell"]);
    }

    #[test]
    fn unknown_sections_and_keys_are_errors() {
        assert!(Config::from_toml("[srving]\nroots = []").is_err());
        assert!(Config::from_toml("[serving]\nroot = []").is_err());
        assert!(Config::from_toml("[serving]\nroots = [oops]").is_err());
        assert!(Config::from_toml("[publication]\nfile = \"x\"").is_err());
    }

    #[test]
    fn hash_inside_strings_is_not_a_comment() {
        let cfg = Config::from_toml("[serving]\nroots = [\"a#b.rs\"]").expect("parses");
        assert_eq!(cfg.serving_roots, vec!["a#b.rs"]);
    }

    #[test]
    fn validate_paths_reports_every_missing_module() {
        let cfg =
            Config::from_toml("[serving]\nroots = [\"no/such/file.rs\", \"also/missing.rs\"]")
                .expect("parses");
        let e = cfg
            .validate_paths(Path::new("/nonexistent-root"))
            .expect_err("missing modules must fail");
        assert!(e.0.contains("no/such/file.rs"), "{e}");
        assert!(e.0.contains("also/missing.rs"), "{e}");
    }

    #[test]
    fn repo_default_parses_and_names_the_serving_modules() {
        let cfg = Config::repo_default();
        assert!(
            cfg.serving_roots
                .iter()
                .any(|r| r.ends_with("dsh-index/src/shard.rs")),
            "{:?}",
            cfg.serving_roots
        );
        assert!(cfg.publication.is_some());
    }
}
