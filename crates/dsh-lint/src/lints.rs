//! The lint passes, v2: interprocedural where it counts.
//!
//! Lint ids:
//!
//! * **L1** — transitive panic-freedom: no serving entry point (public
//!   function of a configured serving root, or a configured
//!   `entry_points` name) may *reach* a panic site (`unwrap`/`expect`,
//!   `panic!`/`assert!`-family) anywhere in the workspace, on any call
//!   path. Findings report the full call chain. Escape:
//!   `// lint: allow(panic) — <reason>` at the site.
//! * **L2** — transitive no-alloc hot kernels: `// lint: hot` marks a
//!   root; allocation shapes (`vec!`, `.collect()`, `Vec::new`, ...) in
//!   anything it reaches are findings, with the chain. A marker on a
//!   function already reachable from another marker is itself a finding
//!   (redundant — the property is inherited). Escapes: `allow(alloc)`
//!   at the site, `allow(hot)` on the marker.
//! * **C1** — cannot-prove: an unknown macro invocation reachable from a
//!   serving entry or hot root. Macro bodies are opaque to the resolver,
//!   so the lint refuses to claim panic/alloc-freedom past one. Escape:
//!   `allow(opaque)`.
//! * **L3** — publication discipline on the configured index type:
//!   unchanged from v1 (file-local fixpoint + guard-scope analysis).
//! * **L4** — unsafe hygiene: crate roots carry `#![forbid(unsafe_code)]`
//!   (`#![deny(unsafe_code)]` for crates with configured kernel
//!   modules), and every `unsafe` token needs a `// SAFETY:` comment
//!   within 3 lines.
//! * **L5** — unsafe boundary: `unsafe` may appear only inside modules
//!   listed in `[kernel] modules`. Escape: `allow(unsafe)`.
//! * **M1** — malformed `lint:` marker.
//! * **M2** — dead allow: a `// lint: allow(...)` that suppressed no
//!   finding this run (outside test code) is itself a finding.
//!
//! `debug_assert!` is deliberately *not* flagged by L1: the debug asserts
//! are the dynamic complement to this static pass and compile out of
//! release serving builds.

use crate::config::Config;
use crate::graph::{Graph, Reach};
use crate::lexer::TokenKind;
use crate::resolve::{FnId, Workspace};
use crate::scope::{FileScope, Function, Marker, Receiver};
use crate::Finding;
use std::collections::HashSet;

/// Run every pass over a resolved workspace. Returns the findings plus
/// the call-graph edge count (for the stats line).
pub fn run(ws: &Workspace, cfg: &Config) -> (Vec<Finding>, usize) {
    let graph = Graph::build(ws);
    let mut ctx = Ctx {
        ws,
        out: Vec::new(),
        used: HashSet::new(),
    };

    let entry_roots = ctx.entry_roots(cfg);
    let hot_roots = ctx.hot_roots();
    let entry_reach = graph.reach(&entry_roots);
    let hot_ids: Vec<FnId> = hot_roots.iter().map(|h| h.target).collect();
    let hot_reach = graph.reach(&hot_ids);
    let combined: Vec<FnId> = entry_roots.iter().chain(hot_ids.iter()).copied().collect();
    let combined_reach = graph.reach(&combined);

    ctx.l1_panic_reach(&entry_reach);
    ctx.l2_alloc_reach(&hot_reach);
    ctx.l2_redundant_markers(&graph, &hot_roots);
    ctx.c1_opaque(&combined_reach);
    ctx.local_passes(cfg);
    ctx.m2_dead_allows();

    let edges = graph.edge_count();
    (ctx.out, edges)
}

/// A bound `// lint: hot` marker.
struct HotRoot {
    file: usize,
    marker_line: u32,
    target: FnId,
}

struct Ctx<'a> {
    ws: &'a Workspace,
    out: Vec<Finding>,
    /// `(file, marker line, lint id)` of every allow that suppressed a
    /// finding — the complement feeds M2.
    used: HashSet<(usize, u32, String)>,
}

impl<'a> Ctx<'a> {
    /// Whether lint `name` is allowed at `line` of `file` (marker on the
    /// same line or the line above); records the consumption for M2.
    fn allowed(&mut self, file: usize, name: &str, line: u32) -> bool {
        let scope = &self.ws.files[file].scope;
        for l in [line, line.saturating_sub(1)] {
            let hit = scope.allows.get(&l).is_some_and(|ms| {
                ms.iter()
                    .any(|m| matches!(m, Marker::Allow { lint, .. } if lint == name))
            });
            if hit {
                self.used.insert((file, l, name.to_string()));
                return true;
            }
        }
        false
    }

    fn push(&mut self, file: usize, line: u32, lint: &'static str, site: String, message: String) {
        self.push_chain(file, line, lint, site, message, Vec::new());
    }

    fn push_chain(
        &mut self,
        file: usize,
        line: u32,
        lint: &'static str,
        site: String,
        message: String,
        chain: Vec<String>,
    ) {
        self.out.push(Finding {
            file: self.ws.files[file].rel.clone(),
            line,
            lint,
            site,
            message,
            chain,
        });
    }

    /// The call chain to `id` as display labels (`shard.rs:query`, ...).
    fn chain_of(&self, reach: &Reach, id: FnId) -> Vec<String> {
        reach
            .chain(id)
            .iter()
            .map(|&f| self.ws.chain_label(f))
            .collect()
    }

    // -- roots -------------------------------------------------------------

    /// Public functions of the serving-root files, plus configured
    /// `entry_points` names.
    fn entry_roots(&mut self, cfg: &Config) -> Vec<FnId> {
        let mut roots = Vec::new();
        let serving_files: Vec<usize> = self
            .ws
            .files
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                cfg.serving_roots
                    .iter()
                    .any(|s| f.rel.ends_with(s.as_str()))
            })
            .map(|(i, _)| i)
            .collect();
        for (id, info) in self.ws.fns.iter().enumerate() {
            if serving_files.contains(&info.file) && info.func.is_pub && info.func.body.is_some() {
                roots.push(id);
            }
        }
        for name in &cfg.entry_points {
            let matched: Vec<FnId> = self
                .ws
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.qual() == *name || f.func.name == *name)
                .map(|(id, _)| id)
                .collect();
            if matched.is_empty() {
                self.out.push(Finding {
                    file: "dsh-lint.toml".to_string(),
                    line: 1,
                    lint: "L1",
                    site: format!("entry:{name}"),
                    message: format!(
                        "configured entry point `{name}` matches no workspace function"
                    ),
                    chain: Vec::new(),
                });
            }
            roots.extend(matched);
        }
        roots
    }

    /// Bound `// lint: hot` markers; dangling / bodiless markers become
    /// findings here.
    fn hot_roots(&mut self) -> Vec<HotRoot> {
        let mut roots = Vec::new();
        for (fi, file) in self.ws.files.iter().enumerate() {
            if file.is_test_path {
                continue;
            }
            for &(marker_line, bound) in &file.scope.hot_markers {
                let func =
                    bound.and_then(|idx| file.scope.functions.iter().find(|f| f.fn_idx == idx));
                let Some(f) = func else {
                    self.push(
                        fi,
                        marker_line,
                        "L2",
                        "dangling-hot".to_string(),
                        "dangling `// lint: hot` marker: no function definition follows"
                            .to_string(),
                    );
                    continue;
                };
                if f.is_test {
                    continue;
                }
                if f.body.is_none() {
                    self.push(
                        fi,
                        marker_line,
                        "L2",
                        format!("bodiless-hot:{}", f.name),
                        format!("`// lint: hot` marker on bodiless declaration `{}`", f.name),
                    );
                    continue;
                }
                if let Some(id) = self.ws.fn_at(fi, f.fn_idx) {
                    roots.push(HotRoot {
                        file: fi,
                        marker_line,
                        target: id,
                    });
                }
            }
        }
        roots
    }

    // -- graph lints -------------------------------------------------------

    fn l1_panic_reach(&mut self, reach: &Reach) {
        for id in 0..self.ws.fns.len() {
            if !reach.visited[id] {
                continue;
            }
            let fi = self.ws.fns[id].file;
            let sites: Vec<(u32, String)> = self.ws.facts[id]
                .panics
                .iter()
                .map(|s| (s.line, s.what.clone()))
                .collect();
            for (line, what) in sites {
                if self.allowed(fi, "panic", line) {
                    continue;
                }
                let chain_v = self.chain_of(reach, id);
                let chain = chain_v.join(" → ");
                self.push_chain(
                    fi,
                    line,
                    "L1",
                    format!("panic:{what}:{chain}"),
                    format!(
                        "{what} reachable from a serving entry (path: {chain}); make it infallible or annotate `// lint: allow(panic) — <reason>`"
                    ),
                    chain_v,
                );
            }
        }
    }

    fn l2_alloc_reach(&mut self, reach: &Reach) {
        for id in 0..self.ws.fns.len() {
            if !reach.visited[id] {
                continue;
            }
            let fi = self.ws.fns[id].file;
            let qual = self.ws.fns[id].qual();
            let sites: Vec<(u32, String)> = self.ws.facts[id]
                .allocs
                .iter()
                .map(|s| (s.line, s.what.clone()))
                .collect();
            for (line, what) in sites {
                if self.allowed(fi, "alloc", line) {
                    continue;
                }
                let chain_v = self.chain_of(reach, id);
                let chain = chain_v.join(" → ");
                self.push_chain(
                    fi,
                    line,
                    "L2",
                    format!("alloc:{what}:{chain}"),
                    format!(
                        "{what} in hot code `{qual}` (hot via {chain}); hoist the allocation to the caller or annotate `// lint: allow(alloc) — <reason>`"
                    ),
                    chain_v,
                );
            }
        }
    }

    /// Greedy redundant-marker elimination: a marker whose function is
    /// already reachable from the remaining markers adds nothing — flag
    /// it. Iterated in (file, line) order with the coverage invariant
    /// maintained at every step, so cycles of markers keep exactly the
    /// representatives needed.
    fn l2_redundant_markers(&mut self, graph: &Graph, hot_roots: &[HotRoot]) {
        let mut order: Vec<usize> = (0..hot_roots.len()).collect();
        order.sort_by_key(|&i| (hot_roots[i].file, hot_roots[i].marker_line));
        let mut active: Vec<bool> = vec![true; hot_roots.len()];
        for &i in &order {
            let others: Vec<FnId> = (0..hot_roots.len())
                .filter(|&j| j != i && active[j])
                .map(|j| hot_roots[j].target)
                .collect();
            let r = graph.reach(&others);
            let h = &hot_roots[i];
            if r.visited.get(h.target).copied().unwrap_or(false) {
                active[i] = false;
                if self.allowed(h.file, "hot", h.marker_line) {
                    continue;
                }
                let qual = self.ws.fns[h.target].qual();
                let chain_v = self.chain_of(&r, h.target);
                let via = chain_v.join(" → ");
                self.push_chain(
                    h.file,
                    h.marker_line,
                    "L2",
                    format!("redundant-hot:{qual}"),
                    format!(
                        "redundant `// lint: hot` marker on `{qual}` — already hot via {via}; remove the marker (or annotate `// lint: allow(hot) — <reason>`)"
                    ),
                    chain_v,
                );
            }
        }
    }

    fn c1_opaque(&mut self, reach: &Reach) {
        for id in 0..self.ws.fns.len() {
            if !reach.visited[id] {
                continue;
            }
            let fi = self.ws.fns[id].file;
            let qual = self.ws.fns[id].qual();
            let sites: Vec<(u32, String)> = self.ws.facts[id]
                .opaques
                .iter()
                .map(|s| (s.line, s.what.clone()))
                .collect();
            for (line, what) in sites {
                if self.allowed(fi, "opaque", line) {
                    continue;
                }
                let chain_v = self.chain_of(reach, id);
                let chain = chain_v.join(" → ");
                self.push_chain(
                    fi,
                    line,
                    "C1",
                    format!("opaque:{what}:{qual}"),
                    format!(
                        "cannot prove panic/alloc-freedom past unknown macro {what} (reachable via {chain}); expand it or annotate `// lint: allow(opaque) — <reason>`"
                    ),
                    chain_v,
                );
            }
        }
    }

    // -- local (file-at-a-time) passes ------------------------------------

    fn local_passes(&mut self, cfg: &Config) {
        for fi in 0..self.ws.files.len() {
            let file = &self.ws.files[fi];
            let rel = file.rel.clone();

            for (line, raw) in file.scope.malformed_markers.clone() {
                self.push(
                    fi,
                    line,
                    "M1",
                    format!("malformed:{raw}"),
                    format!(
                        "malformed `lint:` marker {raw:?}; expected `lint: hot` or `lint: allow(<id>) — <reason>`"
                    ),
                );
            }

            let is_kernel = cfg.kernel_modules.iter().any(|k| rel.ends_with(k.as_str()));

            if !file.is_test_path {
                if let Some(spec) = &cfg.publication {
                    if rel.ends_with(spec.file_suffix.as_str()) {
                        self.l3_publication(fi, spec);
                        self.l3_guard_scope(fi, spec);
                    }
                }
                if !is_kernel {
                    self.l5_unsafe_boundary(fi);
                }
            }

            self.l4_unsafe_tokens(fi);
            if !file.is_test_path && (rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs")) {
                self.l4_root_attr(fi, cfg);
            }
        }
    }

    fn l4_unsafe_tokens(&mut self, fi: usize) {
        let file = &self.ws.files[fi];
        let mut hits = Vec::new();
        for &i in &file.view {
            let t = &file.scope.tokens[i];
            if t.is_ident("unsafe") && !t.raw {
                let covered = (t.line.saturating_sub(3)..=t.line)
                    .any(|l| file.scope.safety_lines.contains_key(&l));
                if !covered {
                    hits.push(t.line);
                }
            }
        }
        for line in hits {
            self.push(
                fi,
                line,
                "L4",
                "unsafe-no-safety".to_string(),
                "`unsafe` without a `// SAFETY:` comment on the same line or within 3 lines above"
                    .to_string(),
            );
        }
    }

    /// Crate roots must deny unsafe: `forbid` normally, `deny` when the
    /// crate declares kernel modules (forbid would reject the kernels'
    /// own `#[allow]`-free unsafe blocks at the crate level).
    fn l4_root_attr(&mut self, fi: usize, cfg: &Config) {
        let file = &self.ws.files[fi];
        let rel = &file.rel;
        let crate_dir = rel
            .strip_suffix("src/lib.rs")
            .or_else(|| rel.strip_suffix("src/main.rs"))
            .unwrap_or("");
        let kernel_crate = cfg
            .kernel_modules
            .iter()
            .any(|k| !crate_dir.is_empty() && k.starts_with(crate_dir));
        let want = if kernel_crate { "deny" } else { "forbid" };
        let has = file.view.windows(8).any(|w| {
            let t = |n: usize| &file.scope.tokens[w[n]];
            t(0).is_punct('#')
                && t(1).is_punct('!')
                && t(2).kind == TokenKind::OpenBracket
                && t(3).is_ident(want)
                && t(4).kind == TokenKind::OpenParen
                && t(5).is_ident("unsafe_code")
                && t(6).kind == TokenKind::CloseParen
                && t(7).kind == TokenKind::CloseBracket
        });
        if !has {
            let extra = if kernel_crate {
                " (crate declares kernel modules, so `deny` — not `forbid` — is required)"
            } else {
                ""
            };
            self.push(
                fi,
                1,
                "L4",
                format!("root-attr:{want}"),
                format!("crate root is missing `#![{want}(unsafe_code)]`{extra}"),
            );
        }
    }

    /// L5: `unsafe` only inside configured kernel modules.
    fn l5_unsafe_boundary(&mut self, fi: usize) {
        let file = &self.ws.files[fi];
        let mut hits = Vec::new();
        for &i in &file.view {
            let t = &file.scope.tokens[i];
            if t.is_ident("unsafe") && !t.raw && !file.scope.in_test[i] {
                hits.push(t.line);
            }
        }
        for line in hits {
            if self.allowed(fi, "unsafe", line) {
                continue;
            }
            self.push(
                fi,
                line,
                "L5",
                "unsafe-outside-kernel".to_string(),
                "`unsafe` outside a kernel module; move it into a file listed under `[kernel] modules` in dsh-lint.toml (or annotate `// lint: allow(unsafe) — <reason>`)"
                    .to_string(),
            );
        }
    }

    // -- L3 (ported from v1, file-local) -----------------------------------

    fn l3_publication(&mut self, fi: usize, spec: &crate::config::PublicationSpec) {
        let file = &self.ws.files[fi];
        let scope = &file.scope;
        let view = &file.view;
        let methods: Vec<Function> = scope
            .functions
            .iter()
            .filter(|f| !f.is_trait_impl && f.impl_type.as_deref() == Some(spec.type_name.as_str()))
            .cloned()
            .collect();

        // Fixpoint: a method "publishes" if it calls `self.publish(...)`
        // or any other already-publishing method of the same type.
        let mut publishing: HashSet<String> = HashSet::new();
        publishing.insert(spec.publish_method.clone());
        loop {
            let mut changed = false;
            for m in &methods {
                if publishing.contains(&m.name) {
                    continue;
                }
                let Some((open, close)) = m.body else {
                    continue;
                };
                let calls_publishing = self_calls(scope, view, open, close)
                    .iter()
                    .any(|callee| publishing.contains(callee));
                if calls_publishing {
                    publishing.insert(m.name.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for m in &methods {
            if !m.is_pub || m.receiver != Receiver::RefMut || m.is_test {
                continue;
            }
            if !publishing.contains(&m.name) {
                if !self.allowed(fi, "publish", m.line) {
                    self.push(
                        fi,
                        m.line,
                        "L3",
                        format!("no-publish:{}", m.name),
                        format!(
                            "pub `&mut self` method `{}::{}` never reaches `{}`; every write must publish a new epoch (or annotate `// lint: allow(publish) — <reason>`)",
                            spec.type_name, m.name, spec.publish_method
                        ),
                    );
                }
                continue;
            }
            // The method publishes on its fall-through path; early exits
            // would skip it, so flag `return` / `?` inside the body.
            let Some((open, close)) = m.body else {
                continue;
            };
            let file = &self.ws.files[fi];
            let earlies: Vec<(u32, String)> = file
                .view
                .iter()
                .filter(|&&i| i > open && i < close)
                .filter_map(|&i| {
                    let t = &file.scope.tokens[i];
                    let early = (t.is_ident("return") && !t.raw) || t.is_punct('?');
                    early.then(|| (t.line, t.text.clone()))
                })
                .collect();
            for (line, text) in earlies {
                if !self.allowed(fi, "publish", line) {
                    self.push(
                        fi,
                        line,
                        "L3",
                        format!("early-exit:{}:{text}", m.name),
                        format!(
                            "early exit (`{text}`) in publishing method `{}::{}` may skip `{}`; restructure or annotate `// lint: allow(publish) — <reason>`",
                            spec.type_name, m.name, spec.publish_method
                        ),
                    );
                }
            }
        }
    }

    fn l3_guard_scope(&mut self, fi: usize, spec: &crate::config::PublicationSpec) {
        let file = &self.ws.files[fi];
        let scope = &file.scope;
        let view = &file.view;
        // Collect candidate violations first (immutable borrow), then
        // filter through the allow tracker (mutable).
        let mut candidates: Vec<(u32, String, u32, String)> = Vec::new();
        for (k, &i) in view.iter().enumerate() {
            let t = &scope.tokens[i];
            if scope.in_test[i] || !t.is_punct('.') {
                continue;
            }
            let Some(&m_idx) = view.get(k + 1) else {
                continue;
            };
            let m = &scope.tokens[m_idx];
            if !(m.is_ident("read") || m.is_ident("write")) {
                continue;
            }
            if !view
                .get(k + 2)
                .is_some_and(|&j| scope.tokens[j].kind == TokenKind::OpenParen)
            {
                continue;
            }
            // Is the receiver chain the publication cell? Look back a few
            // tokens for one of the configured field names.
            let chain_hit = (k.saturating_sub(6)..k).any(|p| {
                let pt = &scope.tokens[view[p]];
                pt.kind == TokenKind::Ident && spec.cell_fields.contains(&pt.text)
            });
            if !chain_hit {
                continue;
            }
            let guard_line = m.line;

            // Liveness range: a let-bound guard lives to the end of the
            // enclosing block; a temporary guard to the end of the
            // statement.
            let live_end = if statement_has_let(scope, view, k) {
                enclosing_block_close(scope, i)
            } else {
                statement_end(scope, view, k)
            };

            for &j in view.iter().filter(|&&j| j > i && j < live_end) {
                let bt = &scope.tokens[j];
                let banned = if bt.kind == TokenKind::Ident && !bt.raw {
                    let next_open = next_view_token(scope, view, j)
                        .is_some_and(|n| n.kind == TokenKind::OpenParen);
                    (L3_GUARD_BANNED.contains(&bt.text.as_str()) && next_open)
                        || (bt.text == "make_mut")
                } else {
                    false
                };
                if banned {
                    candidates.push((bt.line, bt.text.clone(), guard_line, m.text.clone()));
                }
            }
        }
        for (line, text, guard_line, guard_kind) in candidates {
            if self.allowed(fi, "guard", guard_line) || self.allowed(fi, "guard", line) {
                continue;
            }
            self.push(
                fi,
                line,
                "L3",
                format!("guard:{text}:{guard_kind}"),
                format!(
                    "`{text}` while a `.{guard_kind}()` guard on the publication cell (line {guard_line}) is live; drop the guard first (or annotate `// lint: allow(guard) — <reason>`)"
                ),
            );
        }
    }

    // -- M2 ----------------------------------------------------------------

    /// Dead allows: an escape hatch that suppressed nothing this run.
    /// Runs last; allows inside test regions or test-path files are
    /// exempt (the lints they would suppress never fire there).
    fn m2_dead_allows(&mut self) {
        let mut dead: Vec<(usize, u32, String)> = Vec::new();
        for (fi, file) in self.ws.files.iter().enumerate() {
            if file.is_test_path {
                continue;
            }
            for (&line, markers) in &file.scope.allows {
                if file
                    .scope
                    .marker_in_test
                    .get(&line)
                    .copied()
                    .unwrap_or(false)
                {
                    continue;
                }
                for m in markers {
                    if let Marker::Allow { lint, .. } = m {
                        if !self.used.contains(&(fi, line, lint.clone())) {
                            dead.push((fi, line, lint.clone()));
                        }
                    }
                }
            }
        }
        for (fi, line, lint) in dead {
            self.push(
                fi,
                line,
                "M2",
                format!("dead-allow:{lint}"),
                format!(
                    "dead `// lint: allow({lint})` — it suppresses no finding; remove the stale escape hatch"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L3 helpers (unchanged from v1)
// ---------------------------------------------------------------------------

/// Calls that must never run while a publication-cell guard is live: they
/// clone shards, rebuild segments, or re-enter the cell and would either
/// stall wait-free readers or self-deadlock.
const L3_GUARD_BANNED: [&str; 6] = [
    "fork",
    "seal",
    "seal_with_threads",
    "compact",
    "compact_with_threads",
    "consolidate",
];

/// Names called as `self.<name>(` within a body token range.
fn self_calls(scope: &FileScope, view: &[usize], open: usize, close: usize) -> Vec<String> {
    let body: Vec<usize> = view
        .iter()
        .copied()
        .filter(|&i| i > open && i < close)
        .collect();
    let mut calls = Vec::new();
    for w in body.windows(4) {
        let (a, b, c, d) = (
            &scope.tokens[w[0]],
            &scope.tokens[w[1]],
            &scope.tokens[w[2]],
            &scope.tokens[w[3]],
        );
        if a.is_ident("self")
            && b.is_punct('.')
            && c.kind == TokenKind::Ident
            && d.kind == TokenKind::OpenParen
        {
            calls.push(c.text.clone());
        }
    }
    calls
}

fn next_view_token<'a>(
    scope: &'a FileScope,
    view: &[usize],
    after: usize,
) -> Option<&'a crate::lexer::Token> {
    view.iter().find(|&&j| j > after).map(|&j| &scope.tokens[j])
}

/// Whether the statement containing view index `k` starts with `let`
/// (scan back to the previous `;` / `{` / `}`).
fn statement_has_let(scope: &FileScope, view: &[usize], k: usize) -> bool {
    for p in (0..k).rev() {
        let t = &scope.tokens[view[p]];
        match t.kind {
            TokenKind::OpenBrace | TokenKind::CloseBrace => return false,
            TokenKind::Punct if t.text == ";" => return false,
            TokenKind::Ident if t.text == "let" && !t.raw => return true,
            _ => {}
        }
    }
    false
}

/// Token index of the `}` closing the innermost block containing token `i`.
fn enclosing_block_close(scope: &FileScope, i: usize) -> usize {
    scope
        .brace_match
        .iter()
        .filter(|(&open, &close)| open < i && i < close)
        .map(|(_, &close)| close)
        .min()
        .unwrap_or(scope.tokens.len())
}

/// Token index just past the end of the statement containing view index
/// `k`: the next `;` at the same nesting level.
fn statement_end(scope: &FileScope, view: &[usize], k: usize) -> usize {
    let mut depth = 0i32;
    for &j in &view[k..] {
        let t = &scope.tokens[j];
        match t.kind {
            TokenKind::OpenBrace | TokenKind::OpenParen | TokenKind::OpenBracket => depth += 1,
            TokenKind::CloseBrace | TokenKind::CloseParen | TokenKind::CloseBracket => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            TokenKind::Punct if t.text == ";" && depth == 0 => return j,
            _ => {}
        }
    }
    scope.tokens.len()
}
