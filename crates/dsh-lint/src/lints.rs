//! The lint passes. Each operates on the token stream + scope structure
//! of one file ([`FileScope`]) and emits [`Finding`]s.
//!
//! Lint ids:
//!
//! * **L1** — panic-freedom on serving-path modules: no `unwrap`/`expect`
//!   method calls and no `panic!`/`todo!`/`unimplemented!`/`unreachable!`/
//!   `assert!`-family macros outside test code. Escape hatch:
//!   `// lint: allow(panic) — <reason>` on the same or previous line.
//!   (`debug_assert!` is deliberately permitted — it is the dynamic
//!   complement to these lints and compiles out of release serving builds.)
//! * **L2** — no-alloc hot kernels: a function preceded by `// lint: hot`
//!   must not contain allocation-shaped calls (`Vec::new`, `vec![`,
//!   `.to_vec()`, `.collect()`, `.clone()`, `format!`, `Box::new`,
//!   `String::from`, ...). Escape: `// lint: allow(alloc) — <reason>`.
//! * **L3** — publication discipline on the sharded index: every public
//!   `&mut self` method on the configured type must reach the `publish`
//!   method (directly or via other methods of the same type) and must not
//!   bail early (`return` / `?`); and no `.read()`/`.write()` guard on the
//!   publication cell may be live across a shard clone, seal, or compact.
//!   Escapes: `allow(publish)`, `allow(guard)`.
//! * **L4** — unsafe hygiene: every crate root carries
//!   `#![forbid(unsafe_code)]`, and any `unsafe` token needs a `// SAFETY:`
//!   comment on the same line or within the three lines above.
//! * **M1** — a comment contains `lint:` but parses as neither `hot` nor
//!   a well-formed `allow(<id>) — <reason>`.

use crate::lexer::TokenKind;
use crate::scope::{FileScope, Function, Receiver};
use crate::{Config, Finding};
use std::collections::HashSet;

/// Run every applicable pass over one parsed file.
pub fn check_file(rel: &str, scope: &FileScope, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    // Indexes of non-comment tokens: pattern matching happens over this
    // view so interleaved comments never split a `.unwrap()` sequence.
    let view: Vec<usize> = scope
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokenKind::Comment)
        .map(|(i, _)| i)
        .collect();

    for (line, raw) in &scope.malformed_markers {
        out.push(Finding::new(
            rel,
            *line,
            "M1",
            format!("malformed `lint:` marker {raw:?}; expected `lint: hot` or `lint: allow(<id>) — <reason>`"),
        ));
    }

    let test_path = is_test_path(rel);
    if !test_path {
        if cfg
            .serving_suffixes
            .iter()
            .any(|s| rel.ends_with(s.as_str()))
        {
            l1_panic_freedom(rel, scope, &view, &mut out);
        }
        l2_hot_kernels(rel, scope, &view, &mut out);
        if let Some(spec) = &cfg.publication {
            if rel.ends_with(spec.file_suffix.as_str()) {
                l3_publication(rel, scope, &view, spec, &mut out);
                l3_guard_scope(rel, scope, &view, spec, &mut out);
            }
        }
    }

    l4_unsafe_tokens(rel, scope, &view, &mut out);
    if !test_path && (rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs")) {
        l4_forbid_attr(rel, scope, &view, &mut out);
    }

    out
}

/// Integration-test / bench / example sources are exempt from the
/// serving-path lints (only the `unsafe` scan still applies).
fn is_test_path(rel: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")))
}

// ---------------------------------------------------------------------------
// L1
// ---------------------------------------------------------------------------

const L1_METHODS: [&str; 2] = ["unwrap", "expect"];
const L1_MACROS: [&str; 7] = [
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn l1_panic_freedom(rel: &str, scope: &FileScope, view: &[usize], out: &mut Vec<Finding>) {
    for w in view.windows(3) {
        let (a, b, c) = (
            &scope.tokens[w[0]],
            &scope.tokens[w[1]],
            &scope.tokens[w[2]],
        );
        if scope.in_test[w[0]] {
            continue;
        }
        // Method form: `.unwrap(` / `.expect(`
        if a.is_punct('.')
            && b.kind == TokenKind::Ident
            && !b.raw
            && L1_METHODS.contains(&b.text.as_str())
            && c.kind == TokenKind::OpenParen
            && !scope.is_allowed("panic", b.line)
        {
            out.push(Finding::new(
                rel,
                b.line,
                "L1",
                format!(
                    "`.{}()` on serving path; make it infallible or annotate `// lint: allow(panic) — <reason>`",
                    b.text
                ),
            ));
        }
        // Macro form: `panic!` etc.
        if a.kind == TokenKind::Ident
            && !a.raw
            && L1_MACROS.contains(&a.text.as_str())
            && b.is_punct('!')
            && !scope.is_allowed("panic", a.line)
        {
            out.push(Finding::new(
                rel,
                a.line,
                "L1",
                format!(
                    "`{}!` on serving path; use `debug_assert!` or annotate `// lint: allow(panic) — <reason>`",
                    a.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L2
// ---------------------------------------------------------------------------

const L2_METHODS: [&str; 5] = ["to_vec", "collect", "clone", "to_string", "to_owned"];
const L2_MACROS: [&str; 2] = ["vec", "format"];
const L2_TYPES: [&str; 5] = ["Vec", "Box", "String", "HashMap", "BTreeMap"];
const L2_CTORS: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];

fn l2_hot_kernels(rel: &str, scope: &FileScope, view: &[usize], out: &mut Vec<Finding>) {
    for (marker_line, bound) in &scope.hot_markers {
        let func = bound.and_then(|fi| scope.functions.iter().find(|f| f.fn_idx == fi));
        let Some(f) = func else {
            out.push(Finding::new(
                rel,
                *marker_line,
                "L2",
                "dangling `// lint: hot` marker: no function definition follows".to_string(),
            ));
            continue;
        };
        let Some((open, close)) = f.body else {
            out.push(Finding::new(
                rel,
                *marker_line,
                "L2",
                format!("`// lint: hot` marker on bodiless declaration `{}`", f.name),
            ));
            continue;
        };
        if f.is_test {
            continue;
        }
        l2_scan_body(rel, scope, view, open, close, &f.name, out);
    }
}

fn l2_scan_body(
    rel: &str,
    scope: &FileScope,
    view: &[usize],
    open: usize,
    close: usize,
    fn_name: &str,
    out: &mut Vec<Finding>,
) {
    let body: Vec<usize> = view
        .iter()
        .copied()
        .filter(|&i| i > open && i < close)
        .collect();
    let mut flag = |line: u32, what: &str| {
        if !scope.is_allowed("alloc", line) {
            out.push(Finding::new(
                rel,
                line,
                "L2",
                format!(
                    "{what} in hot kernel `{fn_name}`; hoist the allocation to the caller or annotate `// lint: allow(alloc) — <reason>`"
                ),
            ));
        }
    };
    for (k, &i) in body.iter().enumerate() {
        let t = &scope.tokens[i];
        let next = body.get(k + 1).map(|&j| &scope.tokens[j]);
        // Macro form: `vec![` / `format!(`
        if t.kind == TokenKind::Ident
            && !t.raw
            && L2_MACROS.contains(&t.text.as_str())
            && next.is_some_and(|n| n.is_punct('!'))
        {
            flag(t.line, &format!("`{}!` allocation", t.text));
        }
        // Method form: `.collect(` / `.clone(` / ... (path form such as
        // `Arc::clone(&...)` has no leading dot and is not flagged here).
        if t.is_punct('.') {
            if let (Some(n1), Some(n2)) = (next, body.get(k + 2).map(|&j| &scope.tokens[j])) {
                if n1.kind == TokenKind::Ident
                    && !n1.raw
                    && L2_METHODS.contains(&n1.text.as_str())
                    && n2.kind == TokenKind::OpenParen
                {
                    flag(n1.line, &format!("`.{}()` call", n1.text));
                }
            }
        }
        // Path form: `Vec::new(` / `Box::new(` / `String::from(` / ...
        if t.kind == TokenKind::Ident && !t.raw && L2_TYPES.contains(&t.text.as_str()) {
            let rest: Vec<&crate::lexer::Token> = (k + 1..(k + 5).min(body.len()))
                .map(|m| &scope.tokens[body[m]])
                .collect();
            if rest.len() == 4
                && rest[0].is_punct(':')
                && rest[1].is_punct(':')
                && rest[2].kind == TokenKind::Ident
                && L2_CTORS.contains(&rest[2].text.as_str())
                && rest[3].kind == TokenKind::OpenParen
            {
                flag(
                    t.line,
                    &format!("`{}::{}()` allocation", t.text, rest[2].text),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L3 — publication discipline
// ---------------------------------------------------------------------------

fn l3_publication(
    rel: &str,
    scope: &FileScope,
    view: &[usize],
    spec: &crate::PublicationSpec,
    out: &mut Vec<Finding>,
) {
    let methods: Vec<&Function> = scope
        .functions
        .iter()
        .filter(|f| !f.is_trait_impl && f.impl_type.as_deref() == Some(spec.type_name.as_str()))
        .collect();

    // Fixpoint: a method "publishes" if it calls `self.publish(...)` or any
    // other already-publishing method of the same type (e.g. `seal()` →
    // `seal_with_threads()` → `publish()`).
    let mut publishing: HashSet<&str> = HashSet::new();
    publishing.insert(spec.publish_method.as_str());
    loop {
        let mut changed = false;
        for m in &methods {
            if publishing.contains(m.name.as_str()) {
                continue;
            }
            let Some((open, close)) = m.body else {
                continue;
            };
            let calls_publishing = self_calls(scope, view, open, close)
                .iter()
                .any(|callee| publishing.contains(callee.as_str()));
            if calls_publishing {
                publishing.insert(m.name.as_str());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for m in &methods {
        if !m.is_pub || m.receiver != Receiver::RefMut || m.is_test {
            continue;
        }
        if !publishing.contains(m.name.as_str()) {
            if !scope.is_allowed("publish", m.line) {
                out.push(Finding::new(
                    rel,
                    m.line,
                    "L3",
                    format!(
                        "pub `&mut self` method `{}::{}` never reaches `{}`; every write must publish a new epoch (or annotate `// lint: allow(publish) — <reason>`)",
                        spec.type_name, m.name, spec.publish_method
                    ),
                ));
            }
            continue;
        }
        // The method publishes on its fall-through path; early exits would
        // skip it, so flag `return` / `?` inside the body.
        let Some((open, close)) = m.body else {
            continue;
        };
        for &i in view.iter().filter(|&&i| i > open && i < close) {
            let t = &scope.tokens[i];
            let early = (t.is_ident("return") && !t.raw) || t.is_punct('?');
            if early && !scope.is_allowed("publish", t.line) {
                out.push(Finding::new(
                    rel,
                    t.line,
                    "L3",
                    format!(
                        "early exit (`{}`) in publishing method `{}::{}` may skip `{}`; restructure or annotate `// lint: allow(publish) — <reason>`",
                        t.text, spec.type_name, m.name, spec.publish_method
                    ),
                ));
            }
        }
    }
}

/// Names called as `self.<name>(` within a body token range.
fn self_calls(scope: &FileScope, view: &[usize], open: usize, close: usize) -> Vec<String> {
    let body: Vec<usize> = view
        .iter()
        .copied()
        .filter(|&i| i > open && i < close)
        .collect();
    let mut calls = Vec::new();
    for w in body.windows(4) {
        let (a, b, c, d) = (
            &scope.tokens[w[0]],
            &scope.tokens[w[1]],
            &scope.tokens[w[2]],
            &scope.tokens[w[3]],
        );
        if a.is_ident("self")
            && b.is_punct('.')
            && c.kind == TokenKind::Ident
            && d.kind == TokenKind::OpenParen
        {
            calls.push(c.text.clone());
        }
    }
    calls
}

// ---------------------------------------------------------------------------
// L3 — guard-scope analysis
// ---------------------------------------------------------------------------

/// Calls that must never run while a publication-cell guard is live: they
/// clone shards, rebuild segments, or re-enter the cell and would either
/// stall wait-free readers or self-deadlock.
const L3_GUARD_BANNED: [&str; 6] = [
    "fork",
    "seal",
    "seal_with_threads",
    "compact",
    "compact_with_threads",
    "consolidate",
];

fn l3_guard_scope(
    rel: &str,
    scope: &FileScope,
    view: &[usize],
    spec: &crate::PublicationSpec,
    out: &mut Vec<Finding>,
) {
    for (k, &i) in view.iter().enumerate() {
        let t = &scope.tokens[i];
        if scope.in_test[i] || !t.is_punct('.') {
            continue;
        }
        let Some(&m_idx) = view.get(k + 1) else {
            continue;
        };
        let m = &scope.tokens[m_idx];
        if !(m.is_ident("read") || m.is_ident("write")) {
            continue;
        }
        if !view
            .get(k + 2)
            .is_some_and(|&j| scope.tokens[j].kind == TokenKind::OpenParen)
        {
            continue;
        }
        // Is the receiver chain the publication cell? Look back a few
        // tokens for one of the configured field names.
        let chain_hit = (k.saturating_sub(6)..k).any(|p| {
            let pt = &scope.tokens[view[p]];
            pt.kind == TokenKind::Ident && spec.cell_fields.contains(&pt.text)
        });
        if !chain_hit {
            continue;
        }
        let guard_line = m.line;
        if scope.is_allowed("guard", guard_line) {
            continue;
        }

        // Liveness range: a let-bound guard lives to the end of the
        // enclosing block; a temporary guard to the end of the statement.
        let live_end = if statement_has_let(scope, view, k) {
            enclosing_block_close(scope, i)
        } else {
            statement_end(scope, view, k)
        };

        for &j in view.iter().filter(|&&j| j > i && j < live_end) {
            let bt = &scope.tokens[j];
            let banned = if bt.kind == TokenKind::Ident && !bt.raw {
                let next_open =
                    next_view_token(scope, view, j).is_some_and(|n| n.kind == TokenKind::OpenParen);
                (L3_GUARD_BANNED.contains(&bt.text.as_str()) && next_open)
                    || (bt.text == "make_mut")
            } else {
                false
            };
            if banned && !scope.is_allowed("guard", bt.line) {
                out.push(Finding::new(
                    rel,
                    bt.line,
                    "L3",
                    format!(
                        "`{}` while a `.{}()` guard on the publication cell (line {}) is live; drop the guard first (or annotate `// lint: allow(guard) — <reason>`)",
                        bt.text, m.text, guard_line
                    ),
                ));
            }
        }
    }
}

fn next_view_token<'a>(
    scope: &'a FileScope,
    view: &[usize],
    after: usize,
) -> Option<&'a crate::lexer::Token> {
    view.iter().find(|&&j| j > after).map(|&j| &scope.tokens[j])
}

/// Whether the statement containing view index `k` starts with `let`
/// (scan back to the previous `;` / `{` / `}`).
fn statement_has_let(scope: &FileScope, view: &[usize], k: usize) -> bool {
    for p in (0..k).rev() {
        let t = &scope.tokens[view[p]];
        match t.kind {
            TokenKind::OpenBrace | TokenKind::CloseBrace => return false,
            TokenKind::Punct if t.text == ";" => return false,
            TokenKind::Ident if t.text == "let" && !t.raw => return true,
            _ => {}
        }
    }
    false
}

/// Token index of the `}` closing the innermost block containing token `i`.
fn enclosing_block_close(scope: &FileScope, i: usize) -> usize {
    scope
        .brace_match
        .iter()
        .filter(|(&open, &close)| open < i && i < close)
        .map(|(_, &close)| close)
        .min()
        .unwrap_or(scope.tokens.len())
}

/// Token index just past the end of the statement containing view index
/// `k`: the next `;` at the same nesting level.
fn statement_end(scope: &FileScope, view: &[usize], k: usize) -> usize {
    let mut depth = 0i32;
    for &j in &view[k..] {
        let t = &scope.tokens[j];
        match t.kind {
            TokenKind::OpenBrace | TokenKind::OpenParen | TokenKind::OpenBracket => depth += 1,
            TokenKind::CloseBrace | TokenKind::CloseParen | TokenKind::CloseBracket => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            TokenKind::Punct if t.text == ";" && depth == 0 => return j,
            _ => {}
        }
    }
    scope.tokens.len()
}

// ---------------------------------------------------------------------------
// L4
// ---------------------------------------------------------------------------

fn l4_unsafe_tokens(rel: &str, scope: &FileScope, view: &[usize], out: &mut Vec<Finding>) {
    for &i in view {
        let t = &scope.tokens[i];
        if t.is_ident("unsafe") && !t.raw {
            let covered =
                (t.line.saturating_sub(3)..=t.line).any(|l| scope.safety_lines.contains_key(&l));
            if !covered {
                out.push(Finding::new(
                    rel,
                    t.line,
                    "L4",
                    "`unsafe` without a `// SAFETY:` comment on the same line or within 3 lines above"
                        .to_string(),
                ));
            }
        }
    }
}

fn l4_forbid_attr(rel: &str, scope: &FileScope, view: &[usize], out: &mut Vec<Finding>) {
    let has = view.windows(8).any(|w| {
        let t = |n: usize| &scope.tokens[w[n]];
        t(0).is_punct('#')
            && t(1).is_punct('!')
            && t(2).kind == TokenKind::OpenBracket
            && t(3).is_ident("forbid")
            && t(4).kind == TokenKind::OpenParen
            && t(5).is_ident("unsafe_code")
            && t(6).kind == TokenKind::CloseParen
            && t(7).kind == TokenKind::CloseBracket
    });
    if !has {
        out.push(Finding::new(
            rel,
            1,
            "L4",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}
