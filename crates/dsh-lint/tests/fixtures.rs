//! Fixture-driven self-tests: each known-bad fixture must produce exactly
//! the expected findings (lint id + line), each known-good fixture none.
//! Fixture sources are lexed/linted as text — they never compile, and the
//! workspace walk skips `fixtures/` directories.

use dsh_lint::{check_file_source, Config, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Aim the lints at a fixture by giving it a serving-path file name; the
/// config is the real repo default, so fixtures exercise exactly the
/// production configuration.
fn lint(name: &str, as_path: &str) -> Vec<Finding> {
    check_file_source(as_path, &fixture(name), &Config::repo_default())
}

const SERVING: &str = "crates/dsh-index/src/table.rs";
const SHARD: &str = "crates/dsh-index/src/shard.rs";
const ROOT: &str = "crates/dsh-core/src/lib.rs";

fn ids_and_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.lint, f.line)).collect()
}

#[test]
fn l1_bad_flags_every_panic_shape() {
    let f = lint("l1_bad.rs", SERVING);
    assert_eq!(
        ids_and_lines(&f),
        vec![("L1", 7), ("L1", 8), ("L1", 10), ("L1", 12), ("L1", 14)],
        "{f:#?}"
    );
}

#[test]
fn l1_good_is_clean() {
    let f = lint("l1_good.rs", SERVING);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn l2_bad_flags_every_allocation_shape() {
    let f = lint("l2_bad.rs", SERVING);
    let expected: Vec<(&str, u32)> = (7..=14)
        .map(|l| ("L2", l))
        .chain([("L2", 18)]) // dangling marker
        .collect();
    assert_eq!(ids_and_lines(&f), expected, "{f:#?}");
}

#[test]
fn l2_good_is_clean() {
    let f = lint("l2_good.rs", SERVING);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn l2_markers_work_outside_serving_modules() {
    // Hot kernels are checked wherever the marker appears (dsh-core's
    // distance kernels are not serving-path files).
    let f = lint("l2_bad.rs", "crates/dsh-core/src/points.rs");
    assert!(f.iter().all(|x| x.lint == "L2"), "{f:#?}");
    assert_eq!(f.len(), 9, "{f:#?}");
}

#[test]
fn l3_bad_flags_publication_violations() {
    let f = lint("l3_bad.rs", SHARD);
    // forget_to_publish (15), early return (21), compact under guard (31)
    // — plus the same file is a serving module, which is fine: no panic
    // shapes in it.
    let l3: Vec<(&str, u32)> = ids_and_lines(&f)
        .into_iter()
        .filter(|(id, _)| *id == "L3")
        .collect();
    assert_eq!(l3, vec![("L3", 15), ("L3", 21), ("L3", 31)], "{f:#?}");
    assert_eq!(f.len(), l3.len(), "only L3 findings expected: {f:#?}");
}

#[test]
fn l3_good_is_clean() {
    let f = lint("l3_good.rs", SHARD);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn l3_is_scoped_to_the_shard_file() {
    // The same violations in a non-publication file are not L3 findings.
    let f = lint("l3_bad.rs", "crates/dsh-euclidean/src/lib.rs");
    assert!(f.iter().all(|x| x.lint != "L3"), "{f:#?}");
}

#[test]
fn l4_bad_flags_missing_forbid_and_bare_unsafe() {
    let f = lint("l4_bad.rs", ROOT);
    assert_eq!(ids_and_lines(&f), vec![("L4", 1), ("L4", 6)], "{f:#?}");
}

#[test]
fn l4_good_is_clean() {
    let f = lint("l4_good.rs", ROOT);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn tricky_tokens_produce_no_findings() {
    let f = lint("tricky_tokens.rs", SERVING);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn findings_render_machine_readable_lines() {
    let f = lint("l1_bad.rs", SERVING);
    let first = f.first().expect("l1_bad has findings").to_string();
    assert!(
        first.starts_with("crates/dsh-index/src/table.rs:7: L1 "),
        "{first}"
    );
}
