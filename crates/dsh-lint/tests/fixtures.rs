//! Fixture-driven self-tests: each known-bad fixture must produce exactly
//! the expected findings (lint id + line), each known-good fixture none.
//! Single-file fixtures are lexed/linted as text and never compile; the
//! `ws_*` directories are miniature multi-crate workspaces (each with its
//! own `dsh-lint.toml`) that exercise the interprocedural layer through
//! the same `load_config` + `check_workspace` path the CLI uses. The real
//! workspace walk skips `fixtures/` directories.

use dsh_lint::{check_file_source, Config, Finding, Report};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// Aim the lints at a fixture by giving it a serving-path file name; the
/// config is the real repo default, so fixtures exercise exactly the
/// production configuration.
fn lint(name: &str, as_path: &str) -> Vec<Finding> {
    check_file_source(as_path, &fixture(name), &Config::repo_default())
}

/// Lint a `ws_*` mini-workspace rooted at its fixture directory, loading
/// its own `dsh-lint.toml` exactly as the CLI would.
fn lint_ws(name: &str) -> Report {
    let root = PathBuf::from(format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR")));
    let cfg = dsh_lint::load_config(&root)
        .unwrap_or_else(|e| panic!("loading {name}/dsh-lint.toml: {e}"));
    dsh_lint::check_workspace(&root, &cfg).unwrap_or_else(|e| panic!("walking {name}: {e}"))
}

const SERVING: &str = "crates/dsh-index/src/table.rs";
const SHARD: &str = "crates/dsh-index/src/shard.rs";
/// Root of the crate that declares the repo's one `[kernel]` module, so
/// the default L4 regime here is `deny(unsafe_code)`.
const KERNEL_ROOT: &str = "crates/dsh-core/src/lib.rs";
/// Root of a crate with no kernel modules: the strict `forbid` regime.
const PLAIN_ROOT: &str = "crates/dsh-euclidean/src/lib.rs";

fn ids_and_lines(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.lint, f.line)).collect()
}

#[test]
fn l1_bad_flags_every_panic_shape() {
    let f = lint("l1_bad.rs", SERVING);
    assert_eq!(
        ids_and_lines(&f),
        vec![("L1", 7), ("L1", 8), ("L1", 10), ("L1", 12), ("L1", 14)],
        "{f:#?}"
    );
}

#[test]
fn l1_good_is_clean() {
    let f = lint("l1_good.rs", SERVING);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn l2_bad_flags_every_allocation_shape() {
    let f = lint("l2_bad.rs", SERVING);
    let expected: Vec<(&str, u32)> = (7..=14)
        .map(|l| ("L2", l))
        .chain([("L2", 18)]) // dangling marker
        .collect();
    assert_eq!(ids_and_lines(&f), expected, "{f:#?}");
}

#[test]
fn l2_good_is_clean() {
    let f = lint("l2_good.rs", SERVING);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn l2_markers_work_outside_serving_modules() {
    // Hot kernels are checked wherever the marker appears (dsh-core's
    // distance kernels are not serving-path files).
    let f = lint("l2_bad.rs", "crates/dsh-core/src/points.rs");
    assert!(f.iter().all(|x| x.lint == "L2"), "{f:#?}");
    assert_eq!(f.len(), 9, "{f:#?}");
}

#[test]
fn l3_bad_flags_publication_violations() {
    let f = lint("l3_bad.rs", SHARD);
    // forget_to_publish (15), early return (21), compact under guard (31)
    // — plus the same file is a serving module, which is fine: no panic
    // shapes in it.
    let l3: Vec<(&str, u32)> = ids_and_lines(&f)
        .into_iter()
        .filter(|(id, _)| *id == "L3")
        .collect();
    assert_eq!(l3, vec![("L3", 15), ("L3", 21), ("L3", 31)], "{f:#?}");
    assert_eq!(f.len(), l3.len(), "only L3 findings expected: {f:#?}");
}

#[test]
fn l3_good_is_clean() {
    let f = lint("l3_good.rs", SHARD);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn l3_is_scoped_to_the_shard_file() {
    // The same violations in a non-publication file are not L3 findings.
    let f = lint("l3_bad.rs", "crates/dsh-euclidean/src/lib.rs");
    assert!(f.iter().all(|x| x.lint != "L3"), "{f:#?}");
}

#[test]
fn l4_bad_flags_missing_forbid_bare_unsafe_and_nonkernel_unsafe() {
    let f = lint("l4_bad.rs", PLAIN_ROOT);
    // Missing forbid (line 1), unsafe without SAFETY (line 6), and — in a
    // crate with no `[kernel]` modules — L5 unsafe outside a kernel
    // module on the same line.
    assert_eq!(
        ids_and_lines(&f),
        vec![("L4", 1), ("L4", 6), ("L5", 6)],
        "{f:#?}"
    );
}

#[test]
fn l4_bad_is_flagged_in_the_kernel_crate_root_too() {
    // The kernel crate's root wants `deny(unsafe_code)`; a bare root is
    // still missing it, and lib.rs itself is not the registered kernel
    // module, so the unsafe block keeps both the L4 and L5 findings.
    let f = lint("l4_bad.rs", KERNEL_ROOT);
    assert_eq!(
        ids_and_lines(&f),
        vec![("L4", 1), ("L4", 6), ("L5", 6)],
        "{f:#?}"
    );
    assert!(f[0].message.contains("deny"), "{f:#?}");
}

#[test]
fn l4_good_is_clean_under_kernel_config() {
    // The fixture declares `#![deny(unsafe_code)]` and a SAFETY-annotated
    // unsafe block — legal exactly when the file is a configured kernel
    // module (L5 waived, L4 root attribute relaxed to `deny`).
    let cfg = Config::from_toml(&format!("[kernel]\nmodules = [\"{KERNEL_ROOT}\"]"))
        .expect("kernel config parses");
    let f = check_file_source(KERNEL_ROOT, &fixture("l4_good.rs"), &cfg);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn l4_good_violates_the_default_nonkernel_regime() {
    // The same file in a crate with no kernel modules is doubly wrong:
    // the root wants `forbid` (not `deny`), and the unsafe block sits
    // outside any kernel module.
    let f = lint("l4_good.rs", PLAIN_ROOT);
    let ids: Vec<&str> = f.iter().map(|x| x.lint).collect();
    assert_eq!(ids, vec!["L4", "L5"], "{f:#?}");
}

#[test]
fn l4_good_satisfies_the_kernel_crate_root_but_not_l5() {
    // In the kernel crate's root the `deny` attribute is exactly right,
    // but lib.rs itself is still not the registered kernel module — the
    // unsafe block must live in `kernels/x86.rs`, so only L5 fires.
    let f = lint("l4_good.rs", KERNEL_ROOT);
    let ids: Vec<&str> = f.iter().map(|x| x.lint).collect();
    assert_eq!(ids, vec!["L5"], "{f:#?}");
}

#[test]
fn tricky_tokens_produce_no_findings() {
    let f = lint("tricky_tokens.rs", SERVING);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn findings_render_machine_readable_lines() {
    let f = lint("l1_bad.rs", SERVING);
    let first = f.first().expect("l1_bad has findings").to_string();
    assert!(
        first.starts_with("crates/dsh-index/src/table.rs:7: L1 "),
        "{first}"
    );
}

// -- interprocedural mini-workspace fixtures ------------------------------

#[test]
fn ws_panic_reach_reports_the_cross_crate_chain() {
    let r = lint_ws("ws_panic_reach");
    assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.lint, "L1");
    assert_eq!(f.file, "crates/back/src/back.rs", "{f:#?}");
    assert_eq!(
        f.chain,
        vec!["front.rs:query", "back.rs:decode", "back.rs:inner"],
        "{f:#?}"
    );
    assert!(f.message.contains("front.rs:query"), "{f:#?}");
}

#[test]
fn ws_transitive_alloc_flags_two_hops_below_the_marker() {
    let r = lint_ws("ws_transitive_alloc");
    assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.lint, "L2");
    assert_eq!(
        f.chain,
        vec!["kern.rs:kernel", "kern.rs:mid", "kern.rs:leaf"],
        "{f:#?}"
    );
}

#[test]
fn ws_recursion_terminates_and_chains_through_the_cycle() {
    let r = lint_ws("ws_recursion");
    assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.lint, "L1");
    assert_eq!(f.chain.first().map(String::as_str), Some("cy.rs:serve"));
    assert_eq!(f.chain.last().map(String::as_str), Some("cy.rs:boom"));
    // The chain is an acyclic path, not an unrolled cycle.
    let mut sorted = f.chain.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), f.chain.len(), "chain repeats a node: {f:#?}");
}

#[test]
fn ws_trait_fallback_fans_out_to_the_panicking_impl() {
    let r = lint_ws("ws_trait_fallback");
    assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.lint, "L1");
    assert_eq!(f.chain.first().map(String::as_str), Some("m.rs:serve"));
    assert_eq!(f.chain.last().map(String::as_str), Some("m.rs:eval"));
}

#[test]
fn ws_kernel_escape_flags_unsafe_outside_the_registered_module() {
    // Both files carry SAFETY-annotated unsafe blocks; only the one in
    // the file missing from `[kernel] modules` is an L5 finding.
    let r = lint_ws("ws_kernel_escape");
    assert_eq!(r.findings.len(), 1, "{:#?}", r.findings);
    let f = &r.findings[0];
    assert_eq!(f.lint, "L5", "{f:#?}");
    assert_eq!(f.file, "crates/simd/src/escape.rs", "{f:#?}");
}

#[test]
fn ws_shadowed_method_does_not_pull_in_the_free_fn() {
    let r = lint_ws("ws_shadowed");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}
