//! Meta-test: the workspace itself must be lint-clean. This is the same
//! check CI runs via `cargo run -p dsh-lint -- check`, kept as a test so
//! plain `cargo test` catches a regression (a stray unwrap reachable from
//! the serving path, a lost forbid attribute) without the extra CI job.

use std::path::Path;

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_findings() {
    let root = repo_root();
    let cfg = dsh_lint::load_config(&root).expect("dsh-lint.toml must load");
    let report = dsh_lint::check_workspace(&root, &cfg).expect("walking the workspace");
    assert!(
        report.findings.is_empty(),
        "workspace is not lint-clean:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_call_graph_is_nontrivial() {
    // The interprocedural layer must actually see the workspace: if the
    // resolver regressed to finding no functions or no edges, every
    // reachability lint would pass vacuously. Pin a coarse lower bound.
    let root = repo_root();
    let cfg = dsh_lint::load_config(&root).expect("dsh-lint.toml must load");
    let report = dsh_lint::check_workspace(&root, &cfg).expect("walking the workspace");
    assert!(
        report.stats.functions > 300,
        "suspiciously few functions: {}",
        report.stats.functions
    );
    assert!(
        report.stats.edges > 1000,
        "suspiciously few call edges: {}",
        report.stats.edges
    );
}

#[test]
fn configured_modules_exist_where_the_config_points() {
    // Guard against silent rot: if a serving-path module is renamed, the
    // lint would silently stop covering it. `load_config` fails loudly on
    // any configured path that no longer exists — so loading the real
    // config IS the rename guard; also pin the publication spec presence.
    let root = repo_root();
    let cfg = dsh_lint::load_config(&root)
        .expect("dsh-lint.toml names a module that no longer exists; update dsh-lint.toml");
    assert!(
        !cfg.serving_roots.is_empty(),
        "repo config must declare serving roots"
    );
    let spec = cfg.publication.expect("repo config configures L3");
    assert!(root.join(&spec.file_suffix).is_file());
}
