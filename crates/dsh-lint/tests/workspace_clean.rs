//! Meta-test: the workspace itself must be lint-clean. This is the same
//! check CI runs via `cargo run -p dsh-lint -- check`, kept as a test so
//! plain `cargo test` catches a regression (a stray unwrap on the serving
//! path, a lost forbid attribute) without the extra CI job.

use std::path::Path;

#[test]
fn workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = dsh_lint::Config::repo_default();
    let findings = dsh_lint::check_workspace(&root, &cfg).expect("walking the workspace");
    assert!(
        findings.is_empty(),
        "workspace is not lint-clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn serving_modules_exist_where_the_config_points() {
    // Guard against silent rot: if a serving-path module is renamed, the
    // lint would silently stop covering it. Fail loudly instead.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = dsh_lint::Config::repo_default();
    for suffix in &cfg.serving_suffixes {
        assert!(
            root.join(suffix).is_file(),
            "serving-path module {suffix} no longer exists; update Config::repo_default"
        );
    }
    let spec = cfg.publication.expect("repo default configures L3");
    assert!(root.join(&spec.file_suffix).is_file());
}
