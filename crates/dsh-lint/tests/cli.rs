//! End-to-end exit-code contract of the `dsh-lint` binary — the thing CI
//! actually gates on: 0 = clean, 1 = findings (one `file:line: LINT
//! message` per stdout line), 2 = usage/config error. The fixture tests
//! pin each lint's behaviour at the library level; this pins the CLI
//! wrapper, the output formats, and the wall-clock budget on the real
//! workspace.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::Instant;

/// A throwaway workspace root under the target temp dir, deleted on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str, lib_rs: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dsh-lint-cli-{}-{tag}", std::process::id()));
        let src = dir.join("src");
        fs::create_dir_all(&src).expect("creating temp workspace");
        fs::write(src.join("lib.rs"), lib_rs).expect("writing temp lib.rs");
        TempRoot(dir)
    }

    fn with_config(tag: &str, lib_rs: &str, toml: &str) -> Self {
        let root = Self::new(tag, lib_rs);
        fs::write(root.0.join("dsh-lint.toml"), toml).expect("writing temp dsh-lint.toml");
        root
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsh-lint"))
        .args(args)
        .output()
        .expect("running dsh-lint binary")
}

#[test]
fn clean_workspace_exits_zero_with_stats() {
    let root = TempRoot::new(
        "clean",
        "#![forbid(unsafe_code)]\n\npub fn id(x: u64) -> u64 {\n    x\n}\n",
    );
    let out = run(&["check", "--root", root.0.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("dsh-lint: clean\n"),
        "stdout: {stdout:?}"
    );
    assert!(
        stdout.contains("0 finding(s) · 1 files · 1 functions · 0 call edges"),
        "stdout: {stdout:?}"
    );
}

#[test]
fn violating_workspace_exits_one_with_machine_readable_line() {
    // Crate root missing `#![forbid(unsafe_code)]` — an L4 finding.
    let root = TempRoot::new("bad", "pub fn id(x: u64) -> u64 {\n    x\n}\n");
    let out = run(&["check", "--root", root.0.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("src/lib.rs:1: L4 crate root is missing"),
        "stdout: {stdout:?}"
    );
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[] as &[&str],
        &["frobnicate"],
        &["check", "--root"],
        &["check", "--frobnicate"],
        &["check", "--format", "yaml"],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}

#[test]
fn config_naming_a_ghost_module_exits_two_loudly() {
    // A dsh-lint.toml pointing at a module that does not exist must fail
    // the run (exit 2, message on stderr naming the ghost) — silently
    // linting nothing would let a rename evaporate coverage.
    let root = TempRoot::with_config(
        "ghost",
        "#![forbid(unsafe_code)]\npub fn id(x: u64) -> u64 {\n    x\n}\n",
        "[serving]\nroots = [\"src/ghost.rs\"]\n",
    );
    let out = run(&["check", "--root", root.0.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "stdout: {:?}", out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("src/ghost.rs"), "stderr: {stderr:?}");
}

#[test]
fn malformed_config_exits_two() {
    let root = TempRoot::with_config(
        "badtoml",
        "#![forbid(unsafe_code)]\n",
        "[serving]\nrutes = [\"src/lib.rs\"]\n",
    );
    let out = run(&["check", "--root", root.0.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rutes"), "stderr: {stderr:?}");
}

#[test]
fn json_format_emits_stable_ids_and_chains() {
    // A panic reachable from a serving entry point: the JSON must carry a
    // stable finding id and the call chain.
    let root = TempRoot::with_config(
        "json",
        "#![forbid(unsafe_code)]\n\
         pub fn serve(x: Option<u64>) -> u64 {\n    helper(x)\n}\n\
         fn helper(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n",
        "[serving]\nroots = [\"src/lib.rs\"]\n",
    );
    let args = [
        "check",
        "--root",
        root.0.to_str().unwrap(),
        "--format",
        "json",
    ];
    let out = run(&args);
    assert_eq!(out.status.code(), Some(1), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "stdout: {stdout:?}");
    assert!(stdout.contains("\"id\":\"L1-"), "stdout: {stdout:?}");
    assert!(
        stdout.contains("\"chain\":[\"lib.rs:serve\",\"lib.rs:helper\"]"),
        "stdout: {stdout:?}"
    );
    assert!(stdout.contains("\"stats\":{"), "stdout: {stdout:?}");

    // Stable means stable: a second run produces the identical id.
    let again = run(&args);
    let id = |s: &str| {
        let at = s.find("\"id\":\"").expect("id field") + 6;
        s[at..].split('"').next().unwrap().to_string()
    };
    assert_eq!(id(&stdout), id(&String::from_utf8_lossy(&again.stdout)));
}

#[test]
fn github_format_emits_error_annotations() {
    let root = TempRoot::new("gh", "pub fn id(x: u64) -> u64 {\n    x\n}\n");
    let out = run(&[
        "check",
        "--root",
        root.0.to_str().unwrap(),
        "--format",
        "github",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=src/lib.rs,line=1,title=L4-"),
        "stdout: {stdout:?}"
    );
    assert!(stdout.contains("call edges"), "stdout: {stdout:?}");
}

#[test]
fn real_workspace_is_clean_and_fast() {
    // The acceptance budget: a full whole-workspace interprocedural check
    // must finish well under 5 seconds (it runs on every CI push and as a
    // pre-commit habit). The binary is built by the test harness, so this
    // measures the check itself, not compilation.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let started = Instant::now();
    let out = run(&["check", "--root", root.to_str().unwrap()]);
    let elapsed = started.elapsed();
    assert_eq!(
        out.status.code(),
        Some(0),
        "real workspace has findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "whole-workspace check took {elapsed:?}, budget is 5 s"
    );
}
