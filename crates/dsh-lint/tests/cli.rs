//! End-to-end exit-code contract of the `dsh-lint` binary — the thing CI
//! actually gates on: 0 = clean, 1 = findings (one `file:line: LINT
//! message` per stdout line), 2 = usage error. The fixture tests pin each
//! lint's behaviour at the library level; this pins the CLI wrapper.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

/// A throwaway workspace root under the target temp dir, deleted on drop.
struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str, lib_rs: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dsh-lint-cli-{}-{tag}", std::process::id()));
        let src = dir.join("src");
        fs::create_dir_all(&src).expect("creating temp workspace");
        fs::write(src.join("lib.rs"), lib_rs).expect("writing temp lib.rs");
        TempRoot(dir)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsh-lint"))
        .args(args)
        .output()
        .expect("running dsh-lint binary")
}

#[test]
fn clean_workspace_exits_zero() {
    let root = TempRoot::new(
        "clean",
        "#![forbid(unsafe_code)]\n\npub fn id(x: u64) -> u64 {\n    x\n}\n",
    );
    let out = run(&["check", "--root", root.0.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    assert_eq!(String::from_utf8_lossy(&out.stdout), "dsh-lint: clean\n");
}

#[test]
fn violating_workspace_exits_one_with_machine_readable_line() {
    // Crate root missing `#![forbid(unsafe_code)]` — an L4 finding.
    let root = TempRoot::new("bad", "pub fn id(x: u64) -> u64 {\n    x\n}\n");
    let out = run(&["check", "--root", root.0.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("src/lib.rs:1: L4 crate root is missing"),
        "stdout: {stdout:?}"
    );
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &[] as &[&str],
        &["frobnicate"],
        &["check", "--root"],
        &["check", "--frobnicate"],
    ] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}
