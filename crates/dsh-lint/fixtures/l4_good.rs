// L4 fixture, kernel-module regime: this file is listed under
// `[kernel] modules`, so the crate root may relax `forbid(unsafe_code)`
// to `deny(unsafe_code)`, and `unsafe` tokens are permitted as long as
// each carries a SAFETY comment. Expected findings (kernel config): none.
#![deny(unsafe_code)]

pub fn peek(v: &[u8]) -> u8 {
    // SAFETY: v is non-empty by the caller's contract; as_ptr of a live
    // slice is valid to read for len bytes.
    let first = unsafe { *v.as_ptr() };
    let _decoy = "the word unsafe in a string is data";
    first
}
