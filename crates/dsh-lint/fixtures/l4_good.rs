// L4 fixture: forbid attribute present, and the only `unsafe` token is
// covered by a SAFETY comment. Expected findings: none.
#![forbid(unsafe_code)]

pub fn peek(v: &[u8]) -> u8 {
    // SAFETY: v is non-empty by the caller's contract; as_ptr of a live
    // slice is valid to read for len bytes.
    let first = unsafe { *v.as_ptr() };
    let _decoy = "the word unsafe in a string is data";
    first
}
