// Lexer stress fixture on a serving path: every banned name appears only
// inside strings, raw strings, comments, byte strings, or as a raw
// identifier — plus lifetimes, char literals with braces, nested block
// comments, `>>` generic closes, and labeled-loop lifetimes. Expected
// findings: none.
pub fn tricky<'a>(input: &'a str) -> &'a str {
    let _s = "x.unwrap() and panic!(\"quoted\")";
    let _r = r#"y.expect("fenced") inside r#..# with a " inside"#;
    let _rr = r##"nested "#..."# fence with .collect() text"##;
    let _b = b"bytes with unwrap() text";
    let _c = '{'; // a brace char must not unbalance scopes
    let _c2 = '}';
    let _esc = '\u{1F600}';
    /* block comment with panic!() and /* a nested comment: todo!() */ still closed */
    // commented-out code: input.to_string().unwrap();
    fn r#unwrap(x: &str) -> &str {
        // A raw identifier named unwrap is not the method.
        x
    }
    r#unwrap(input)
}

/// Double and triple `>` generic closes must lex as single `>` tokens —
/// a lexer that emits a shift token here would desync the type parser.
pub fn nested_generics(rows: &[&[u64]], z: Option<Option<Option<u64>>>) -> usize {
    let depth: usize = match z {
        Some(Some(Some(_))) => 3,
        Some(Some(None)) => 2,
        Some(None) => 1,
        None => 0,
    };
    let shifted = (rows.len() as u64) >> 1; // a REAL shift right next door
    rows.len() + depth + shifted as usize
}

/// Labeled loops: `'outer:` is a lifetime-looking label, not a char
/// literal and not a generic bound; `break 'outer value` must not
/// confuse statement-boundary detection.
pub fn labeled_loops(limit: usize) -> usize {
    let mut count = 0;
    'outer: loop {
        'inner: for i in 0..limit {
            if i == 3 {
                continue 'inner;
            }
            if count >= limit {
                break 'outer;
            }
            count += 1;
        }
        if limit == 0 {
            break 'outer;
        }
    }
    count
}
