// Lexer stress fixture on a serving path: every banned name appears only
// inside strings, raw strings, comments, byte strings, or as a raw
// identifier — plus lifetimes, char literals with braces, and nested
// block comments. Expected findings: none.
pub fn tricky<'a>(input: &'a str) -> &'a str {
    let _s = "x.unwrap() and panic!(\"quoted\")";
    let _r = r#"y.expect("fenced") inside r#..# with a " inside"#;
    let _rr = r##"nested "#..."# fence with .collect() text"##;
    let _b = b"bytes with unwrap() text";
    let _c = '{'; // a brace char must not unbalance scopes
    let _c2 = '}';
    let _esc = '\u{1F600}';
    /* block comment with panic!() and /* a nested comment: todo!() */ still closed */
    // commented-out code: input.to_string().unwrap();
    fn r#unwrap(x: &str) -> &str {
        // A raw identifier named unwrap is not the method.
        x
    }
    r#unwrap(input)
}
