//! Hot kernel whose allocation hides two calls down: `kernel` is marked
//! hot, calls `mid`, which calls `leaf`, which allocates. The L2' finding
//! must land on the `to_vec` line with chain kernel → mid → leaf.

// lint: hot
pub fn kernel(xs: &[f64]) -> f64 {
    mid(xs)
}

fn mid(xs: &[f64]) -> f64 {
    leaf(xs)
}

fn leaf(xs: &[f64]) -> f64 {
    let v = xs.to_vec();
    v[0]
}
