//! Trait-object dispatch: `serve` calls through `&dyn Measure`. The
//! resolver cannot know which impl runs, so it must conservatively edge
//! to BOTH impls — and flag the `expect` inside `Risky::eval`.

pub trait Measure {
    fn eval(&self, x: u64) -> u64;
}

pub struct Safe;

impl Measure for Safe {
    fn eval(&self, x: u64) -> u64 {
        x
    }
}

pub struct Risky;

impl Measure for Risky {
    fn eval(&self, x: u64) -> u64 {
        x.checked_mul(2).expect("overflow")
    }
}

pub fn serve(m: &dyn Measure, x: u64) -> u64 {
    m.eval(x)
}
