// L3 fixture: publication-discipline violations on a ShardedIndex-shaped
// type. Expected findings: `forget_to_publish` never reaches publish
// (line 15), early `return` in a publishing method (line 21), and a
// let-bound publication-cell guard live across a compact call (line 31).
pub struct ShardedIndex {
    published: u64,
    state: u64,
}

impl ShardedIndex {
    fn publish(&mut self, next: u64) {
        self.state = next;
    }

    pub fn forget_to_publish(&mut self, next: u64) {
        self.state = next;
    }

    pub fn bail_early(&mut self, next: u64) -> bool {
        if next == 0 {
            return false;
        }
        self.publish(next);
        true
    }

    fn compact(&mut self) {}

    pub fn guard_across_compact(&mut self) {
        let guard = self.published.read();
        self.compact();
        drop(guard);
        self.publish(1);
    }
}
