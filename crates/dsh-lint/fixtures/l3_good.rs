// L3 fixture: the publication protocol done right — direct publishes,
// transitive publishes through a same-type method, `&self` accessors and
// private helpers exempt, a statement-scoped temporary guard, and an
// annotated read-only method. Expected findings: none.
pub struct ShardedIndex {
    published: u64,
    state: u64,
}

impl ShardedIndex {
    fn publish(&mut self, next: u64) {
        // A temporary guard dies at the end of this statement, before any
        // clone/compact could run.
        self.published.write().store(next);
        self.state = next;
    }

    pub fn insert(&mut self, next: u64) {
        self.publish(next);
    }

    pub fn seal(&mut self) {
        self.seal_with_threads(4);
    }

    pub fn seal_with_threads(&mut self, _threads: usize) {
        self.publish(self.state + 1);
    }

    // lint: allow(publish) — read-only maintenance: rebuilds caches, state unchanged
    pub fn warm_caches(&mut self) {
        self.state = self.state;
    }

    pub fn len(&self) -> u64 {
        // &self methods are not write methods; no publish required.
        self.state
    }

    fn compact(&mut self) {
        // Private helpers may skip publishing; their public callers publish.
        self.state += 1;
    }

    pub fn compact_and_publish(&mut self) {
        self.compact();
        self.publish(self.state);
    }
}
