//! Mutual recursion on the way to a panic: serve → even ⇄ odd → boom.
//! The analysis must terminate on the cycle and the finding's chain must
//! still be an acyclic path from the root to the panic.

pub fn serve(n: u64) -> u64 {
    even(n)
}

fn even(n: u64) -> u64 {
    if n == 0 { 0 } else { odd(n - 1) }
}

fn odd(n: u64) -> u64 {
    if n == 1 { boom() } else { even(n - 1) }
}

fn boom() -> u64 {
    panic!("odd path bottomed out")
}
