// L1 fixture: the same shapes made acceptable — annotated contract
// panics, debug_assert, infallible patterns, and panic-looking tokens
// hidden in strings, comments, and test code. Expected findings: none.
pub struct Q;
impl Q {
    pub fn probe(&self, v: Option<u32>) -> u32 {
        // lint: allow(panic) — contract: caller must pass Some, checked upstream
        let a = v.unwrap();
        let b = v.unwrap_or(0); // infallible: not an unwrap() call
        debug_assert!(a >= b, "debug-only invariant is fine");
        // The banned names inside a string literal are data, not calls:
        let _msg = "never call .unwrap() or panic!() here";
        let _raw = r#"an .expect("x") inside a raw string"#;
        // and commented-out code is not code: x.unwrap(); panic!("no");
        a + b
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        v.expect("tests are exempt");
    }
}
