//! Back-end crate: `decode` is benign, but its private helper unwraps.
//! The L1' finding must land HERE (on the unwrap line) and carry the
//! full cross-crate chain front.rs:query → back.rs:decode → back.rs:inner.

pub fn decode(x: Option<u64>) -> u64 {
    inner(x)
}

fn inner(x: Option<u64>) -> u64 {
    x.unwrap()
}
