//! Serving front-end: `query` is a public entry point (this file is a
//! configured serving root). It panics nowhere itself — the violation
//! lives two calls away in the `back` crate.

pub fn query(x: Option<u64>) -> u64 {
    decode(x)
}
