//! Name shadowing: `Table::get` (clean) vs the free function `get`
//! (panics, but unreachable). `serve` calls `t.get(i)` on a `&Table`
//! receiver — the resolver must pick the method, and the workspace must
//! lint clean.

pub struct Table {
    n: usize,
}

impl Table {
    pub fn get(&self, i: usize) -> usize {
        i.min(self.n)
    }
}

fn get(i: usize) -> usize {
    panic!("free get({i}) must never be on the serving path")
}

pub fn serve(t: &Table, i: usize) -> usize {
    t.get(i)
}
