// L4 fixture: a crate root missing `#![forbid(unsafe_code)]` with a bare
// `unsafe` block. Expected findings: missing forbid attribute (line 1),
// unannotated unsafe (line 6).
pub fn peek(v: &[u8]) -> u8 {
    // An unsafe block with no SAFETY comment anywhere near it.
    let first = unsafe { *v.as_ptr() };
    first
}
