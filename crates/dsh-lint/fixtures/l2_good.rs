// L2 fixture: a hot kernel that only reuses caller-provided buffers,
// plus allocation-looking tokens that must not trip the lint (path-form
// Arc::clone, strings, allocation in a non-hot neighbor, an annotated
// one-time allocation). Expected findings: none.
use std::sync::Arc;

// lint: hot
pub fn kernel(ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    out.clear(); // clearing and pushing into the caller's buffer is fine
    for &i in ids {
        out.push(q[i % q.len()]);
    }
    let _msg = "calling .collect() or vec![] in a string is data";
    // commented-out code is not code: let v = q.to_vec();
}

// lint: hot
pub fn shares(handle: &Arc<Vec<f64>>) -> Arc<Vec<f64>> {
    // Path-form Arc::clone is a refcount bump, not an allocation.
    let shared = Arc::clone(handle);
    // lint: allow(alloc) — one-time growth amortized across the batch
    let grown = handle.to_vec();
    drop(grown);
    shared
}

pub fn cold_neighbor(a: &[f64]) -> Vec<f64> {
    // Not marked hot: allocate freely.
    a.to_vec()
}
