//! Registered kernel module: unsafe here is legal (L5 waived) as long
//! as every block carries a `// SAFETY:` comment (L4).

/// Reads the first lane of a four-lane row.
pub fn first_lane(row: &[f64; 4]) -> f64 {
    // SAFETY: the pointer comes from a live `&[f64; 4]`, so reading
    // element 0 is in bounds for the reference's lifetime.
    unsafe { *row.as_ptr() }
}
