//! NOT a registered kernel module: the unsafe block below is perfectly
//! annotated, yet it must still be flagged by L5 — unsafe is confined
//! to the modules named in `[kernel] modules`.

/// Same shape as the kernel module's accessor, wrong file.
pub fn sneaky_first(row: &[f64; 4]) -> f64 {
    // SAFETY: in-bounds read of a live reference (satisfies L4 only).
    unsafe { *row.as_ptr() }
}
