// L2 fixture: allocation-shaped calls inside a `// lint: hot` kernel.
// Expected findings: one per line 7-14 (Vec::new, vec!, .to_vec,
// .collect, .clone, format!, Box::new, String::from), plus a dangling
// marker on line 18.
// lint: hot
pub fn kernel(a: &[f64]) -> f64 {
    let mut buf: Vec<f64> = Vec::new();
    let lit = vec![0.0f64; 4];
    let copy = a.to_vec();
    let doubled: Vec<f64> = a.iter().map(|x| x * 2.0).collect();
    let again = copy.clone();
    let label = format!("{}", a.len());
    let boxed = Box::new(a.len());
    let owned = String::from(label.as_str());
    buf.extend(lit);
    doubled.len() as f64 + again.len() as f64 + *boxed as f64 + owned.len() as f64
}
// lint: hot
