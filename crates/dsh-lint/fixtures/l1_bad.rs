// L1 fixture: panic-shaped calls on the serving path, no annotations.
// Expected findings: unwrap (line 7), expect (line 8), panic (line 10),
// todo (line 12), assert (line 14).
pub struct Q;
impl Q {
    pub fn probe(&self, v: Option<u32>) -> u32 {
        let a = v.unwrap();
        let b = v.expect("present");
        if a > b {
            panic!("impossible");
        } else if a == b {
            todo!()
        }
        assert!(a < b);
        a
    }
}
