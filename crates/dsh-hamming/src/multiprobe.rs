//! Multiprobe bit-sampling: the §6.3 "list-of-points" step-function CPF.
//!
//! §6.3 observes that any linear-space list-of-points structure (each
//! point stored in exactly **one** bucket; a query probes `L` buckets)
//! induces a DSH family: `h(x)` = the storage bucket, `g(y)` = one of the
//! `L` probe buckets chosen uniformly. If the structure finds `r`-near
//! neighbors with constant probability, the induced CPF is `Theta(1/L)`
//! flat over `[0, r]` — optimal output sensitivity for range reporting.
//!
//! The concrete instantiation here is multiprobe bit-sampling: `h(x)` is a
//! `k`-bit sampled signature; the probe sequence of `g` enumerates all
//! signatures within Hamming weight `w` of `g`'s own signature. With all
//! `L = sum_{i<=w} C(k, i)` probes included, the CPF in relative distance
//! `t` is the binomial CDF scaled by `1/L`:
//!
//! ```text
//! f(t) = (1/L) * sum_{i=0}^{w} C(k, i) t^i (1 - t)^{k-i}
//! ```
//!
//! — flat near `t = 0` (where the CDF is ~1) and collapsing once
//! `t >> w/k`: a step function realized by a *data-independent, linear
//! space* scheme.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::get_bit;
use dsh_math::special::binomial;
use rand::Rng;

/// Multiprobe bit-sampling family with signature width `k` and probe
/// radius `w`.
#[derive(Debug, Clone, Copy)]
pub struct MultiProbeBitSampling {
    d: usize,
    k: usize,
    w: usize,
}

impl MultiProbeBitSampling {
    /// Family over `{0,1}^d`; `k <= 24` signature bits, probe radius
    /// `w <= k`.
    pub fn new(d: usize, k: usize, w: usize) -> Self {
        assert!(d > 0);
        assert!((1..=24).contains(&k), "signature width must be in 1..=24");
        assert!(w <= k, "probe radius cannot exceed the signature width");
        MultiProbeBitSampling { d, k, w }
    }

    /// Number of probe buckets `L = sum_{i<=w} C(k, i)`.
    pub fn probe_count(&self) -> u64 {
        (0..=self.w)
            .map(|i| binomial(self.k as u64, i as u64) as u64)
            .sum()
    }

    /// Signature width.
    pub fn signature_bits(&self) -> usize {
        self.k
    }

    /// Probe radius.
    pub fn probe_radius(&self) -> usize {
        self.w
    }

    /// The flatness ratio `f(0) / f(t)` of the step (both ends of the
    /// Theorem 6.5 overhead factor).
    pub fn flatness(&self, t: f64) -> f64 {
        self.cpf(0.0) / self.cpf(t)
    }
}

/// Unrank the `rank`-th mask among `k`-bit masks ordered by (weight,
/// lexicographic-combination) — the probe sequence.
fn unrank_mask(k: usize, mut rank: u64) -> u64 {
    let mut weight = 0usize;
    loop {
        let count = binomial(k as u64, weight as u64) as u64;
        if rank < count {
            break;
        }
        rank -= count;
        weight += 1;
        assert!(weight <= k, "rank out of range");
    }
    // Unrank the `rank`-th weight-`weight` subset of {0, ..., k-1} in
    // colexicographic order.
    let mut mask = 0u64;
    let mut remaining = weight;
    let mut r = rank;
    let mut pos = k;
    while remaining > 0 {
        pos -= 1;
        let c = binomial(pos as u64, remaining as u64) as u64;
        if r >= c {
            mask |= 1 << pos;
            r -= c;
            remaining -= 1;
        }
    }
    mask
}

impl DshFamily<[u64]> for MultiProbeBitSampling {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[u64]> {
        let coords: Vec<usize> = (0..self.k).map(|_| rng.random_range(0..self.d)).collect();
        let l = self.probe_count();
        let probe_rank = rng.random_range(0..l);
        let probe_mask = unrank_mask(self.k, probe_rank);
        let coords2 = coords.clone();
        let signature = move |x: &[u64], coords: &[usize]| -> u64 {
            coords
                .iter()
                .enumerate()
                .fold(0u64, |acc, (j, &c)| acc | ((get_bit(x, c) as u64) << j))
        };
        let sig1 = signature;
        HasherPair::from_fns(
            move |x: &[u64]| sig1(x, &coords),
            move |y: &[u64]| signature(y, &coords2) ^ probe_mask,
        )
    }

    fn name(&self) -> String {
        format!(
            "MultiProbeBitSampling(k={}, w={}, L={})",
            self.k,
            self.w,
            self.probe_count()
        )
    }
}

impl AnalyticCpf for MultiProbeBitSampling {
    /// `arg` is the relative Hamming distance `t in [0, 1]`.
    fn cpf(&self, t: f64) -> f64 {
        assert!((0.0..=1.0).contains(&t));
        let l = self.probe_count() as f64;
        let mut sum = 0.0;
        for i in 0..=self.w {
            sum += binomial(self.k as u64, i as u64)
                * t.powi(i as i32)
                * (1.0 - t).powi((self.k - i) as i32);
        }
        sum / l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::BitVector;
    use dsh_math::rng::seeded;

    #[test]
    fn unrank_enumerates_all_masks_once() {
        let k = 5;
        let total: u64 = (0..=k as u64).map(|i| binomial(k as u64, i) as u64).sum();
        assert_eq!(total, 32);
        let mut seen: Vec<u64> = (0..total).map(|r| unrank_mask(k, r)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 32, "every mask exactly once");
        // Weight-ordered: first mask is 0, next k have weight 1.
        assert_eq!(unrank_mask(k, 0), 0);
        for r in 1..=k as u64 {
            assert_eq!(unrank_mask(k, r).count_ones(), 1);
        }
    }

    #[test]
    fn probe_count_formula() {
        let fam = MultiProbeBitSampling::new(64, 10, 2);
        assert_eq!(fam.probe_count(), 1 + 10 + 45);
    }

    #[test]
    fn cpf_matches_monte_carlo() {
        let d = 200;
        let fam = MultiProbeBitSampling::new(d, 8, 2);
        let mut rng = seeded(0x3B1);
        let x = BitVector::random(&mut rng, d);
        for &kdist in &[0usize, 20, 60, 120] {
            let mut y = x.clone();
            for i in 0..kdist {
                y.flip(i);
            }
            let t = kdist as f64 / d as f64;
            let est = CpfEstimator::new(60_000, 0x3B2 + kdist as u64).estimate_pair(&fam, &x, &y);
            assert!(
                est.contains(fam.cpf(t)),
                "t={t}: want {}, got {} [{}, {}]",
                fam.cpf(t),
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn cpf_is_a_step_function() {
        // Flat (ratio < 1.6) over [0, 0.05], sharp decay by t = 0.5.
        let fam = MultiProbeBitSampling::new(256, 16, 4);
        assert!(fam.flatness(0.05) < 1.6, "flatness {}", fam.flatness(0.05));
        assert!(
            fam.cpf(0.05) / fam.cpf(0.5) > 20.0,
            "decay only {}",
            fam.cpf(0.05) / fam.cpf(0.5)
        );
        // f(0) = 1/L exactly (only the zero-mask probe matches).
        assert!((fam.cpf(0.0) - 1.0 / fam.probe_count() as f64).abs() < 1e-15);
    }

    #[test]
    fn wider_probe_radius_flattens_further() {
        let narrow = MultiProbeBitSampling::new(256, 16, 1);
        let wide = MultiProbeBitSampling::new(256, 16, 6);
        assert!(wide.flatness(0.1) < narrow.flatness(0.1));
    }

    #[test]
    fn full_radius_is_always_collide_up_to_scaling() {
        // w = k: CDF = 1 identically, so f(t) = 1/2^k for every t.
        let fam = MultiProbeBitSampling::new(64, 6, 6);
        for &t in &[0.0, 0.3, 0.7, 1.0] {
            assert!((fam.cpf(t) - 1.0 / 64.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "probe radius cannot exceed")]
    fn invalid_radius_rejected() {
        let _ = MultiProbeBitSampling::new(10, 4, 5);
    }
}

// Property-style tests over exhaustive/gridded parameter sweeps. These
// replace `proptest!` blocks: the crate is built offline and proptest is
// not in the dependency set; the parameter spaces below are small enough
// to sweep outright.
#[cfg(test)]
mod proptests {
    use super::*;

    #[test]
    fn unrank_is_injective_and_weight_ordered() {
        for k in 1usize..12 {
            let total: u64 = (0..=k as u64).map(|i| binomial(k as u64, i) as u64).sum();
            let masks: Vec<u64> = (0..total).map(|r| unrank_mask(k, r)).collect();
            // Injective.
            let mut sorted = masks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len() as u64, total, "k={k}");
            // Weight-monotone along the rank order.
            for w in masks.windows(2) {
                assert!(w[0].count_ones() <= w[1].count_ones(), "k={k}");
            }
            // All masks fit in k bits.
            assert!(masks.iter().all(|m| m >> k == 0), "k={k}");
        }
    }

    #[test]
    fn cpf_is_a_probability_and_decreasing_for_small_w() {
        for k in 2usize..16 {
            for i in 0..=100 {
                let t = i as f64 / 100.0;
                let fam = MultiProbeBitSampling::new(64, k, 1);
                let f = fam.cpf(t);
                assert!((0.0..=1.0).contains(&f), "k={k} t={t}: f={f}");
                // Binomial CDF at fixed w decreases in t.
                assert!(fam.cpf(t) <= fam.cpf(t * 0.5) + 1e-12, "k={k} t={t}");
            }
        }
    }
}
