//! Scaled and biased bit-sampling variations (proof of Theorem 5.2).
//!
//! The paper's Appendix C.3 introduces two parameterized families used as
//! per-root building blocks of the polynomial construction:
//!
//! * *bit-sampling with scaling factor `alpha`*: the sampled bit is zeroed
//!   with probability `1 - alpha` on both sides; CPF `1 - alpha t`;
//! * *anti bit-sampling with scaling factor `alpha` and bias `beta`*: with
//!   probability 1/2 a constant scheme colliding with probability `beta`,
//!   otherwise anti bit-sampling with the bit zeroed with probability
//!   `1 - alpha`; CPF `beta/2 + alpha t / 2`.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::get_bit;
use rand::Rng;

/// Bit-sampling with scaling factor `alpha in [0, 1]`; CPF
/// `f(t) = 1 - alpha t` in relative Hamming distance.
#[derive(Debug, Clone, Copy)]
pub struct ScaledBitSampling {
    d: usize,
    alpha: f64,
}

impl ScaledBitSampling {
    /// Family over `{0,1}^d` with scaling factor `alpha`.
    pub fn new(d: usize, alpha: f64) -> Self {
        assert!(d > 0, "dimension must be positive");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        ScaledBitSampling { d, alpha }
    }

    /// The scaling factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl DshFamily<[u64]> for ScaledBitSampling {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[u64]> {
        let keep = rng.random_bool(self.alpha);
        let i = rng.random_range(0..self.d);
        if keep {
            HasherPair::from_fns(
                move |x: &[u64]| get_bit(x, i) as u64,
                move |y: &[u64]| get_bit(y, i) as u64,
            )
        } else {
            // Bit zeroed on both sides: everything collides.
            HasherPair::from_fns(|_x: &[u64]| 0, |_y: &[u64]| 0)
        }
    }

    fn name(&self) -> String {
        format!("ScaledBitSampling(alpha={:.3})", self.alpha)
    }
}

impl AnalyticCpf for ScaledBitSampling {
    /// `arg` is the relative Hamming distance `t in [0, 1]`.
    fn cpf(&self, t: f64) -> f64 {
        assert!((0.0..=1.0).contains(&t));
        1.0 - self.alpha * t
    }
}

/// Anti bit-sampling with scaling factor `alpha in [0, 1]` and bias
/// `beta in [0, 1]`; CPF `f(t) = beta/2 + alpha t / 2`.
#[derive(Debug, Clone, Copy)]
pub struct ScaledBiasedAntiBitSampling {
    d: usize,
    alpha: f64,
    beta: f64,
}

impl ScaledBiasedAntiBitSampling {
    /// Family over `{0,1}^d` with scaling factor `alpha` and bias `beta`.
    pub fn new(d: usize, alpha: f64, beta: f64) -> Self {
        assert!(d > 0, "dimension must be positive");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
        ScaledBiasedAntiBitSampling { d, alpha, beta }
    }

    /// The scaling factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The bias.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl DshFamily<[u64]> for ScaledBiasedAntiBitSampling {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[u64]> {
        if rng.random_bool(0.5) {
            // Constant scheme colliding with probability beta: data point
            // maps to 0; query maps to 0 with probability beta, else 1.
            let collide = rng.random_bool(self.beta);
            HasherPair::from_fns(|_x: &[u64]| 0, move |_y: &[u64]| !collide as u64)
        } else {
            let keep = rng.random_bool(self.alpha);
            let i = rng.random_range(0..self.d);
            if keep {
                HasherPair::from_fns(
                    move |x: &[u64]| get_bit(x, i) as u64,
                    move |y: &[u64]| !get_bit(y, i) as u64,
                )
            } else {
                // Bit zeroed on both sides: h = 0, g = 1 - 0 = 1, never
                // collides.
                HasherPair::from_fns(|_x: &[u64]| 0, |_y: &[u64]| 1)
            }
        }
    }

    fn name(&self) -> String {
        format!(
            "ScaledBiasedAntiBitSampling(alpha={:.3}, beta={:.3})",
            self.alpha, self.beta
        )
    }
}

impl AnalyticCpf for ScaledBiasedAntiBitSampling {
    /// `arg` is the relative Hamming distance `t in [0, 1]`.
    fn cpf(&self, t: f64) -> f64 {
        assert!((0.0..=1.0).contains(&t));
        0.5 * self.beta + 0.5 * self.alpha * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::BitVector;
    use dsh_math::rng::seeded;

    fn points_at_distance(d: usize, k: usize) -> (BitVector, BitVector) {
        let x = BitVector::random(&mut seeded(23), d);
        let mut y = x.clone();
        for i in 0..k {
            y.flip(i);
        }
        (x, y)
    }

    #[test]
    fn scaled_bit_sampling_cpf() {
        let d = 100;
        let fam = ScaledBitSampling::new(d, 0.4);
        for &k in &[0usize, 25, 50, 100] {
            let (x, y) = points_at_distance(d, k);
            let t = k as f64 / d as f64;
            let est = CpfEstimator::new(40_000, 31).estimate_pair(&fam, &x, &y);
            assert!(
                est.contains(fam.cpf(t)),
                "t={t}: {} not in [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn scaled_alpha_zero_always_collides() {
        let d = 32;
        let fam = ScaledBitSampling::new(d, 0.0);
        let (x, y) = points_at_distance(d, 32);
        let mut rng = seeded(1);
        for _ in 0..50 {
            assert!(fam.sample(&mut rng).collides(&x, &y));
        }
    }

    #[test]
    fn scaled_alpha_one_is_plain_bit_sampling() {
        let fam = ScaledBitSampling::new(10, 1.0);
        assert_eq!(fam.cpf(0.3), 0.7);
        assert_eq!(fam.alpha(), 1.0);
    }

    #[test]
    fn scaled_biased_anti_cpf() {
        let d = 100;
        let fam = ScaledBiasedAntiBitSampling::new(d, 0.6, 0.3);
        for &k in &[0usize, 30, 70, 100] {
            let (x, y) = points_at_distance(d, k);
            let t = k as f64 / d as f64;
            let est = CpfEstimator::new(40_000, 37).estimate_pair(&fam, &x, &y);
            assert!(
                est.contains(fam.cpf(t)),
                "t={t}: {} not in [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn scaled_biased_anti_extreme_params() {
        // beta = 1, alpha = 1: CPF (1 + t)/2.
        let fam = ScaledBiasedAntiBitSampling::new(10, 1.0, 1.0);
        assert_eq!(fam.cpf(0.0), 0.5);
        assert_eq!(fam.cpf(1.0), 1.0);
        // beta = 0, alpha = 0: CPF identically 0.
        let z = ScaledBiasedAntiBitSampling::new(10, 0.0, 0.0);
        assert_eq!(z.cpf(0.5), 0.0);
        assert_eq!(z.alpha(), 0.0);
        assert_eq!(z.beta(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn invalid_alpha_rejected() {
        let _ = ScaledBitSampling::new(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0,1]")]
    fn invalid_beta_rejected() {
        let _ = ScaledBiasedAntiBitSampling::new(10, 0.5, -0.1);
    }
}
