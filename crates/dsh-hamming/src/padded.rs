//! The padding reduction from the proof of Theorem 3.8 (§3.1).
//!
//! Given a family `A` over `{0,1}^d`, the proof defines a family over the
//! smaller cube `{0,1}^dhat` by `hhat(x) = h(x ∘ 1)` — append the all-ones
//! vector before hashing. The padded coordinates never differ between two
//! padded points, so absolute Hamming distances are preserved while the
//! *relative* distance is amplified by `d/dhat` — the mechanism that lets
//! the proof tune the correlation `alpha` of random inputs to hit a target
//! distance scale.

use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::BitVector;
use rand::Rng;

/// Family over `{0,1}^dhat` obtained by padding points with ones to
/// dimension `d` and applying an inner family over `{0,1}^d`.
pub struct PaddedFamily<F> {
    inner: F,
    d_inner: usize,
    d_outer: usize,
}

impl<F> PaddedFamily<F> {
    /// Wrap `inner` (a family over `{0,1}^d_inner`), exposing a family
    /// over `{0,1}^d_outer` with `d_outer <= d_inner`.
    pub fn new(inner: F, d_inner: usize, d_outer: usize) -> Self {
        assert!(
            d_outer >= 1 && d_outer <= d_inner,
            "need 1 <= d_outer <= d_inner"
        );
        PaddedFamily {
            inner,
            d_inner,
            d_outer,
        }
    }

    /// The inner (padded-to) dimension.
    pub fn inner_dim(&self) -> usize {
        self.d_inner
    }

    /// The outer (actual point) dimension.
    pub fn outer_dim(&self) -> usize {
        self.d_outer
    }
}

impl<F: DshFamily<[u64]>> DshFamily<[u64]> for PaddedFamily<F> {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[u64]> {
        let pair = self.inner.sample(rng);
        let (h, g) = (pair.data, pair.query);
        let this_h = PadSpec {
            d_inner: self.d_inner,
            d_outer: self.d_outer,
        };
        let this_g = this_h;
        HasherPair::from_fns(
            move |x: &[u64]| h.hash(this_h.pad(x).as_blocks()),
            move |y: &[u64]| g.hash(this_g.pad(y).as_blocks()),
        )
    }

    fn name(&self) -> String {
        format!(
            "Padded[{} -> {}]({})",
            self.d_outer,
            self.d_inner,
            self.inner.name()
        )
    }
}

/// Copyable padding spec so the sampled closures don't borrow `self`.
#[derive(Clone, Copy)]
struct PadSpec {
    d_inner: usize,
    d_outer: usize,
}

impl PadSpec {
    fn pad(&self, x: &[u64]) -> BitVector {
        // Rows carry only their block count, so the exact-bit-length check
        // of the owned-point era degrades to block granularity — recover
        // most of it by also rejecting rows with bits set beyond d_outer
        // (a longer point's payload would otherwise be silently dropped).
        assert_eq!(
            x.len(),
            self.d_outer.div_ceil(64),
            "point dimension mismatch"
        );
        let rem = self.d_outer % 64;
        if rem != 0 {
            assert_eq!(
                x[x.len() - 1] >> rem,
                0,
                "point dimension mismatch: bits set beyond d_outer = {}",
                self.d_outer
            );
        }
        let mut out = BitVector::ones(self.d_inner);
        for i in 0..self.d_outer {
            out.set(i, dsh_core::points::get_bit(x, i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AntiBitSampling, BitSampling};
    use dsh_core::estimate::CpfEstimator;
    use dsh_math::rng::seeded;

    #[test]
    fn padding_preserves_absolute_distance_scaling() {
        // Bit-sampling over d = 400 applied to padded d_outer = 100
        // points: CPF = 1 - (absolute distance)/400 = 1 - t_outer/4.
        let d_inner = 400;
        let d_outer = 100;
        let fam = PaddedFamily::new(BitSampling::new(d_inner), d_inner, d_outer);
        let mut rng = seeded(0xAD5E);
        let x = BitVector::random(&mut rng, d_outer);
        let mut y = x.clone();
        for i in 0..60 {
            y.flip(i);
        }
        // absolute distance 60 over inner 400: CPF 1 - 60/400 = 0.85.
        let est = CpfEstimator::new(50_000, 1).estimate_pair(&fam, &x, &y);
        assert!(est.contains(0.85), "got {}", est.estimate);
    }

    #[test]
    fn padded_anti_family_scales_increasing_cpf() {
        let d_inner = 200;
        let d_outer = 50;
        let fam = PaddedFamily::new(AntiBitSampling::new(d_inner), d_inner, d_outer);
        let mut rng = seeded(7);
        let x = BitVector::random(&mut rng, d_outer);
        let y = x.complement(); // absolute distance 50 -> CPF 50/200 = 0.25
        let est = CpfEstimator::new(50_000, 2).estimate_pair(&fam, &x, &y);
        assert!(est.contains(0.25), "got {}", est.estimate);
    }

    #[test]
    fn identity_padding_is_transparent() {
        let d = 64;
        let fam = PaddedFamily::new(BitSampling::new(d), d, d);
        let mut rng = seeded(9);
        let x = BitVector::random(&mut rng, d);
        let pair = fam.sample(&mut rng);
        assert!(pair.collides(&x, &x));
        assert_eq!(fam.inner_dim(), d);
        assert_eq!(fam.outer_dim(), d);
    }

    #[test]
    #[should_panic(expected = "point dimension mismatch")]
    fn wrong_dimension_points_rejected() {
        let fam = PaddedFamily::new(BitSampling::new(100), 100, 50);
        let mut rng = seeded(11);
        let pair = fam.sample(&mut rng);
        let wrong = BitVector::zeros(100);
        let _ = pair.data.hash(wrong.as_blocks());
    }
}
