//! Polynomial CPFs in Hamming space — Theorem 5.2.
//!
//! Given a polynomial `P` with no roots whose real part lies in `(0, 1)`,
//! the paper constructs a DSH family with CPF `P(t) / Delta`, where `t` is
//! the relative Hamming distance and the scaling factor
//! `Delta = |a_k| 2^psi prod_{|z| > 1} |z|` depends only on the roots
//! (`psi` = number of roots with non-positive... strictly negative real
//! part; purely imaginary roots are handled by the same "middle" case and
//! counted with it).
//!
//! The construction factorizes `P(t) = a_k prod_z (t - z)` (we find the
//! roots with the Aberth–Ehrlich iteration from `dsh-math`) and realizes
//! one sub-family per real root / conjugate pair, following the case
//! analysis of Appendix C.3:
//!
//! | root(s)                         | factor rewritten as           | sub-family |
//! |---------------------------------|-------------------------------|------------|
//! | `z = 0` (multiplicity `l`)      | `t^l`                         | `l` anti bit-samplings |
//! | real `z < 0`                    | `2 max(1,|z|) * (|z| + t)/(2 max(1,|z|))` | scaled+biased anti bit-sampling |
//! | real `z >= 1`                   | `z * (1 - t/z)`               | scaled bit-sampling |
//! | pair, `Re z < -1`               | `4|z|^2 * S4(t)`              | mixture: const-1/4 + squared anti |
//! | pair, `Re z >= 1`               | `|z|^2 * S5(t)`               | mixture: const-1 + squared scaled bit-sampling |
//! | pair, `-1 <= Re z <= 0`         | `4 max(1,|z|^2) * S6/S7(t)`   | monomial mixture |
//!
//! Every sub-family CPF is a polynomial with nonnegative coefficients
//! summing to at most 1, so it is realizable by Lemma 1.4(b) as a mixture
//! of powers of anti bit-sampling (CPF `t^i`) with `Always`/`Never`
//! padding; concatenating the sub-families multiplies the CPFs
//! (Lemma 1.4(a)), producing exactly `P(t) / Delta`.

use dsh_core::combinators::{scaled, AlwaysCollide, Concat, Mixture, NeverCollide, Power};
use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{BoxedDshFamily, DshFamily, HasherPair};
use dsh_math::roots::{find_roots, group_roots};
use dsh_math::{Complex, Polynomial};
use rand::Rng;

use crate::bit_sampling::AntiBitSampling;
use crate::scaled::{ScaledBiasedAntiBitSampling, ScaledBitSampling};

/// Why a polynomial cannot be turned into a Hamming DSH family.
#[derive(Debug, Clone, PartialEq)]
pub enum PolyDshError {
    /// The zero polynomial or a constant polynomial has no usable roots.
    DegenerateDegree,
    /// A root's real part lies in the open interval `(0, 1)` — excluded by
    /// Theorem 5.2's hypothesis.
    RootInUnitInterval(Complex),
    /// The scaled polynomial is not a valid CPF on `[0, 1]` (negative
    /// somewhere, so `P` was not nonnegative on the interval).
    NotAProbability {
        /// Where the violation was detected.
        t: f64,
        /// The offending value `P(t) / Delta`.
        value: f64,
    },
}

impl std::fmt::Display for PolyDshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyDshError::DegenerateDegree => {
                write!(f, "polynomial must have degree at least 1")
            }
            PolyDshError::RootInUnitInterval(z) => write!(
                f,
                "root {z:?} has real part in (0,1), excluded by Theorem 5.2"
            ),
            PolyDshError::NotAProbability { t, value } => {
                write!(f, "P(t)/Delta = {value} at t = {t} is not a probability")
            }
        }
    }
}

impl std::error::Error for PolyDshError {}

/// A Hamming-space DSH family with CPF `P(t) / Delta` (Theorem 5.2).
pub struct PolynomialHammingDsh {
    d: usize,
    poly: Polynomial,
    scaled_poly: Polynomial,
    delta: f64,
    family: Concat<[u64]>,
    piece_names: Vec<String>,
}

/// One per-root sub-family together with its exact CPF polynomial and its
/// contribution to `Delta`.
struct Piece {
    family: BoxedDshFamily<[u64]>,
    cpf_poly: Polynomial,
    delta: f64,
    name: String,
}

impl PolynomialHammingDsh {
    /// Build the Theorem 5.2 family over `{0,1}^d` for polynomial `p`.
    pub fn from_polynomial(d: usize, p: &Polynomial) -> Result<Self, PolyDshError> {
        assert!(d > 0, "dimension must be positive");
        let deg = p.degree().ok_or(PolyDshError::DegenerateDegree)?;
        if deg == 0 {
            return Err(PolyDshError::DegenerateDegree);
        }

        let all_roots = find_roots(p);
        // Hypothesis check: no root with real part in (0, 1). Zero roots
        // (real part exactly 0) are fine.
        for &z in &all_roots {
            // Forbidden strip: real part strictly inside (0, 1). Roots at 0
            // (monomial factors) and at 1 sit on the boundary and are fine.
            if z.re > 1e-9 && z.re < 1.0 - 1e-12 {
                return Err(PolyDshError::RootInUnitInterval(z));
            }
        }
        let grouped = group_roots(&all_roots);

        let mut pieces: Vec<Piece> = Vec::new();
        for &z in &grouped.real {
            pieces.push(real_root_piece(d, z)?);
        }
        for &z in &grouped.complex_pairs {
            pieces.push(complex_pair_piece(d, z)?);
        }
        assert!(!pieces.is_empty(), "degree >= 1 polynomial yields pieces");

        // Assemble the product CPF symbolically and recover Delta from
        // P = Delta * Q (they agree up to the leading scalar).
        let mut q_total = Polynomial::constant(1.0);
        for piece in &pieces {
            q_total = q_total.mul(&piece.cpf_poly);
        }
        let delta = {
            // Use the largest coefficient of Q for a well-conditioned ratio.
            let (j, qj) = q_total
                .coeffs()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
                .expect("nonzero polynomial");
            p.coeff(j) / qj
        };
        if !(delta.is_finite() && delta > 0.0) {
            return Err(PolyDshError::NotAProbability {
                t: 0.0,
                value: delta,
            });
        }
        // The per-piece contributions multiply to the global scaling factor
        // (this is exactly the paper's Delta decomposition).
        let piece_delta_product: f64 =
            p.leading().abs() * pieces.iter().map(|pc| pc.delta).product::<f64>();
        debug_assert!(
            (piece_delta_product - delta).abs() <= 1e-6 * delta,
            "piece deltas {piece_delta_product} disagree with global delta {delta}"
        );
        // Internal consistency: P must equal Delta * Q coefficient-wise.
        let scale = p.abs_coeff_sum().max(1.0);
        for i in 0..=deg {
            let diff = (p.coeff(i) - delta * q_total.coeff(i)).abs();
            assert!(
                diff <= 1e-5 * scale * delta.max(1.0),
                "factorization mismatch at coefficient {i}: {} vs {}",
                p.coeff(i),
                delta * q_total.coeff(i)
            );
        }
        // Validate the CPF is a probability on [0, 1].
        for i in 0..=400 {
            let t = i as f64 / 400.0;
            let v = q_total.eval(t);
            if !(-1e-9..=1.0 + 1e-9).contains(&v) {
                return Err(PolyDshError::NotAProbability { t, value: v });
            }
        }

        let piece_names = pieces.iter().map(|p| p.name.clone()).collect();
        let family = Concat::new(pieces.into_iter().map(|p| p.family).collect());
        Ok(PolynomialHammingDsh {
            d,
            poly: p.clone(),
            scaled_poly: q_total,
            delta,
            family,
            piece_names,
        })
    }

    /// Lemma 1.4(b) route (§5): for a polynomial with **nonnegative**
    /// coefficients summing to at most 1, realize the CPF `P(t)` exactly
    /// (no scaling factor) as a mixture of powers of anti bit-sampling.
    pub fn from_nonnegative_coefficients(
        d: usize,
        p: &Polynomial,
    ) -> Result<Mixture<[u64]>, PolyDshError> {
        if p.degree().is_none() {
            return Err(PolyDshError::DegenerateDegree);
        }
        if p.coeffs().iter().any(|&c| c < 0.0) || p.abs_coeff_sum() > 1.0 + 1e-12 {
            return Err(PolyDshError::NotAProbability {
                t: f64::NAN,
                value: p.abs_coeff_sum(),
            });
        }
        Ok(monomial_mixture(d, p.coeffs()))
    }

    /// The scaling factor `Delta >= 1/|a_k| ... ` of Theorem 5.2 such that
    /// the CPF is exactly `P(t) / Delta`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The target polynomial `P`.
    pub fn polynomial(&self) -> &Polynomial {
        &self.poly
    }

    /// Dimension of the Hamming space.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Descriptions of the per-root sub-families (for reports).
    pub fn piece_names(&self) -> &[String] {
        &self.piece_names
    }

    /// The paper's closed-form scaling factor
    /// `|a_k| * 2^psi * prod_{|z| > 1} |z|`, computed directly from the
    /// roots. Agrees with [`Self::delta`] up to floating point error.
    pub fn paper_delta(p: &Polynomial) -> Option<f64> {
        let deg = p.degree()?;
        if deg == 0 {
            return None;
        }
        let roots = find_roots(p);
        let mut delta = p.leading().abs();
        for z in roots {
            if z.re < 0.0 || (z.im != 0.0 && z.re <= 0.0) {
                delta *= 2.0;
            }
            let m = z.abs();
            if m > 1.0 {
                delta *= m;
            }
        }
        Some(delta)
    }
}

impl std::fmt::Debug for PolynomialHammingDsh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolynomialHammingDsh")
            .field("d", &self.d)
            .field("poly", &self.poly)
            .field("delta", &self.delta)
            .field("pieces", &self.piece_names)
            .finish()
    }
}

impl DshFamily<[u64]> for PolynomialHammingDsh {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[u64]> {
        self.family.sample(rng)
    }

    fn name(&self) -> String {
        format!("PolyDsh[{}]/{:.4}", self.poly, self.delta)
    }
}

impl AnalyticCpf for PolynomialHammingDsh {
    /// `arg` is the relative Hamming distance `t in [0, 1]`; returns
    /// `P(t) / Delta`.
    fn cpf(&self, t: f64) -> f64 {
        assert!((0.0..=1.0).contains(&t));
        self.scaled_poly.eval(t).clamp(0.0, 1.0)
    }
}

/// Realize a polynomial CPF with nonnegative coefficients summing to <= 1
/// as a mixture of `Always` (for `t^0`) and powers of anti bit-sampling
/// (CPF `t^i`), padded with `Never`.
fn monomial_mixture(d: usize, coeffs: &[f64]) -> Mixture<[u64]> {
    let mut items: Vec<(f64, BoxedDshFamily<[u64]>)> = Vec::new();
    let mut total = 0.0;
    for (i, &c) in coeffs.iter().enumerate() {
        assert!(
            c >= -1e-12,
            "monomial mixture needs nonnegative coefficients"
        );
        let c = c.max(0.0);
        if c == 0.0 {
            continue;
        }
        total += c;
        let fam: BoxedDshFamily<[u64]> = if i == 0 {
            Box::new(AlwaysCollide)
        } else {
            Box::new(Power::new(AntiBitSampling::new(d), i))
        };
        items.push((c, fam));
    }
    assert!(total <= 1.0 + 1e-9, "coefficients sum to {total} > 1");
    let pad = (1.0 - total).max(0.0);
    items.push((pad, Box::new(NeverCollide)));
    // Renormalize away accumulated float error so Mixture's sum check holds.
    let s: f64 = items.iter().map(|(p, _)| p).sum();
    for (p, _) in &mut items {
        *p /= s;
    }
    Mixture::new(items)
}

/// Piece for a real root `z` (with `z` outside `(0, 1)`).
fn real_root_piece(d: usize, z: f64) -> Result<Piece, PolyDshError> {
    if z.abs() <= 1e-9 {
        // Root at 0: factor t, plain anti bit-sampling.
        return Ok(Piece {
            family: Box::new(AntiBitSampling::new(d)),
            cpf_poly: Polynomial::new(vec![0.0, 1.0]),
            delta: 1.0,
            name: "anti-bit-sampling (root 0)".into(),
        });
    }
    if z < 0.0 {
        // Factor (t + |z|) = 2m * ((|z| + t) / (2m)), m = max(1, |z|):
        // scaled+biased anti bit-sampling with alpha = 1/m, beta = |z|/m.
        let m = z.abs().max(1.0);
        let alpha = 1.0 / m;
        let beta = z.abs() / m;
        let fam = ScaledBiasedAntiBitSampling::new(d, alpha, beta);
        return Ok(Piece {
            family: Box::new(fam),
            cpf_poly: Polynomial::new(vec![0.5 * beta, 0.5 * alpha]),
            delta: 2.0 * m,
            name: format!("scaled+biased anti (root {z:.4})"),
        });
    }
    if z >= 1.0 - 1e-12 {
        // Factor (z - t) = z (1 - t/z): scaled bit-sampling, alpha = 1/z.
        let z = z.max(1.0);
        let alpha = 1.0 / z;
        let fam = ScaledBitSampling::new(d, alpha);
        return Ok(Piece {
            family: Box::new(fam),
            cpf_poly: Polynomial::new(vec![1.0, -alpha]),
            delta: z,
            name: format!("scaled bit-sampling (root {z:.4})"),
        });
    }
    Err(PolyDshError::RootInUnitInterval(Complex::from_real(z)))
}

/// Piece for a conjugate pair `z = a + bi`, `b > 0`: realizes the factor
/// `t^2 - 2 a t + a^2 + b^2` up to the stated scaling.
fn complex_pair_piece(d: usize, z: Complex) -> Result<Piece, PolyDshError> {
    let (a, b) = (z.re, z.im);
    assert!(
        b > 0.0,
        "representative of a conjugate pair must have im > 0"
    );
    let n = a * a + b * b;
    if a < -1.0 {
        // S4: factor = 4n * [ b^2/(4n) + (a^2/n) ((t/(2|a|) + 1/2))^2 ].
        // Sub-family: mixture of a constant-1/4 scheme (weight b^2/n) and
        // the square of scaled+biased anti bit-sampling with alpha = 1/|a|,
        // beta = 1 (weight a^2/n).
        let abs_a = a.abs();
        let inner = ScaledBiasedAntiBitSampling::new(d, 1.0 / abs_a, 1.0);
        let fam = Mixture::new(vec![
            (
                b * b / n,
                Box::new(scaled(Box::new(AlwaysCollide), 0.25)) as BoxedDshFamily<[u64]>,
            ),
            (a * a / n, Box::new(Power::new(inner, 2))),
        ]);
        // CPF polynomial: b^2/(4n) + (a^2/n) (1/2 + t/(2|a|))^2.
        let lin = Polynomial::new(vec![0.5, 0.5 / abs_a]);
        let cpf = Polynomial::constant(b * b / (4.0 * n)).add(&lin.mul(&lin).scale(a * a / n));
        return Ok(Piece {
            family: Box::new(fam),
            cpf_poly: cpf,
            delta: 4.0 * n,
            name: format!("complex pair Re<-1 ({a:.3} +- {b:.3}i)"),
        });
    }
    if a >= 1.0 {
        // S5: factor = n * [ b^2/n + (a^2/n) (1 - t/a)^2 ].
        let inner = ScaledBitSampling::new(d, 1.0 / a);
        let fam = Mixture::new(vec![
            (b * b / n, Box::new(AlwaysCollide) as BoxedDshFamily<[u64]>),
            (a * a / n, Box::new(Power::new(inner, 2))),
        ]);
        let lin = Polynomial::new(vec![1.0, -1.0 / a]);
        let cpf = Polynomial::constant(b * b / n).add(&lin.mul(&lin).scale(a * a / n));
        return Ok(Piece {
            family: Box::new(fam),
            cpf_poly: cpf,
            delta: n,
            name: format!("complex pair Re>=1 ({a:.3} +- {b:.3}i)"),
        });
    }
    if a <= 1e-9 {
        // -1 <= Re(z) <= 0 (S6/S7): the factor t^2 + 2|a| t + n has
        // nonnegative coefficients; divide by 4 max(1, n) so they sum to
        // <= 1 and realize as a monomial mixture.
        let m = n.max(1.0);
        let delta = 4.0 * m;
        let coeffs = vec![n / delta, 2.0 * a.abs() / delta, 1.0 / delta];
        let cpf = Polynomial::new(coeffs.clone());
        let fam = monomial_mixture(d, &coeffs);
        return Ok(Piece {
            family: Box::new(fam),
            cpf_poly: cpf,
            delta,
            name: format!("complex pair mid ({a:.3} +- {b:.3}i)"),
        });
    }
    Err(PolyDshError::RootInUnitInterval(z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::BitVector;
    use dsh_math::rng::seeded;

    fn points_at_distance(d: usize, k: usize) -> (BitVector, BitVector) {
        let x = BitVector::random(&mut seeded(41), d);
        let mut y = x.clone();
        for i in 0..k {
            y.flip(i);
        }
        (x, y)
    }

    fn check_cpf_matches(fam: &PolynomialHammingDsh, d: usize, seed: u64) {
        for &k in &[0usize, d / 4, d / 2, 3 * d / 4, d] {
            let (x, y) = points_at_distance(d, k);
            let t = k as f64 / d as f64;
            let want = fam.cpf(t);
            let est = CpfEstimator::new(50_000, seed + k as u64).estimate_pair(fam, &x, &y);
            assert!(
                est.contains(want),
                "t={t}: want {want}, got {} in [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn unimodal_t_times_one_minus_t() {
        // P(t) = t (1 - t) = t - t^2; roots 0 and 1; Delta = 1.
        let p = Polynomial::new(vec![0.0, 1.0, -1.0]);
        let fam = PolynomialHammingDsh::from_polynomial(100, &p).unwrap();
        assert!((fam.delta() - 1.0).abs() < 1e-9, "delta {}", fam.delta());
        assert!((fam.cpf(0.5) - 0.25).abs() < 1e-9);
        check_cpf_matches(&fam, 100, 1000);
    }

    #[test]
    fn one_minus_t_squared_needs_delta_two() {
        // P(t) = 1 - t^2 = (1 - t)(1 + t); the paper's own example of why
        // Delta is unavoidable: Delta = 2.
        let p = Polynomial::new(vec![1.0, 0.0, -1.0]);
        let fam = PolynomialHammingDsh::from_polynomial(100, &p).unwrap();
        assert!((fam.delta() - 2.0).abs() < 1e-9, "delta {}", fam.delta());
        assert!((fam.cpf(0.0) - 0.5).abs() < 1e-9);
        assert!((fam.cpf(1.0) - 0.0).abs() < 1e-9);
        check_cpf_matches(&fam, 100, 2000);
    }

    #[test]
    fn purely_imaginary_roots() {
        // P(t) = t^2 + 1; roots +-i (middle case, |z| = 1); Delta = 4.
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let fam = PolynomialHammingDsh::from_polynomial(80, &p).unwrap();
        assert!((fam.delta() - 4.0).abs() < 1e-6, "delta {}", fam.delta());
        assert!((fam.cpf(0.0) - 0.25).abs() < 1e-9);
        assert!((fam.cpf(1.0) - 0.5).abs() < 1e-9);
        check_cpf_matches(&fam, 80, 3000);
    }

    #[test]
    fn complex_pair_left_of_minus_one() {
        // P(t) = t^2 + 4t + 5; roots -2 +- i; n = 5, Delta = 20.
        let p = Polynomial::new(vec![5.0, 4.0, 1.0]);
        let fam = PolynomialHammingDsh::from_polynomial(80, &p).unwrap();
        assert!((fam.delta() - 20.0).abs() < 1e-6, "delta {}", fam.delta());
        assert!((fam.cpf(0.0) - 0.25).abs() < 1e-9);
        assert!((fam.cpf(1.0) - 0.5).abs() < 1e-9);
        check_cpf_matches(&fam, 80, 4000);
    }

    #[test]
    fn complex_pair_right_of_one() {
        // P(t) = t^2 - 4t + 5; roots 2 +- i; n = 5, Delta = 5.
        let p = Polynomial::new(vec![5.0, -4.0, 1.0]);
        let fam = PolynomialHammingDsh::from_polynomial(80, &p).unwrap();
        assert!((fam.delta() - 5.0).abs() < 1e-6, "delta {}", fam.delta());
        assert!((fam.cpf(0.0) - 1.0).abs() < 1e-9);
        assert!((fam.cpf(1.0) - 0.4).abs() < 1e-9);
        check_cpf_matches(&fam, 80, 5000);
    }

    #[test]
    fn mixed_roots_cubic() {
        // P(t) = t (1 - t) (t + 2) = -t^3 - t^2 + 2t:
        // roots 0, 1, -2; Delta = 2 * max(1,2) * 1 = 4.
        let p = Polynomial::new(vec![0.0, 2.0, -1.0, -1.0]);
        let fam = PolynomialHammingDsh::from_polynomial(100, &p).unwrap();
        assert!((fam.delta() - 4.0).abs() < 1e-6, "delta {}", fam.delta());
        assert_eq!(fam.piece_names().len(), 3);
        check_cpf_matches(&fam, 100, 6000);
    }

    #[test]
    fn paper_delta_formula_agrees() {
        for coeffs in [
            vec![1.0, 0.0, -1.0],       // (1-t)(1+t)
            vec![5.0, 4.0, 1.0],        // -2 +- i
            vec![5.0, -4.0, 1.0],       // 2 +- i
            vec![0.0, 2.0, -1.0, -1.0], // 0, 1, -2
        ] {
            let p = Polynomial::new(coeffs);
            let fam = PolynomialHammingDsh::from_polynomial(50, &p).unwrap();
            let paper = PolynomialHammingDsh::paper_delta(&p).unwrap();
            assert!(
                (fam.delta() - paper).abs() < 1e-6 * paper,
                "{}: construction {} vs formula {}",
                p,
                fam.delta(),
                paper
            );
        }
    }

    #[test]
    fn root_in_unit_interval_rejected() {
        // P(t) = t - 0.5.
        let p = Polynomial::new(vec![-0.5, 1.0]);
        match PolynomialHammingDsh::from_polynomial(50, &p) {
            Err(PolyDshError::RootInUnitInterval(z)) => {
                assert!((z.re - 0.5).abs() < 1e-9);
            }
            other => panic!("expected RootInUnitInterval, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_polynomials_rejected() {
        assert_eq!(
            PolynomialHammingDsh::from_polynomial(10, &Polynomial::constant(0.5)).unwrap_err(),
            PolyDshError::DegenerateDegree
        );
        assert_eq!(
            PolynomialHammingDsh::from_polynomial(10, &Polynomial::zero()).unwrap_err(),
            PolyDshError::DegenerateDegree
        );
    }

    #[test]
    fn nonnegative_route_matches_exactly() {
        // P(t) = 0.3 + 0.5 t + 0.2 t^3: CPF realized with NO scaling.
        let p = Polynomial::new(vec![0.3, 0.5, 0.0, 0.2]);
        let fam = PolynomialHammingDsh::from_nonnegative_coefficients(100, &p).unwrap();
        let d = 100;
        for &k in &[0usize, 50, 100] {
            let (x, y) = points_at_distance(d, k);
            let t = k as f64 / d as f64;
            let est = CpfEstimator::new(50_000, 7000 + k as u64).estimate_pair(&fam, &x, &y);
            assert!(
                est.contains(p.eval(t)),
                "t={t}: want {}, got {}",
                p.eval(t),
                est.estimate
            );
        }
    }

    #[test]
    fn nonnegative_route_rejects_bad_inputs() {
        let neg = Polynomial::new(vec![0.5, -0.1]);
        assert!(PolynomialHammingDsh::from_nonnegative_coefficients(10, &neg).is_err());
        let too_big = Polynomial::new(vec![0.9, 0.9]);
        assert!(PolynomialHammingDsh::from_nonnegative_coefficients(10, &too_big).is_err());
    }

    #[test]
    fn taylor_truncation_example() {
        // §5 closing remark: approximate a smooth function by a truncated
        // Taylor series and apply the construction. Degree-4 truncation of
        // cos(t): 1 - t^2/2 + t^4/24, whose four real roots (~ +-1.59,
        // +-3.08) all lie outside [0, 1].
        let p = Polynomial::new(vec![1.0, 0.0, -0.5, 0.0, 1.0 / 24.0]);
        let fam = PolynomialHammingDsh::from_polynomial(60, &p).unwrap();
        // Two roots have negative real part (psi = 2) and all four have
        // magnitude > 1 with product |a_0 / a_4| = 24, so
        // Delta = (1/24) * 2^2 * 24 = 4.
        assert!((fam.delta() - 4.0).abs() < 1e-6, "delta {}", fam.delta());
        for &t in &[0.0, 0.5, 1.0] {
            let want = p.eval(t) / fam.delta();
            assert!((fam.cpf(t) - want).abs() < 1e-9);
        }
        // And the truncation is close to cos(t) itself.
        assert!((fam.cpf(1.0) * fam.delta() - 1.0f64.cos()).abs() < 0.01);
    }
}
