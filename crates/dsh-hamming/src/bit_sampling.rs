//! Bit-sampling and anti bit-sampling (paper §4.1).
//!
//! Bit-sampling [Indyk–Motwani] picks a uniformly random coordinate `i`
//! and hashes `x` to `x_i`; its CPF is `1 - t` where `t` is the relative
//! Hamming distance. It is the optimal LSH for Hamming space in terms of
//! `rho_plus` for small `r`.
//!
//! Anti bit-sampling is the paper's simplest asymmetric family: the pair
//! `(x -> x_i, y -> 1 - y_i)`. A collision `h(x) = g(y)` means `x_i != y_i`,
//! which happens with probability exactly `t` — a monotonically
//! *increasing* CPF, impossible symmetrically (a symmetric family always
//! has `f(0) = 1`).
//!
//! §4.1 also observes that anti bit-sampling is *not* optimal: its
//! `rho_minus = ln f(r) / ln f(r/c)` is `Omega(1 / ln c)` for small `r`,
//! while routing through the unit sphere achieves `O(1/c)`. Experiment T9
//! measures this.

use dsh_core::cpf::AnalyticCpf;
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::get_bit;
use rand::Rng;

/// Classical bit-sampling LSH; CPF `f(t) = 1 - t` in relative Hamming
/// distance.
#[derive(Debug, Clone, Copy)]
pub struct BitSampling {
    d: usize,
}

impl BitSampling {
    /// Family over `{0,1}^d`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        BitSampling { d }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.d
    }
}

impl DshFamily<[u64]> for BitSampling {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[u64]> {
        let i = rng.random_range(0..self.d);
        HasherPair::from_fns(
            move |x: &[u64]| get_bit(x, i) as u64,
            move |y: &[u64]| get_bit(y, i) as u64,
        )
    }

    fn name(&self) -> String {
        format!("BitSampling(d={})", self.d)
    }
}

impl AnalyticCpf for BitSampling {
    /// `arg` is the relative Hamming distance `t in [0, 1]`.
    fn cpf(&self, t: f64) -> f64 {
        assert!((0.0..=1.0).contains(&t));
        1.0 - t
    }
}

/// Anti bit-sampling (paper §4.1): `h(x) = x_i`, `g(y) = 1 - y_i`; CPF
/// `f(t) = t` in relative Hamming distance.
#[derive(Debug, Clone, Copy)]
pub struct AntiBitSampling {
    d: usize,
}

impl AntiBitSampling {
    /// Family over `{0,1}^d`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "dimension must be positive");
        AntiBitSampling { d }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The `rho_minus` value of anti bit-sampling at relative distance `r`
    /// with gap `c`: `ln f(r) / ln f(r/c) = ln r / ln(r/c)` (§4.1). This is
    /// `Theta(1 / ln c)` for fixed small `r` — the suboptimality the sphere
    /// route beats.
    pub fn rho_minus(r: f64, c: f64) -> f64 {
        assert!(r > 0.0 && r < 1.0 && c > 1.0);
        r.ln() / (r / c).ln()
    }
}

impl DshFamily<[u64]> for AntiBitSampling {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<[u64]> {
        let i = rng.random_range(0..self.d);
        HasherPair::from_fns(
            move |x: &[u64]| get_bit(x, i) as u64,
            move |y: &[u64]| !get_bit(y, i) as u64,
        )
    }

    fn name(&self) -> String {
        format!("AntiBitSampling(d={})", self.d)
    }
}

impl AnalyticCpf for AntiBitSampling {
    /// `arg` is the relative Hamming distance `t in [0, 1]`.
    fn cpf(&self, t: f64) -> f64 {
        assert!((0.0..=1.0).contains(&t));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::combinators::{Concat, Power};
    use dsh_core::estimate::CpfEstimator;
    use dsh_core::points::BitVector;
    use dsh_math::rng::seeded;

    fn points_at_distance(d: usize, k: usize) -> (BitVector, BitVector) {
        let x = BitVector::random(&mut seeded(17), d);
        let mut y = x.clone();
        for i in 0..k {
            y.flip(i);
        }
        (x, y)
    }

    #[test]
    fn bit_sampling_cpf_matches() {
        let d = 200;
        let fam = BitSampling::new(d);
        for &k in &[0usize, 20, 100, 200] {
            let (x, y) = points_at_distance(d, k);
            let t = k as f64 / d as f64;
            let est = CpfEstimator::new(30_000, 1).estimate_pair(&fam, &x, &y);
            assert!(
                est.contains(fam.cpf(t)),
                "t={t}: est {} not in [{}, {}]",
                est.estimate,
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn anti_bit_sampling_cpf_matches() {
        let d = 200;
        let fam = AntiBitSampling::new(d);
        for &k in &[0usize, 20, 100, 200] {
            let (x, y) = points_at_distance(d, k);
            let t = k as f64 / d as f64;
            let est = CpfEstimator::new(30_000, 2).estimate_pair(&fam, &x, &y);
            assert!(est.contains(fam.cpf(t)), "t={t}: est {}", est.estimate);
        }
    }

    #[test]
    fn anti_bit_sampling_zero_at_equal_points() {
        // The asymmetric trick: identical points NEVER collide.
        let d = 64;
        let fam = AntiBitSampling::new(d);
        let x = BitVector::random(&mut seeded(3), d);
        let mut rng = seeded(4);
        for _ in 0..100 {
            let pair = fam.sample(&mut rng);
            assert!(!pair.collides(&x, &x));
        }
    }

    #[test]
    fn anti_bit_sampling_always_collides_at_max_distance() {
        let d = 64;
        let fam = AntiBitSampling::new(d);
        let x = BitVector::random(&mut seeded(5), d);
        let y = x.complement();
        let mut rng = seeded(6);
        for _ in 0..100 {
            let pair = fam.sample(&mut rng);
            assert!(pair.collides(&x, &y));
        }
    }

    #[test]
    fn annulus_shaped_cpf_from_concat() {
        // (1-t)^k1 * t^k2 peaks at t = k2/(k1+k2) (§6.1 discussion).
        let d = 100;
        let k1 = 3usize;
        let k2 = 3usize;
        let fam = Concat::new(vec![
            Box::new(Power::new(BitSampling::new(d), k1)) as dsh_core::BoxedDshFamily<[u64]>,
            Box::new(Power::new(AntiBitSampling::new(d), k2)),
        ]);
        // CPF at t: (1-t)^3 t^3; peak value at t=0.5 is (1/2)^6.
        let (x_mid, y_mid) = points_at_distance(d, 50);
        let est = CpfEstimator::new(60_000, 7).estimate_pair(&fam, &x_mid, &y_mid);
        assert!(est.contains(0.5f64.powi(6)), "got {}", est.estimate);
        // Near-zero and near-max distance: tiny collision probability.
        let (x0, y0) = points_at_distance(d, 5);
        let est0 = CpfEstimator::new(60_000, 8).estimate_pair(&fam, &x0, &y0);
        let expect0 = 0.95f64.powi(3) * 0.05f64.powi(3);
        assert!(
            est0.contains(expect0),
            "got {} want {}",
            est0.estimate,
            expect0
        );
    }

    #[test]
    fn rho_minus_grows_like_inverse_log_c() {
        let r = 0.01;
        // rho_minus(c) * ln(c) should be roughly constant (= -ln r ... ratio).
        let v2 = AntiBitSampling::rho_minus(r, 2.0);
        let v8 = AntiBitSampling::rho_minus(r, 8.0);
        // Exact values: ln(0.01)/ln(0.005), ln(0.01)/ln(0.00125).
        assert!((v2 - (0.01f64.ln() / 0.005f64.ln())).abs() < 1e-12);
        assert!(v8 < v2, "rho_minus must shrink with c");
        // Inverse-log shape: v(c) ~ 1 / (1 + ln c / ln(1/r)).
        let predict = |c: f64| 1.0 / (1.0 + c.ln() / (1.0 / r).ln());
        assert!((v2 - predict(2.0)).abs() < 1e-9);
        assert!((v8 - predict(8.0)).abs() < 1e-9);
    }

    #[test]
    fn cpf_trait_bounds() {
        let f = BitSampling::new(10);
        assert_eq!(f.cpf(0.0), 1.0);
        assert_eq!(f.cpf(1.0), 0.0);
        let g = AntiBitSampling::new(10);
        assert_eq!(g.cpf(0.0), 0.0);
        assert_eq!(g.cpf(1.0), 1.0);
        assert_eq!(f.dim(), 10);
        assert_eq!(g.dim(), 10);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_rejected() {
        let _ = BitSampling::new(0);
    }
}
