//! Hamming-space distance-sensitive hashing constructions (paper §4.1, §5).
//!
//! * [`bit_sampling::BitSampling`] — the classical Indyk–Motwani LSH with
//!   CPF `1 - t` (relative Hamming distance `t`);
//! * [`bit_sampling::AntiBitSampling`] — the paper's asymmetric "negated
//!   bit" family with *increasing* CPF `t` (§4.1);
//! * [`scaled`] — the scaled/biased variants `1 - alpha t` and
//!   `beta/2 + alpha t / 2` used as building blocks by Theorem 5.2;
//! * [`poly_dsh`] — Theorem 5.2 end-to-end: given a polynomial `P` with no
//!   roots of real part in `(0, 1)`, a DSH family with CPF `P(t) / Delta`,
//!   with the scaling factor `Delta = |a_k| 2^psi prod_{|z|>1} |z|`
//!   computed from the factorization.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bit_sampling;
pub mod multiprobe;
pub mod padded;
pub mod poly_dsh;
pub mod scaled;

pub use bit_sampling::{AntiBitSampling, BitSampling};
pub use multiprobe::MultiProbeBitSampling;
pub use padded::PaddedFamily;
pub use poly_dsh::{PolyDshError, PolynomialHammingDsh};
pub use scaled::{ScaledBiasedAntiBitSampling, ScaledBitSampling};
