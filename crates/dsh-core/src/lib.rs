//! Core framework for distance-sensitive hashing (DSH).
//!
//! A *distance-sensitive hashing scheme* for a space `(X, dist)` is a
//! distribution `D` over **pairs** of functions `h, g : X -> R` with
//! *collision probability function* (CPF) `f : R -> [0, 1]` if for every
//! pair of points `x, y` and `(h, g) ~ D`:
//!
//! ```text
//! Pr[h(x) = g(y)] = f(dist(x, y))          (paper Definition 1.1)
//! ```
//!
//! Classical LSH is the symmetric special case `h = g` with decreasing `f`.
//! The asymmetry is what buys increasing, unimodal, step and polynomial
//! CPFs — the subject of the paper.
//!
//! This crate provides:
//!
//! * [`family::DshFamily`] — the distribution over `(h, g)` pairs, sampled
//!   with an explicit RNG so everything is reproducible;
//! * [`points`] — packed [`points::BitVector`] for Hamming space and
//!   [`points::DenseVector`] for `R^d`, plus the flat storage layer
//!   ([`points::DenseStore`] / [`points::BitStore`] with the
//!   [`points::PointStore`] trait and slice distance kernels) that the
//!   index substrate hashes and verifies against;
//! * [`kernels`] — the six distance kernels (`dot`/`euclidean`/`hamming`
//!   and batch variants) behind a one-time runtime SIMD dispatch
//!   (scalar / SSE2 / AVX2 tiers, bit-identical f64 results, software
//!   prefetch hints for the index layer);
//! * [`distance`] — the distance/similarity measures used throughout the
//!   paper, including the `simH` similarity of §3;
//! * [`combinators`] — Lemma 1.4: concatenation/powering (CPF product) and
//!   mixtures (CPF convex combination), plus constant families from which
//!   scaling and biasing are derived;
//! * [`estimate`] — Monte-Carlo CPF estimation with Wilson confidence
//!   intervals, used by every experiment;
//! * [`cpf`] — the [`cpf::AnalyticCpf`] trait and ρ-exponent helpers.

// `deny` rather than `forbid`: the one registered kernel module
// (`kernels/x86.rs`, the workspace's only unsafe boundary, enforced by
// dsh-lint L5) opts back in with a module-level `allow(unsafe_code)`,
// which `forbid` would reject. Everywhere else unsafe stays a hard error.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod combinators;
pub mod cpf;
pub mod distance;
pub mod estimate;
pub mod family;
pub mod hash;
pub mod kernels;
pub mod minhash;
pub mod points;

pub use cpf::AnalyticCpf;
pub use family::{BoxedDshFamily, DshFamily, HasherPair, PointHasher};
pub use minhash::{MinHash, TokenSet};
pub use points::{
    AsRow, BitRef, BitStore, BitVector, DenseRef, DenseStore, DenseVector, PointStore,
};
