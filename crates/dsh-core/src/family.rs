//! The [`DshFamily`] trait: distributions over pairs of hash functions.
//!
//! Definition 1.1 of the paper: a DSH scheme is a distribution over pairs
//! `(h, g)` of functions. Data points are hashed with `h`, query points
//! with `g`; the scheme's behaviour is entirely described by its collision
//! probability function `f(dist(x, y)) = Pr[h(x) = g(y)]`.

use crate::points::AsRow;
use rand::Rng;
use std::sync::Arc;

/// A sampled hash function mapping points of type `P` to 64-bit values.
///
/// Implementations are immutable once sampled; all randomness is consumed
/// at sampling time (matching the paper's model where `(h, g)` is drawn
/// once and then evaluated deterministically).
pub trait PointHasher<P: ?Sized>: Send + Sync {
    /// Evaluate the hash function on a point.
    fn hash(&self, x: &P) -> u64;
}

/// Wrap a closure as a [`PointHasher`].
pub struct FnHasher<F>(pub F);

impl<P: ?Sized, F: Fn(&P) -> u64 + Send + Sync> PointHasher<P> for FnHasher<F> {
    fn hash(&self, x: &P) -> u64 {
        (self.0)(x)
    }
}

/// A sampled `(h, g)` pair. `data` plays the role of `h` (applied to data
/// set points), `query` the role of `g` (applied to query points).
pub struct HasherPair<P: ?Sized> {
    /// The data-side function `h`.
    pub data: Arc<dyn PointHasher<P>>,
    /// The query-side function `g`.
    pub query: Arc<dyn PointHasher<P>>,
}

// Manual impl: `derive(Clone)` would demand `P: Clone`, but cloning only
// bumps the two `Arc`s — row types like `[u64]` are unsized and must not
// be required to be `Clone`.
impl<P: ?Sized> Clone for HasherPair<P> {
    fn clone(&self) -> Self {
        HasherPair {
            data: Arc::clone(&self.data),
            query: Arc::clone(&self.query),
        }
    }
}

impl<P: ?Sized> HasherPair<P> {
    /// Build from two hashers.
    pub fn new(data: impl PointHasher<P> + 'static, query: impl PointHasher<P> + 'static) -> Self {
        HasherPair {
            data: Arc::new(data),
            query: Arc::new(query),
        }
    }

    /// Build a symmetric pair `h = g` (the classical LSH case).
    pub fn symmetric(h: impl PointHasher<P> + 'static) -> Self {
        let h: Arc<dyn PointHasher<P>> = Arc::new(h);
        HasherPair {
            data: Arc::clone(&h),
            query: h,
        }
    }

    /// Build from two closures.
    pub fn from_fns(
        data: impl Fn(&P) -> u64 + Send + Sync + 'static,
        query: impl Fn(&P) -> u64 + Send + Sync + 'static,
    ) -> Self {
        HasherPair::new(FnHasher(data), FnHasher(query))
    }

    /// Whether data point `x` and query point `y` collide: `h(x) == g(y)`.
    ///
    /// Accepts anything whose [`AsRow`] row is `P`: owned points
    /// ([`crate::points::BitVector`] / [`crate::points::DenseVector`]),
    /// store row views, or raw rows themselves.
    pub fn collides<X, Y>(&self, x: &X, y: &Y) -> bool
    where
        X: AsRow<Row = P> + ?Sized,
        Y: AsRow<Row = P> + ?Sized,
    {
        self.data.hash(x.as_row()) == self.query.hash(y.as_row())
    }

    /// Swap the roles of `h` and `g`. If the original family has CPF
    /// `f(dist(x, y))`, the swapped family has the CPF with the roles of
    /// data and query exchanged (identical for the isometric families in
    /// this workspace, since `dist` is symmetric).
    pub fn swapped(self) -> Self {
        HasherPair {
            data: self.query,
            query: self.data,
        }
    }
}

/// A distance-sensitive family: a distribution over [`HasherPair`]s
/// (Definition 1.1). Implementors must consume randomness only from the
/// provided RNG so that experiments are reproducible.
///
/// ```
/// use dsh_core::family::{DshFamily, HasherPair};
/// use rand::Rng;
///
/// /// Collides iff the points agree modulo a random modulus in 2..=5:
/// /// a toy family whose CPF depends on the pair of points.
/// struct ModFamily;
/// impl DshFamily<u64> for ModFamily {
///     fn sample(&self, rng: &mut dyn Rng) -> HasherPair<u64> {
///         let m = 2 + rng.next_u64() % 4;
///         HasherPair::from_fns(move |x: &u64| x % m, move |y: &u64| y % m)
///     }
/// }
///
/// let mut rng = dsh_math::rng::seeded(1);
/// let pair = ModFamily.sample(&mut rng);
/// assert!(pair.collides(&12u64, &12u64));
/// ```
pub trait DshFamily<P: ?Sized>: Send + Sync {
    /// Draw one `(h, g)` pair.
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P>;

    /// Human-readable name used in reports and benchmark tables.
    fn name(&self) -> String {
        let full = std::any::type_name::<Self>();
        full.rsplit("::").next().unwrap_or(full).to_string()
    }
}

/// A boxed, dynamically typed family.
pub type BoxedDshFamily<P> = Box<dyn DshFamily<P>>;

impl<P: ?Sized> DshFamily<P> for BoxedDshFamily<P> {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        (**self).sample(rng)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<P: ?Sized, F: DshFamily<P> + ?Sized> DshFamily<P> for &F {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        (**self).sample(rng)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

impl<P: ?Sized, F: DshFamily<P> + ?Sized> DshFamily<P> for Arc<F> {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        (**self).sample(rng)
    }
    fn name(&self) -> String {
        (**self).name()
    }
}

/// Adapter turning a sampler of single functions into a **symmetric**
/// family (`h = g`): the classical LSH view. Used by SimHash, bit-sampling,
/// cross-polytope LSH, etc.
pub struct SymmetricFamily<S> {
    sampler: S,
    label: String,
}

impl<S> SymmetricFamily<S> {
    /// Build from a function-sampler and a display label.
    pub fn new(label: impl Into<String>, sampler: S) -> Self {
        SymmetricFamily {
            sampler,
            label: label.into(),
        }
    }
}

impl<P, S, H> DshFamily<P> for SymmetricFamily<S>
where
    P: ?Sized,
    S: Fn(&mut dyn Rng) -> H + Send + Sync,
    H: PointHasher<P> + 'static,
{
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        HasherPair::symmetric((self.sampler)(rng))
    }
    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct ParityHasher;
    impl PointHasher<u64> for ParityHasher {
        fn hash(&self, x: &u64) -> u64 {
            x & 1
        }
    }

    #[test]
    fn hasher_pair_collides() {
        let pair = HasherPair::new(ParityHasher, ParityHasher);
        assert!(pair.collides(&2u64, &4u64));
        assert!(!pair.collides(&2u64, &3u64));
    }

    #[test]
    fn symmetric_shares_function() {
        let pair = HasherPair::<u64>::symmetric(ParityHasher);
        assert_eq!(pair.data.hash(&7), pair.query.hash(&7));
    }

    #[test]
    fn from_fns_and_swapped() {
        let pair = HasherPair::<u64>::from_fns(|x| *x, |x| x + 1);
        // h(x) = x, g(y) = y + 1: x collides with y iff x = y + 1.
        assert!(pair.collides(&5u64, &4u64));
        assert!(!pair.collides(&5u64, &5u64));
        let sw = pair.swapped();
        assert!(sw.collides(&4u64, &5u64));
    }

    struct RandomSignFamily;
    impl DshFamily<u64> for RandomSignFamily {
        fn sample(&self, rng: &mut dyn Rng) -> HasherPair<u64> {
            let flip: bool = rng.random_bool(0.5);
            HasherPair::from_fns(move |x| x ^ (flip as u64), |y| *y)
        }
    }

    #[test]
    fn family_sampling_uses_rng() {
        let fam = RandomSignFamily;
        let mut rng = StdRng::seed_from_u64(3);
        let mut outcomes = std::collections::HashSet::new();
        for _ in 0..32 {
            let pair = fam.sample(&mut rng);
            outcomes.insert(pair.collides(&0u64, &0u64));
        }
        // Both collide and non-collide outcomes occur.
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn boxed_family_delegates() {
        let boxed: BoxedDshFamily<u64> = Box::new(RandomSignFamily);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = boxed.sample(&mut rng);
        assert_eq!(boxed.name(), "RandomSignFamily");
    }

    #[test]
    fn symmetric_family_adapter() {
        let fam = SymmetricFamily::new("parity", |_rng: &mut dyn Rng| ParityHasher);
        let mut rng = StdRng::seed_from_u64(1);
        let pair = fam.sample(&mut rng);
        assert!(pair.collides(&2u64, &2u64));
        assert_eq!(DshFamily::<u64>::name(&fam), "parity");
    }
}
