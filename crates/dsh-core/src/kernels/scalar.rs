//! The blocked scalar kernels — the always-compiled fallback tier and
//! the **parity oracle** every SIMD tier is checked against.
//!
//! These are the PR 3 four-accumulator kernels, moved here verbatim from
//! `points.rs` so the scalar implementation exists exactly once in the
//! workspace. The lane structure is the contract the SIMD tiers must
//! reproduce for bit-identical `f64` results (see the module docs of
//! [`crate::kernels`]): accumulator `j` sums the products of elements
//! `j, j + 4, j + 8, ...` in index order, and the final reduction is
//! `(acc0 + acc1) + (acc2 + acc3) + tail`.
//!
//! Length contract: the dispatching wrappers in [`crate::kernels`] assert
//! equal slice lengths before calling any tier. Called directly (as the
//! oracle), mismatched slices truncate to the shorter length like `zip`
//! — they never panic.

/// Inner product of two equal-length rows; four independent accumulators
/// so four multiply-adds stay in flight instead of serializing on one
/// running sum. Summation order differs from a left-to-right fold by
/// O(eps) reassociation error only — and is reproduced exactly, lane for
/// lane, by the SIMD tiers.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (pa, pb) in (&mut ca).zip(&mut cb) {
        acc[0] += pa[0] * pb[0];
        acc[1] += pa[1] * pb[1];
        acc[2] += pa[2] * pb[2];
        acc[3] += pa[3] * pb[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Euclidean distance between two equal-length rows (same blocked
/// evaluation as [`dot`]).
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (pa, pb) in (&mut ca).zip(&mut cb) {
        let d0 = pa[0] - pb[0];
        let d1 = pa[1] - pb[1];
        let d2 = pa[2] - pb[2];
        let d3 = pa[3] - pb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += (x - y) * (x - y);
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3]) + tail).sqrt()
}

/// Hamming distance between two equal-length packed rows (xor-popcount
/// over the blocks; tail bits beyond the dimension must be zero, which
/// every `BitVector`/`BitStore` constructor guarantees). Integer
/// summation is associative, so any tier's reduction order is exact.
pub fn hamming(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x ^ y).count_ones() as u64)
        .sum()
}

/// Batch [`dot`] of rows `ids` of the row-major buffer `flat` (rows of
/// `dim` values) against `q`, appended to `out` in `ids` order.
pub fn dot_many(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    for &i in ids {
        out.push(dot(&flat[i * dim..i * dim + dim], q));
    }
}

/// Batch [`euclidean`] of rows `ids` of `flat` against `q` (same contract
/// as [`dot_many`]).
pub fn euclidean_many(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    for &i in ids {
        out.push(euclidean(&flat[i * dim..i * dim + dim], q));
    }
}

/// Batch [`hamming`] of packed rows `ids` of `blocks` (rows of
/// `blocks_per_row` words) against `q`, appended to `out` in `ids` order.
pub fn hamming_many(
    blocks: &[u64],
    blocks_per_row: usize,
    ids: &[usize],
    q: &[u64],
    out: &mut Vec<u64>,
) {
    for &i in ids {
        out.push(hamming(
            &blocks[i * blocks_per_row..i * blocks_per_row + blocks_per_row],
            q,
        ));
    }
}
