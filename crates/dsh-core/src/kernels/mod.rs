//! Distance kernels with one-time runtime SIMD dispatch.
//!
//! Every metric in the workspace funnels through exactly one
//! implementation per tier of the six kernels `dot` / `euclidean` /
//! `hamming` and their `_many` batch variants. The tiers:
//!
//! * **scalar** ([`scalar`]) — the blocked 4-accumulator kernels from
//!   PR 3, always compiled, on every architecture. This is the **parity
//!   oracle**: the reference semantics every other tier must reproduce
//!   bit for bit.
//! * **sse2** — x86_64 baseline, two 2×f64 accumulator registers, plus
//!   prefetching batch variants. No runtime detection needed.
//! * **avx2** — one 4×f64 accumulator register plus hardware `popcnt`
//!   for Hamming; selected when `is_x86_feature_detected!` confirms
//!   `avx2` **and** `popcnt`.
//!
//! # Dispatch model
//!
//! [`active`] resolves the tier **once per process** into a
//! `OnceLock<&'static Kernels>` — a table of plain `fn` pointers — and
//! every later call is an indirect call through that table (one
//! predictable branch, no repeated feature detection). The environment
//! variable **`DSH_FORCE_SCALAR=1`** (any value other than `0` or empty),
//! read once at dispatch initialisation, pins the scalar tier — which
//! also disables software prefetch, making it the honest no-SIMD
//! baseline for tests and `bench-report`.
//!
//! # Why f64 results are bit-identical across tiers
//!
//! The scalar oracle accumulates into four independent sums: `acc[j]`
//! receives the terms of elements `j, j + 4, j + 8, ...` in index order,
//! and the reduction is `(acc0 + acc1) + (acc2 + acc3) + tail` with the
//! tail folded left to right. The AVX2 tier keeps one 256-bit register
//! whose lane `j` performs *exactly* the additions of `acc[j]` — same
//! values, same order — using separate multiply and add instructions
//! (never FMA, which rounds once instead of twice), then extracts the
//! four lanes and reduces them in the oracle's association. The SSE2
//! tier splits the same four lanes across two 128-bit registers. IEEE-754
//! arithmetic is deterministic for a fixed sequence of operations, so
//! each tier computes the identical f64, bit for bit — asserted
//! exhaustively by `tests/kernel_parity.rs` and inside every
//! `bench-report` run. Hamming is integer and trivially exact.
//!
//! # Prefetch
//!
//! The batch kernels prefetch the candidate row a fixed distance ahead
//! of the gather walk; [`prefetch_read`] / [`prefetch_span`] expose the
//! same hint to the index layer (CSR id walks, visited-stamp probes,
//! verification row gathers). All of it compiles to nothing off x86_64
//! and is disabled at runtime on the scalar tier.

pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// Signature of the batch kernels: rows `ids` of a flat row-major
/// buffer (rows of the `usize` width) against one query row, results
/// appended to the output vector in `ids` order.
pub type ManyFn<T> = fn(&[T], usize, &[usize], &[T], &mut Vec<T>);

/// One kernel tier: a table of plain `fn` pointers, resolved once by
/// [`active`] and then called indirectly. All tiers of one process agree
/// bit-for-bit on every f64 and u64 result (see the module docs).
pub struct Kernels {
    /// Tier name (`"scalar"`, `"sse2"`, `"avx2"`) — surfaced in
    /// `BENCH_kernels.json` and handy in test diagnostics.
    pub name: &'static str,
    /// Whether the index layer's software-prefetch hints are active under
    /// this tier (false only for the scalar baseline).
    pub prefetch: bool,
    /// Inner product of two rows (lengths already validated by [`dot`]).
    pub dot: fn(&[f64], &[f64]) -> f64,
    /// Euclidean distance of two rows.
    pub euclidean: fn(&[f64], &[f64]) -> f64,
    /// Hamming distance of two packed rows.
    pub hamming: fn(&[u64], &[u64]) -> u64,
    /// Batch inner products of rows `ids` of a flat row-major buffer
    /// against one query, appended to the output in `ids` order.
    pub dot_many: ManyFn<f64>,
    /// Batch Euclidean distances (same contract as `dot_many`).
    pub euclidean_many: ManyFn<f64>,
    /// Batch Hamming distances over packed rows of `blocks_per_row`
    /// words (same contract as `dot_many`).
    pub hamming_many: ManyFn<u64>,
}

/// The always-available scalar tier (also the parity oracle).
static SCALAR: Kernels = Kernels {
    name: "scalar",
    prefetch: false,
    dot: scalar::dot,
    euclidean: scalar::euclidean,
    hamming: scalar::hamming,
    dot_many: scalar::dot_many,
    euclidean_many: scalar::euclidean_many,
    hamming_many: scalar::hamming_many,
};

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// The dispatched kernel tier, resolved once per process: the best tier
/// the CPU supports, or the scalar tier when `DSH_FORCE_SCALAR` is set.
#[inline]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(select)
}

/// One-time tier selection (the `OnceLock` initialiser; never on a hot
/// path, so the env read and feature detection are allowed to be lazy
/// library calls).
fn select() -> &'static Kernels {
    let forced = std::env::var_os("DSH_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
    if forced {
        return &SCALAR;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    {
        return &x86::AVX2;
    }
    #[cfg(target_arch = "x86_64")]
    return &x86::SSE2;
    #[cfg(not(target_arch = "x86_64"))]
    &SCALAR
}

/// Every tier runnable on this CPU, scalar oracle first, fastest last.
/// [`active`] picks the last entry unless `DSH_FORCE_SCALAR` pins the
/// first. The parity sweep and `bench-report` iterate this to check each
/// tier against the oracle directly, without respawning processes.
pub fn implementations() -> Vec<&'static Kernels> {
    let mut tiers = vec![&SCALAR];
    #[cfg(target_arch = "x86_64")]
    {
        tiers.push(&x86::SSE2);
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("popcnt")
        {
            tiers.push(&x86::AVX2);
        }
    }
    tiers
}

// ---------------------------------------------------------------------------
// Dispatched kernels — the workspace's single implementation per metric
// ---------------------------------------------------------------------------

/// Inner product of two equal-length rows (dispatched; see
/// [`scalar::dot`] for the accumulator structure all tiers share).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    // lint: allow(panic) — kernel contract: equal-length slices, guaranteed by every store row accessor
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    (active().dot)(a, b)
}

/// Euclidean distance between two equal-length rows (dispatched).
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    (active().euclidean)(a, b)
}

/// Hamming distance between two equal-length packed rows (dispatched;
/// tail bits beyond the dimension must be zero, which every
/// `BitVector`/`BitStore` constructor guarantees).
pub fn hamming(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    (active().hamming)(a, b)
}

/// Batch [`dot`] of rows `ids` of the row-major buffer `flat` (rows of
/// `dim` values) against `q`, **appended** to `out` in `ids` order
/// (callers owning the buffer clear it first).
pub fn dot_many(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    assert_eq!(q.len(), dim, "dimension mismatch");
    (active().dot_many)(flat, dim, ids, q, out);
}

/// Batch [`euclidean`] of rows `ids` of `flat` against `q` (same
/// contract as [`dot_many`]).
pub fn euclidean_many(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    assert_eq!(q.len(), dim, "dimension mismatch");
    (active().euclidean_many)(flat, dim, ids, q, out);
}

/// Batch [`hamming`] of packed rows `ids` of `blocks` (rows of
/// `blocks_per_row` words) against `q` (same contract as [`dot_many`]).
pub fn hamming_many(
    blocks: &[u64],
    blocks_per_row: usize,
    ids: &[usize],
    q: &[u64],
    out: &mut Vec<u64>,
) {
    assert_eq!(q.len(), blocks_per_row, "dimension mismatch");
    (active().hamming_many)(blocks, blocks_per_row, ids, q, out);
}

// ---------------------------------------------------------------------------
// Prefetch hints for the index layer
// ---------------------------------------------------------------------------

/// Best-effort prefetch of `data[index]` into L1. A no-op off x86_64,
/// when `index` is out of bounds, or under the scalar tier (so
/// `DSH_FORCE_SCALAR=1` really is the prefetch-free baseline).
#[inline]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if active().prefetch {
        if let Some(r) = data.get(index) {
            x86::prefetch_ptr(r as *const T);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

/// Best-effort prefetch of the span `data[start..start + len]` (up to
/// eight cache lines — one full 64-dimensional f64 row). Same gating as
/// [`prefetch_read`].
#[inline]
pub fn prefetch_span<T>(data: &[T], start: usize, len: usize) {
    #[cfg(target_arch = "x86_64")]
    if active().prefetch {
        x86::prefetch_span(data, start, len);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, start, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_tier_is_first_and_active_is_listed() {
        let tiers = implementations();
        assert_eq!(tiers[0].name, "scalar");
        assert!(!tiers[0].prefetch);
        let names: Vec<_> = tiers.iter().map(|t| t.name).collect();
        assert!(names.contains(&active().name), "active {:?}", active().name);
    }

    #[test]
    fn tiers_have_distinct_names() {
        let tiers = implementations();
        for (i, a) in tiers.iter().enumerate() {
            for b in &tiers[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn prefetch_hints_tolerate_out_of_bounds() {
        let data = [1.0f64; 8];
        prefetch_read(&data, 0);
        prefetch_read(&data, 1 << 40);
        prefetch_span(&data, 0, 8);
        prefetch_span(&data, 4, usize::MAX); // start + len overflows
        prefetch_span(&data, 9, 1);
        prefetch_span(&data, 0, 0);
    }

    #[test]
    fn dispatched_kernels_match_oracle_on_a_smoke_row() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        assert_eq!(dot(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
        assert_eq!(
            euclidean(&a, &b).to_bits(),
            scalar::euclidean(&a, &b).to_bits()
        );
        let x: Vec<u64> = (0..9)
            .map(|i| 0x9e37_79b9_7f4a_7c15u64.rotate_left(i))
            .collect();
        let y: Vec<u64> = (0..9)
            .map(|i| 0xbf58_476d_1ce4_e5b9u64.rotate_left(2 * i))
            .collect();
        assert_eq!(hamming(&x, &y), scalar::hamming(&x, &y));
    }
}
