//! x86_64 SIMD kernel tiers: AVX2 (4×f64 / popcnt) and SSE2 (baseline).
//!
//! This file is the workspace's **only** unsafe boundary — it is the one
//! module registered under `[kernel]` in `dsh-lint.toml`, and dsh-lint's
//! L5 check fails the build if an `unsafe` token appears anywhere else.
//! Three kinds of unsafe operations occur here, each `// SAFETY:`-annotated
//! (L4):
//!
//! 1. unaligned SIMD loads through raw pointers, bounded by the slice
//!    lengths computed immediately above them;
//! 2. calls to safe `#[target_feature(enable = "avx2"/"popcnt")]`
//!    functions from entry points without those static features —
//!    sound because the `AVX2` table is only handed out by
//!    `super::select`/`super::implementations` after
//!    `is_x86_feature_detected!` confirmed the features at runtime;
//! 3. `_mm_prefetch`, which performs no architectural memory access and
//!    cannot fault on any address.
//!
//! Every floating-point tier reproduces the scalar oracle's 4-accumulator
//! lane structure and reduction order exactly (see [`super::scalar`]), so
//! results are bit-identical; nothing here uses FMA, which would change
//! rounding.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_loadu_pd,
    _mm256_mul_pd, _mm256_setzero_pd, _mm256_sub_pd, _mm_add_pd, _mm_cvtsd_f64, _mm_loadu_pd,
    _mm_mul_pd, _mm_prefetch, _mm_setzero_pd, _mm_sub_pd, _mm_unpackhi_pd, _MM_HINT_T0,
};

use super::{scalar, Kernels};

/// How many candidate rows ahead of the current one the batch kernels
/// prefetch. Far enough to cover one row's distance computation times the
/// memory latency, near enough that the lines are still resident when the
/// walk arrives.
const ROW_AHEAD: usize = 8;

/// How many 64-byte lines of an upcoming row to prefetch (8 lines = a
/// full 64-dimensional f64 row; longer rows rely on the hardware streamer
/// once the walk starts touching them).
const MAX_PREFETCH_LINES: usize = 8;

/// The AVX2 tier: 4×f64 lanes for `dot`/`euclidean`, hardware `popcnt`
/// for `hamming`, prefetching batch variants. Published by dispatch only
/// after runtime detection of `avx2` **and** `popcnt`.
pub(super) static AVX2: Kernels = Kernels {
    name: "avx2",
    prefetch: true,
    dot: dot_avx2_entry,
    euclidean: euclidean_avx2_entry,
    hamming: hamming_popcnt_entry,
    dot_many: dot_many_avx2_entry,
    euclidean_many: euclidean_many_avx2_entry,
    hamming_many: hamming_many_popcnt_entry,
};

/// The SSE2 tier: 2×f64 lanes (two accumulator registers mirror scalar
/// lanes 0/1 and 2/3). SSE2 is in the x86_64 baseline, so this tier needs
/// no runtime detection; `hamming` stays on the scalar oracle because
/// baseline x86_64 has no `popcnt`.
pub(super) static SSE2: Kernels = Kernels {
    name: "sse2",
    prefetch: true,
    dot: dot_sse2_entry,
    euclidean: euclidean_sse2_entry,
    hamming: scalar::hamming,
    dot_many: dot_many_sse2_entry,
    euclidean_many: euclidean_many_sse2_entry,
    hamming_many: hamming_many_sse2,
};

// ---------------------------------------------------------------------------
// Prefetch
// ---------------------------------------------------------------------------

/// Best-effort T0 prefetch of the cache line holding `p`.
#[inline(always)]
pub(super) fn prefetch_ptr<T>(p: *const T) {
    // SAFETY: PREFETCHT0 performs no architectural memory access and does
    // not fault on any address, valid or not; it is a pure cache hint.
    unsafe { _mm_prefetch::<_MM_HINT_T0>(p as *const i8) }
}

/// Prefetch up to [`MAX_PREFETCH_LINES`] cache lines covering
/// `data[start..start + len]`; silently a no-op when the span is out of
/// bounds (prefetch is a hint, never a bounds oracle).
#[inline]
pub(super) fn prefetch_span<T>(data: &[T], start: usize, len: usize) {
    let Some(row) = start.checked_add(len).and_then(|end| data.get(start..end)) else {
        return;
    };
    let bytes = std::mem::size_of_val(row);
    let lines = bytes.div_ceil(64).min(MAX_PREFETCH_LINES);
    let base = row.as_ptr().cast::<i8>();
    for l in 0..lines {
        // `wrapping_add` keeps the last-line address computation defined
        // even when it lands past the row's final byte.
        prefetch_ptr(base.wrapping_add(l * 64));
    }
}

// ---------------------------------------------------------------------------
// AVX2 pair kernels
// ---------------------------------------------------------------------------

fn dot_avx2_entry(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: this entry is reachable only through the `AVX2` table, which
    // dispatch publishes only after runtime `avx2`+`popcnt` detection.
    unsafe { dot_avx2(a, b) }
}

fn euclidean_avx2_entry(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: this entry is reachable only through the `AVX2` table, which
    // dispatch publishes only after runtime `avx2`+`popcnt` detection.
    unsafe { euclidean_avx2(a, b) }
}

fn hamming_popcnt_entry(a: &[u64], b: &[u64]) -> u64 {
    // SAFETY: this entry is reachable only through the `AVX2` table, which
    // dispatch publishes only after runtime `avx2`+`popcnt` detection.
    unsafe { hamming_popcnt(a, b) }
}

/// Reduce a 4-lane accumulator as `(l0 + l1) + (l2 + l3)` — the scalar
/// oracle's exact association, lane `j` standing in for scalar `acc[j]`.
#[target_feature(enable = "avx2")]
fn hsum4(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd::<1>(v);
    let l0 = _mm_cvtsd_f64(lo);
    let l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
    let l2 = _mm_cvtsd_f64(hi);
    let l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
    (l0 + l1) + (l2 + l3)
}

/// AVX2 [`scalar::dot`]: one 256-bit accumulator whose lane `j` performs
/// exactly the multiply-adds of scalar `acc[j]`, separate mul + add (no
/// FMA — fusing would change rounding), identical scalar tail.
#[target_feature(enable = "avx2")]
fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut acc = _mm256_setzero_pd();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n4 <= min(a.len(), b.len()), so both unaligned
        // 4-lane loads at offset i are in bounds.
        let (va, vb) = unsafe { (_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i))) };
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        i += 4;
    }
    let mut tail = 0.0;
    for (x, y) in a[n4..n].iter().zip(&b[n4..n]) {
        tail += x * y;
    }
    hsum4(acc) + tail
}

/// AVX2 [`scalar::euclidean`] (same lane discipline as [`dot_avx2`]).
#[target_feature(enable = "avx2")]
fn euclidean_avx2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut acc = _mm256_setzero_pd();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n4 <= min(a.len(), b.len()), so both unaligned
        // 4-lane loads at offset i are in bounds.
        let (va, vb) = unsafe { (_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i))) };
        let d = _mm256_sub_pd(va, vb);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        i += 4;
    }
    let mut tail = 0.0;
    for (x, y) in a[n4..n].iter().zip(&b[n4..n]) {
        tail += (x - y) * (x - y);
    }
    (hsum4(acc) + tail).sqrt()
}

/// [`scalar::hamming`] with hardware `popcnt` (baseline x86_64 compiles
/// `count_ones` to a ~15-op bit-parallel sequence; with the feature
/// enabled it is one instruction). Integer sums are associative, so the
/// 4-way unroll is exact regardless of order.
#[target_feature(enable = "popcnt")]
fn hamming_popcnt(a: &[u64], b: &[u64]) -> u64 {
    let mut acc = [0u64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (pa, pb) in (&mut ca).zip(&mut cb) {
        acc[0] += (pa[0] ^ pb[0]).count_ones() as u64;
        acc[1] += (pa[1] ^ pb[1]).count_ones() as u64;
        acc[2] += (pa[2] ^ pb[2]).count_ones() as u64;
        acc[3] += (pa[3] ^ pb[3]).count_ones() as u64;
    }
    let mut tail = 0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += (x ^ y).count_ones() as u64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

// ---------------------------------------------------------------------------
// SSE2 pair kernels
//
// SSE2 is part of the x86_64 baseline, so these need no runtime
// detection — but rustc still requires intrinsic callers to carry the
// explicit `#[target_feature]`, hence the same entry/body split as AVX2
// with a trivially-true SAFETY argument.
// ---------------------------------------------------------------------------

fn dot_sse2_entry(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: SSE2 is in the x86_64 baseline — statically available on
    // every CPU this module compiles for.
    unsafe { dot_sse2(a, b) }
}

fn euclidean_sse2_entry(a: &[f64], b: &[f64]) -> f64 {
    // SAFETY: SSE2 is in the x86_64 baseline — statically available on
    // every CPU this module compiles for.
    unsafe { euclidean_sse2(a, b) }
}

/// SSE2 [`scalar::dot`]: two 128-bit accumulators, `acc01` lanes tracking
/// scalar `acc[0]`/`acc[1]` and `acc23` tracking `acc[2]`/`acc[3]`, with
/// the oracle's reduction order.
#[target_feature(enable = "sse2")]
fn dot_sse2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n4 <= min(a.len(), b.len()), so the 2-lane loads
        // at offsets i and i + 2 are in bounds for both slices.
        let (a01, a23) = unsafe { (_mm_loadu_pd(pa.add(i)), _mm_loadu_pd(pa.add(i + 2))) };
        // SAFETY: as above for `b`.
        let (b01, b23) = unsafe { (_mm_loadu_pd(pb.add(i)), _mm_loadu_pd(pb.add(i + 2))) };
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(a01, b01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(a23, b23));
        i += 4;
    }
    let mut tail = 0.0;
    for (x, y) in a[n4..n].iter().zip(&b[n4..n]) {
        tail += x * y;
    }
    hsum2x2(acc01, acc23) + tail
}

/// SSE2 [`scalar::euclidean`] (same lane discipline as [`dot_sse2`]).
#[target_feature(enable = "sse2")]
fn euclidean_sse2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut acc01 = _mm_setzero_pd();
    let mut acc23 = _mm_setzero_pd();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut i = 0;
    while i < n4 {
        // SAFETY: i + 4 <= n4 <= min(a.len(), b.len()), so the 2-lane loads
        // at offsets i and i + 2 are in bounds for both slices.
        let (a01, a23) = unsafe { (_mm_loadu_pd(pa.add(i)), _mm_loadu_pd(pa.add(i + 2))) };
        // SAFETY: as above for `b`.
        let (b01, b23) = unsafe { (_mm_loadu_pd(pb.add(i)), _mm_loadu_pd(pb.add(i + 2))) };
        let d01 = _mm_sub_pd(a01, b01);
        let d23 = _mm_sub_pd(a23, b23);
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
        i += 4;
    }
    let mut tail = 0.0;
    for (x, y) in a[n4..n].iter().zip(&b[n4..n]) {
        tail += (x - y) * (x - y);
    }
    (hsum2x2(acc01, acc23) + tail).sqrt()
}

/// Reduce the two-register accumulator pair as `(l0 + l1) + (l2 + l3)`.
#[target_feature(enable = "sse2")]
fn hsum2x2(acc01: core::arch::x86_64::__m128d, acc23: core::arch::x86_64::__m128d) -> f64 {
    let l0 = _mm_cvtsd_f64(acc01);
    let l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc01, acc01));
    let l2 = _mm_cvtsd_f64(acc23);
    let l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(acc23, acc23));
    (l0 + l1) + (l2 + l3)
}

// ---------------------------------------------------------------------------
// Batch kernels (row gather + prefetch-ahead)
// ---------------------------------------------------------------------------

fn dot_many_avx2_entry(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    // SAFETY: this entry is reachable only through the `AVX2` table, which
    // dispatch publishes only after runtime `avx2`+`popcnt` detection.
    unsafe { dot_many_avx2(flat, dim, ids, q, out) }
}

fn euclidean_many_avx2_entry(
    flat: &[f64],
    dim: usize,
    ids: &[usize],
    q: &[f64],
    out: &mut Vec<f64>,
) {
    // SAFETY: this entry is reachable only through the `AVX2` table, which
    // dispatch publishes only after runtime `avx2`+`popcnt` detection.
    unsafe { euclidean_many_avx2(flat, dim, ids, q, out) }
}

fn hamming_many_popcnt_entry(
    blocks: &[u64],
    blocks_per_row: usize,
    ids: &[usize],
    q: &[u64],
    out: &mut Vec<u64>,
) {
    // SAFETY: this entry is reachable only through the `AVX2` table, which
    // dispatch publishes only after runtime `avx2`+`popcnt` detection.
    unsafe { hamming_many_popcnt(blocks, blocks_per_row, ids, q, out) }
}

/// Batch [`dot_avx2`] over gathered rows, prefetching the row
/// [`ROW_AHEAD`] candidates ahead so the gather's cache misses overlap
/// the current row's arithmetic.
#[target_feature(enable = "avx2")]
fn dot_many_avx2(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    for (j, &i) in ids.iter().enumerate() {
        if let Some(&ahead) = ids.get(j + ROW_AHEAD) {
            prefetch_span(flat, ahead * dim, dim);
        }
        out.push(dot_avx2(&flat[i * dim..i * dim + dim], q));
    }
}

/// Batch [`euclidean_avx2`] over gathered rows (same prefetch discipline
/// as [`dot_many_avx2`]).
#[target_feature(enable = "avx2")]
fn euclidean_many_avx2(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    for (j, &i) in ids.iter().enumerate() {
        if let Some(&ahead) = ids.get(j + ROW_AHEAD) {
            prefetch_span(flat, ahead * dim, dim);
        }
        out.push(euclidean_avx2(&flat[i * dim..i * dim + dim], q));
    }
}

/// Batch [`hamming_popcnt`] over gathered packed rows (same prefetch
/// discipline as [`dot_many_avx2`]).
#[target_feature(enable = "popcnt")]
fn hamming_many_popcnt(
    blocks: &[u64],
    blocks_per_row: usize,
    ids: &[usize],
    q: &[u64],
    out: &mut Vec<u64>,
) {
    for (j, &i) in ids.iter().enumerate() {
        if let Some(&ahead) = ids.get(j + ROW_AHEAD) {
            prefetch_span(blocks, ahead * blocks_per_row, blocks_per_row);
        }
        out.push(hamming_popcnt(
            &blocks[i * blocks_per_row..i * blocks_per_row + blocks_per_row],
            q,
        ));
    }
}

fn dot_many_sse2_entry(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    // SAFETY: SSE2 is in the x86_64 baseline — statically available on
    // every CPU this module compiles for.
    unsafe { dot_many_sse2(flat, dim, ids, q, out) }
}

fn euclidean_many_sse2_entry(
    flat: &[f64],
    dim: usize,
    ids: &[usize],
    q: &[f64],
    out: &mut Vec<f64>,
) {
    // SAFETY: SSE2 is in the x86_64 baseline — statically available on
    // every CPU this module compiles for.
    unsafe { euclidean_many_sse2(flat, dim, ids, q, out) }
}

/// Batch [`dot_sse2`] over gathered rows (same prefetch discipline as
/// [`dot_many_avx2`]).
#[target_feature(enable = "sse2")]
fn dot_many_sse2(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    for (j, &i) in ids.iter().enumerate() {
        if let Some(&ahead) = ids.get(j + ROW_AHEAD) {
            prefetch_span(flat, ahead * dim, dim);
        }
        out.push(dot_sse2(&flat[i * dim..i * dim + dim], q));
    }
}

/// Batch [`euclidean_sse2`] over gathered rows (same prefetch discipline
/// as [`dot_many_avx2`]).
#[target_feature(enable = "sse2")]
fn euclidean_many_sse2(flat: &[f64], dim: usize, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
    for (j, &i) in ids.iter().enumerate() {
        if let Some(&ahead) = ids.get(j + ROW_AHEAD) {
            prefetch_span(flat, ahead * dim, dim);
        }
        out.push(euclidean_sse2(&flat[i * dim..i * dim + dim], q));
    }
}

/// Batch [`scalar::hamming`] over gathered packed rows with
/// prefetch-ahead (the SSE2 tier's win on Hamming is the prefetch, not
/// the popcount).
fn hamming_many_sse2(
    blocks: &[u64],
    blocks_per_row: usize,
    ids: &[usize],
    q: &[u64],
    out: &mut Vec<u64>,
) {
    for (j, &i) in ids.iter().enumerate() {
        if let Some(&ahead) = ids.get(j + ROW_AHEAD) {
            prefetch_span(blocks, ahead * blocks_per_row, blocks_per_row);
        }
        out.push(scalar::hamming(
            &blocks[i * blocks_per_row..i * blocks_per_row + blocks_per_row],
            q,
        ));
    }
}
