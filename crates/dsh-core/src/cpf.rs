//! Analytic collision probability functions and ρ-exponents.
//!
//! The paper measures the quality of a monotone CPF by its ρ-value
//! (§1.2 "ρ-values"):
//!
//! * `rho_plus  = ln f(r1) / ln f(r2)` for `r1 < r2` with a *decreasing*
//!   CPF — governs near-neighbor search;
//! * `rho_minus = ln f(r) / ln f(r/c)` with an *increasing* CPF — governs
//!   "anti" search, the gap between collision probabilities at a target
//!   distance and at too-small distances.
//!
//! Constructions that have closed-form CPFs implement [`AnalyticCpf`] so
//! tests and benchmarks can compare Monte-Carlo estimates against theory.

/// A family whose CPF has a closed form (or a numerically exact evaluation).
///
/// The meaning of the argument is construction-specific and documented by
/// each implementor: inner product `alpha` for sphere families, relative
/// Hamming distance `t` for Hamming families, Euclidean distance for
/// `R^d` families.
pub trait AnalyticCpf {
    /// Evaluate the collision probability at the given
    /// distance/similarity argument.
    fn cpf(&self, arg: f64) -> f64;
}

/// `rho_plus = ln f(r_near) / ln f(r_far)` for a decreasing CPF: the LSH
/// exponent controlling `(r_near, r_far)`-near-neighbor search. `None` when
/// either probability is degenerate.
pub fn rho_plus(f: &dyn AnalyticCpf, r_near: f64, r_far: f64) -> Option<f64> {
    dsh_math::stats::rho(f.cpf(r_near), f.cpf(r_far))
}

/// `rho_minus = ln f(r) / ln f(r_small)` for an increasing CPF: the
/// "anti-LSH" exponent of §4.1, controlling how well the family separates
/// the target distance `r` from too-small distances `r_small < r`.
pub fn rho_minus(f: &dyn AnalyticCpf, r: f64, r_small: f64) -> Option<f64> {
    dsh_math::stats::rho(f.cpf(r), f.cpf(r_small))
}

/// Evaluate a CPF on a uniform grid (used by figure-regeneration binaries).
pub fn sample_curve(f: &dyn AnalyticCpf, lo: f64, hi: f64, steps: usize) -> Vec<(f64, f64)> {
    assert!(steps >= 1);
    (0..=steps)
        .map(|i| {
            let x = lo + (hi - lo) * i as f64 / steps as f64;
            (x, f.cpf(x))
        })
        .collect()
}

/// Locate the argmax of a unimodal CPF by grid search plus ternary
/// refinement. Used to verify "peaks inside `[r-, r+]`" premises of
/// Theorem 6.1.
pub fn peak_of(f: &dyn AnalyticCpf, lo: f64, hi: f64) -> (f64, f64) {
    // Coarse grid to get near the mode, then ternary search (valid locally
    // for unimodal functions).
    let mut best_x = lo;
    let mut best_v = f.cpf(lo);
    let grid = 512;
    for i in 0..=grid {
        let x = lo + (hi - lo) * i as f64 / grid as f64;
        let v = f.cpf(x);
        if v > best_v {
            best_v = v;
            best_x = x;
        }
    }
    let w = (hi - lo) / grid as f64;
    let (mut a, mut b) = ((best_x - w).max(lo), (best_x + w).min(hi));
    for _ in 0..100 {
        let m1 = a + (b - a) / 3.0;
        let m2 = b - (b - a) / 3.0;
        if f.cpf(m1) < f.cpf(m2) {
            a = m1;
        } else {
            b = m2;
        }
    }
    let x = 0.5 * (a + b);
    (x, f.cpf(x))
}

/// The Theorem 1.3 feasibility bound for probabilistic CPFs on
/// alpha-correlated points: no family can have
/// `f^(alpha) < f^(0)^((1+alpha)/(1-alpha))`.
///
/// ```
/// # use dsh_core::cpf::theorem_1_3_lower_bound;
/// let f0 = 0.1;
/// // At alpha = 1/3 the exponent is (1+1/3)/(1-1/3) = 2:
/// assert!((theorem_1_3_lower_bound(f0, 1.0 / 3.0) - 0.01).abs() < 1e-12);
/// ```
pub fn theorem_1_3_lower_bound(f_at_zero: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&f_at_zero));
    assert!((0.0..1.0).contains(&alpha));
    f_at_zero.powf((1.0 + alpha) / (1.0 - alpha))
}

/// The Lemma 3.10 mirror bound: `f^(alpha) <= f^(0)^((1-alpha)/(1+alpha))`
/// — the asymmetric extension of classical LSH upper bounds.
pub fn lemma_3_10_upper_bound(f_at_zero: f64, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&f_at_zero));
    assert!((0.0..1.0).contains(&alpha));
    f_at_zero.powf((1.0 - alpha) / (1.0 + alpha))
}

/// The Theorem 3.8 lower bound on the rho-value of any
/// `(r, cr, p, q)`-increasingly-sensitive family under Hamming distance:
///
/// ```text
/// rho = log(1/p) / log(1/q) >= 1/(2c - 1) - O(sqrt((c/r) log(1/q)))
/// ```
///
/// Returns the bound with the paper's error term instantiated at constant
/// `K` (the proof's universal constant; callers compare measured rho
/// values against this). `r` is the absolute distance.
pub fn theorem_3_8_rho_lower_bound(c: f64, r: f64, q: f64, k_const: f64) -> f64 {
    assert!(c > 1.0 && r > 0.0);
    assert!(q > 0.0 && q < 1.0);
    (1.0 / (2.0 * c - 1.0) - k_const * ((c / r) * (1.0 / q).ln()).sqrt()).max(0.0)
}

/// An [`AnalyticCpf`] backed by a closure — convenient for combinator
/// CPFs (products, mixtures) assembled on the fly.
///
/// ```
/// # use dsh_core::cpf::{FnCpf, rho_plus};
/// let f = FnCpf(|r: f64| (-r).exp());
/// assert!((rho_plus(&f, 1.0, 2.0).unwrap() - 0.5).abs() < 1e-12);
/// ```
pub struct FnCpf<F: Fn(f64) -> f64>(pub F);

impl<F: Fn(f64) -> f64> AnalyticCpf for FnCpf<F> {
    fn cpf(&self, arg: f64) -> f64 {
        (self.0)(arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_plus_of_power_cpf() {
        // f(r) = exp(-r): rho_plus(r, cr) = r / (cr) = 1/c.
        let f = FnCpf(|r: f64| (-r).exp());
        let got = rho_plus(&f, 1.0, 2.0).unwrap();
        assert!((got - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rho_minus_of_increasing_cpf() {
        // f(t) = t on [0,1]: rho_minus(r, r/c) = ln r / ln(r/c).
        let f = FnCpf(|t: f64| t);
        let r: f64 = 0.1;
        let c: f64 = 2.0;
        let got = rho_minus(&f, r, r / c).unwrap();
        assert!((got - r.ln() / (r / c).ln()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_probabilities_give_none() {
        let f = FnCpf(|t: f64| t); // f(0) = 0, f(1) = 1
        assert!(rho_minus(&f, 0.5, 0.0).is_none());
        assert!(rho_plus(&f, 1.0, 0.5).is_none());
    }

    #[test]
    fn sample_curve_grid() {
        let f = FnCpf(|x: f64| x * x);
        let pts = sample_curve(&f, 0.0, 1.0, 4);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (0.0, 0.0));
        assert_eq!(pts[4], (1.0, 1.0));
        assert!((pts[2].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn peak_of_unimodal() {
        // Tent peaking at 0.3.
        let f = FnCpf(|x: f64| 1.0 - (x - 0.3).abs());
        let (x, v) = peak_of(&f, 0.0, 1.0);
        assert!((x - 0.3).abs() < 1e-6, "peak at {x}");
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn peak_of_monotone_is_at_boundary() {
        let f = FnCpf(|x: f64| x);
        let (x, _) = peak_of(&f, 0.0, 2.0);
        assert!((x - 2.0).abs() < 1e-6);
    }

    #[test]
    fn feasibility_bounds_bracket() {
        for alpha in [0.1, 0.4, 0.8] {
            let f0 = 0.2;
            let lo = theorem_1_3_lower_bound(f0, alpha);
            let hi = lemma_3_10_upper_bound(f0, alpha);
            assert!(lo < f0 && f0 < hi, "bounds must bracket f(0)");
            assert!(lo > 0.0 && hi < 1.0);
        }
        // alpha = 0: both collapse to f(0).
        assert_eq!(theorem_1_3_lower_bound(0.3, 0.0), 0.3);
        assert_eq!(lemma_3_10_upper_bound(0.3, 0.0), 0.3);
    }

    #[test]
    fn theorem_3_8_bound_behaviour() {
        // With a negligible error term the bound is 1/(2c-1).
        let b = theorem_3_8_rho_lower_bound(2.0, 1e12, 0.5, 1.0);
        assert!((b - 1.0 / 3.0).abs() < 1e-3);
        // Error term can make it vacuous (clamped at 0).
        assert_eq!(theorem_3_8_rho_lower_bound(2.0, 1.0, 0.01, 1.0), 0.0);
        // Larger c weakens the bound.
        assert!(
            theorem_3_8_rho_lower_bound(4.0, 1e12, 0.5, 1.0)
                < theorem_3_8_rho_lower_bound(2.0, 1e12, 0.5, 1.0)
        );
    }

    #[test]
    fn anti_bit_sampling_exceeds_theorem_3_8_bound() {
        // CPF f(t) = t (anti bit-sampling): p = r/d, q = cr/d... in the
        // increasing-sensitivity direction p = f(r), q = f(cr), rho =
        // ln(1/q)/ln(1/p)? The theorem bounds log(1/p)/log(1/q) for
        // (r, cr, p, q)-increasingly sensitive families: p at r, q at cr,
        // p < q. For f(t) = t with d = 1e6, r = 1000, c = 2:
        let d: f64 = 1e6;
        let r: f64 = 1000.0;
        let c: f64 = 2.0;
        let p = r / d;
        let q = c * r / d;
        let rho = (1.0 / p).ln() / (1.0 / q).ln();
        let bound = theorem_3_8_rho_lower_bound(c, r, q, 1.0);
        assert!(rho >= bound, "{rho} < {bound}");
    }
}
