//! Monte-Carlo estimation of collision probability functions.
//!
//! Every quantitative claim in the paper is validated by estimating
//! `Pr[h(x) = g(y)]` over freshly sampled `(h, g)` pairs and comparing
//! against the analytic CPF. Estimates carry Wilson confidence intervals
//! (from `dsh-math`) so that tests can assert statistically rather than
//! with ad-hoc tolerances.

use crate::family::DshFamily;
use crate::points::AsRow;
use dsh_math::rng::{child, derive_seed};
use dsh_math::stats::Proportion;
use rand::Rng;

/// Configuration for Monte-Carlo CPF estimation.
#[derive(Debug, Clone, Copy)]
pub struct CpfEstimator {
    /// Number of independently sampled `(h, g)` pairs.
    pub trials: u64,
    /// Master seed; every trial derives its own RNG stream.
    pub seed: u64,
    /// Confidence level for the Wilson intervals (default 0.999).
    pub confidence: f64,
}

impl CpfEstimator {
    /// Estimator with the given number of trials and master seed, at 99.9%
    /// confidence.
    pub fn new(trials: u64, seed: u64) -> Self {
        CpfEstimator {
            trials,
            seed,
            confidence: 0.999,
        }
    }

    /// Set the confidence level.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Estimate `Pr[h(x) = g(y)]` for one fixed pair of points. The
    /// family hashes rows; `x` and `y` may be owned points, row views, or
    /// raw rows (anything with [`AsRow`]).
    pub fn estimate_pair<P: ?Sized, X, Y>(
        &self,
        family: &(impl DshFamily<P> + ?Sized),
        x: &X,
        y: &Y,
    ) -> Proportion
    where
        X: AsRow<Row = P> + ?Sized,
        Y: AsRow<Row = P> + ?Sized,
    {
        let mut hits = 0u64;
        let mut rng = child(self.seed, 0);
        for _ in 0..self.trials {
            if family.sample(&mut rng).collides(x, y) {
                hits += 1;
            }
        }
        Proportion::wilson(hits, self.trials, self.confidence)
    }

    /// Estimate the CPF at several point pairs **reusing** each sampled
    /// `(h, g)` across all pairs. This is the economical way to sweep a CPF
    /// curve when sampling a function is expensive (e.g. cross-polytope
    /// rotations); estimates at different pairs share randomness but each
    /// is individually unbiased.
    pub fn estimate_curve<P: ?Sized, Q: AsRow<Row = P>>(
        &self,
        family: &(impl DshFamily<P> + ?Sized),
        pairs: &[(Q, Q)],
    ) -> Vec<Proportion> {
        let mut hits = vec![0u64; pairs.len()];
        let mut rng = child(self.seed, 0);
        for _ in 0..self.trials {
            let hp = family.sample(&mut rng);
            for (k, (x, y)) in pairs.iter().enumerate() {
                if hp.collides(x, y) {
                    hits[k] += 1;
                }
            }
        }
        hits.into_iter()
            .map(|h| Proportion::wilson(h, self.trials, self.confidence))
            .collect()
    }

    /// Estimate the *probabilistic CPF* of Definition 3.3: both the pair
    /// `(h, g)` and the point pair `(x, y)` are redrawn every trial, with
    /// `(x, y)` produced by `gen` (e.g. randomly alpha-correlated points).
    pub fn estimate_probabilistic<P: ?Sized, Q: AsRow<Row = P>, G>(
        &self,
        family: &(impl DshFamily<P> + ?Sized),
        mut gen: G,
    ) -> Proportion
    where
        G: FnMut(&mut dyn Rng) -> (Q, Q),
    {
        let mut hits = 0u64;
        for t in 0..self.trials {
            let mut rng = child(self.seed, t);
            let (x, y) = gen(&mut rng);
            if family.sample(&mut rng).collides(&x, &y) {
                hits += 1;
            }
        }
        Proportion::wilson(hits, self.trials, self.confidence)
    }
}

/// One-shot convenience wrapper around [`CpfEstimator::estimate_pair`].
pub fn estimate_collision_probability<P: ?Sized, X, Y>(
    family: &(impl DshFamily<P> + ?Sized),
    x: &X,
    y: &Y,
    trials: u64,
    seed: u64,
) -> Proportion
where
    X: AsRow<Row = P> + ?Sized,
    Y: AsRow<Row = P> + ?Sized,
{
    CpfEstimator::new(trials, seed).estimate_pair(family, x, y)
}

/// Deterministic seed for the `k`-th point of an experiment grid (helper
/// shared by benches and tests).
pub fn grid_seed(master: u64, k: usize) -> u64 {
    derive_seed(master, k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{HasherPair, SymmetricFamily};
    use rand::Rng;

    /// Family over `f64` points that collides with probability exactly `p`,
    /// independent of the points: a Bernoulli CPF.
    struct Bernoulli(f64);
    impl DshFamily<f64> for Bernoulli {
        fn sample(&self, rng: &mut dyn Rng) -> HasherPair<f64> {
            let collide = rng.random_bool(self.0);
            HasherPair::from_fns(move |_x: &f64| 0, move |_y: &f64| !collide as u64)
        }
    }

    #[test]
    fn estimate_matches_known_probability() {
        let est = CpfEstimator::new(50_000, 42).estimate_pair(&Bernoulli(0.3), &0.0, &0.0);
        assert!(est.contains(0.3), "got [{}, {}]", est.lo, est.hi);
        assert!(est.half_width() < 0.01);
    }

    #[test]
    fn estimate_is_deterministic_in_seed() {
        let a = CpfEstimator::new(1000, 7).estimate_pair(&Bernoulli(0.5), &0.0, &0.0);
        let b = CpfEstimator::new(1000, 7).estimate_pair(&Bernoulli(0.5), &0.0, &0.0);
        assert_eq!(a.successes, b.successes);
        let c = CpfEstimator::new(1000, 8).estimate_pair(&Bernoulli(0.5), &0.0, &0.0);
        assert_ne!(a.successes, c.successes, "different seeds should differ");
    }

    #[test]
    fn curve_estimation_shares_samples() {
        // A symmetric family on f64 hashing sign(x + shift) with random
        // shift in [0,1): CPF depends on the pair.
        let fam = SymmetricFamily::new("step", |rng: &mut dyn Rng| {
            let shift: f64 = rng.random();
            crate::family::FnHasher(move |x: &f64| (*x + shift >= 1.0) as u64)
        });
        let pairs = vec![(0.0, 0.0), (0.0, 1.0), (0.3, 0.7)];
        let est = CpfEstimator::new(30_000, 3).estimate_curve(&fam, &pairs);
        assert_eq!(est.len(), 3);
        // (0,0): always same side => collide with prob 1.
        assert!(est[0].estimate > 0.999);
        // (0,1): x+s < 1 always (s<1), y+s >= 1 always => never collide.
        assert!(est[1].estimate < 0.001);
        // (0.3, 0.7): differ iff shift in [0.3, 0.7) => collide w.p. 0.6.
        assert!(est[2].contains(0.6), "got {}", est[2].estimate);
    }

    #[test]
    fn probabilistic_cpf_redraws_points() {
        // Points are +-1 with equal probability; family collides iff the two
        // points are equal. Pr = 1/2.
        struct EqFam;
        impl DshFamily<i64> for EqFam {
            fn sample(&self, _rng: &mut dyn Rng) -> HasherPair<i64> {
                HasherPair::from_fns(|x: &i64| *x as u64, |y: &i64| *y as u64)
            }
        }
        let est = CpfEstimator::new(40_000, 5).estimate_probabilistic(&EqFam, |rng| {
            let x: bool = rng.random_bool(0.5);
            let y: bool = rng.random_bool(0.5);
            (x as i64, y as i64)
        });
        assert!(est.contains(0.5), "got {}", est.estimate);
    }

    #[test]
    fn grid_seed_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..50).map(|k| grid_seed(9, k)).collect();
        assert_eq!(seeds.len(), 50);
    }
}
