//! CPF combinators — Lemma 1.4 of the paper.
//!
//! Given families with CPFs `f_1, ..., f_n`:
//!
//! * [`Concat`] realizes the product CPF `f(x) = prod_i f_i(x)`
//!   (Lemma 1.4(a)); [`Power`] is the special case `f^k` ("powering",
//!   used by Theorem 6.1 to push collision probabilities below `1/n`);
//! * [`Mixture`] realizes the convex combination
//!   `f(x) = sum_i p_i f_i(x)` (Lemma 1.4(b)), the tool that assembles
//!   step-function CPFs out of unimodal ones (Figure 2);
//! * [`AlwaysCollide`] / [`NeverCollide`] are the constant CPFs `1` and
//!   `0`, from which [`affine`] derives arbitrary affine re-scalings
//!   `a * f + b` — the "scaled and biased" variations that Theorem 5.2's
//!   proof introduces for bit-sampling.

use crate::family::{BoxedDshFamily, DshFamily, HasherPair};
use crate::hash::{combine, combine_iter};
use crate::points::AsRow;
use rand::Rng;

/// Concatenation (Lemma 1.4(a)): collides iff all parts collide, so the
/// CPF is the product of the parts' CPFs.
///
/// ```
/// use dsh_core::combinators::{AlwaysCollide, Concat, NeverCollide};
/// use dsh_core::family::DshFamily;
///
/// // 1 * 0 = 0: concatenating with NeverCollide kills every collision.
/// let fam: Concat<u64> = Concat::new(vec![
///     Box::new(AlwaysCollide),
///     Box::new(NeverCollide),
/// ]);
/// let mut rng = dsh_math::rng::seeded(7);
/// assert!(!fam.sample(&mut rng).collides(&1u64, &1u64));
/// ```
pub struct Concat<P: ?Sized> {
    parts: Vec<BoxedDshFamily<P>>,
}

impl<P: ?Sized> Concat<P> {
    /// Build from the constituent families. Panics if empty.
    pub fn new(parts: Vec<BoxedDshFamily<P>>) -> Self {
        assert!(!parts.is_empty(), "Concat requires at least one part");
        Concat { parts }
    }

    /// Number of constituent families.
    pub fn arity(&self) -> usize {
        self.parts.len()
    }
}

impl<P: ?Sized + 'static> DshFamily<P> for Concat<P> {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        let pairs: Vec<HasherPair<P>> = self.parts.iter().map(|f| f.sample(rng)).collect();
        let data_parts: Vec<_> = pairs.iter().map(|p| p.data.clone()).collect();
        let query_parts: Vec<_> = pairs.iter().map(|p| p.query.clone()).collect();
        HasherPair::from_fns(
            move |x: &P| combine_iter(data_parts.iter().map(|h| h.hash(x))),
            move |y: &P| combine_iter(query_parts.iter().map(|g| g.hash(y))),
        )
    }

    fn name(&self) -> String {
        format!(
            "Concat[{}]",
            self.parts
                .iter()
                .map(|p| DshFamily::name(p))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Powering (Lemma 1.4(a) with a single family): CPF `f^k`.
pub struct Power<F> {
    family: F,
    k: usize,
}

impl<F> Power<F> {
    /// `k`-fold concatenation of `family` with itself. Panics if `k == 0`.
    pub fn new(family: F, k: usize) -> Self {
        assert!(k >= 1, "Power requires k >= 1");
        Power { family, k }
    }

    /// The exponent `k`.
    pub fn exponent(&self) -> usize {
        self.k
    }
}

impl<P: ?Sized + 'static, F: DshFamily<P>> DshFamily<P> for Power<F> {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        let pairs: Vec<HasherPair<P>> = (0..self.k).map(|_| self.family.sample(rng)).collect();
        let data_parts: Vec<_> = pairs.iter().map(|p| p.data.clone()).collect();
        let query_parts: Vec<_> = pairs.iter().map(|p| p.query.clone()).collect();
        HasherPair::from_fns(
            move |x: &P| combine_iter(data_parts.iter().map(|h| h.hash(x))),
            move |y: &P| combine_iter(query_parts.iter().map(|g| g.hash(y))),
        )
    }

    fn name(&self) -> String {
        format!("{}^{}", self.family.name(), self.k)
    }
}

/// Mixture (Lemma 1.4(b)): sample family `i` with probability `p_i` and tag
/// hash values with `i`, so the CPF is `sum_i p_i f_i(x)`.
pub struct Mixture<P: ?Sized> {
    items: Vec<(f64, BoxedDshFamily<P>)>,
}

impl<P: ?Sized> Mixture<P> {
    /// Build from `(probability, family)` pairs. Probabilities must be
    /// nonnegative and sum to 1 (within 1e-9).
    pub fn new(items: Vec<(f64, BoxedDshFamily<P>)>) -> Self {
        assert!(!items.is_empty(), "Mixture requires at least one item");
        assert!(
            items.iter().all(|(p, _)| *p >= 0.0),
            "mixture weights must be nonnegative"
        );
        let total: f64 = items.iter().map(|(p, _)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "mixture weights must sum to 1, got {total}"
        );
        Mixture { items }
    }

    /// Number of mixture components.
    pub fn arity(&self) -> usize {
        self.items.len()
    }
}

impl<P: ?Sized + 'static> DshFamily<P> for Mixture<P> {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        let mut chosen = self.items.len() - 1;
        for (i, (p, _)) in self.items.iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = i;
                break;
            }
        }
        let inner = self.items[chosen].1.sample(rng);
        let tag = chosen as u64;
        let (d, q) = (inner.data, inner.query);
        HasherPair::from_fns(
            move |x: &P| combine(tag, d.hash(x)),
            move |y: &P| combine(tag, q.hash(y)),
        )
    }

    fn name(&self) -> String {
        format!(
            "Mixture[{}]",
            self.items
                .iter()
                .map(|(p, f)| format!("{:.3}*{}", p, f.name()))
                .collect::<Vec<_>>()
                .join(" + ")
        )
    }
}

/// The constant CPF `f = 1`: every pair of points collides.
pub struct AlwaysCollide;

impl<P: ?Sized + 'static> DshFamily<P> for AlwaysCollide {
    fn sample(&self, _rng: &mut dyn Rng) -> HasherPair<P> {
        HasherPair::from_fns(|_x: &P| 0, |_y: &P| 0)
    }
    fn name(&self) -> String {
        "Always".into()
    }
}

/// The constant CPF `f = 0`: no pair of points ever collides (`h` and `g`
/// have disjoint ranges, like the `m+1` / `m+2` sentinel values in the
/// paper's filter construction).
pub struct NeverCollide;

impl<P: ?Sized + 'static> DshFamily<P> for NeverCollide {
    fn sample(&self, _rng: &mut dyn Rng) -> HasherPair<P> {
        HasherPair::from_fns(|_x: &P| 0, |_y: &P| 1)
    }
    fn name(&self) -> String {
        "Never".into()
    }
}

/// Affine CPF rescaling: from a family with CPF `f`, build one with CPF
/// `a * f + b` (requires `a, b >= 0`, `a + b <= 1`). Realized as the
/// mixture `a * f + b * Always + (1 - a - b) * Never`.
pub fn affine<P: ?Sized + 'static>(family: BoxedDshFamily<P>, a: f64, b: f64) -> Mixture<P> {
    assert!(
        a >= 0.0 && b >= 0.0 && a + b <= 1.0 + 1e-12,
        "invalid affine map ({a}, {b})"
    );
    let rest = (1.0 - a - b).max(0.0);
    Mixture::new(vec![
        (a, family),
        (b, Box::new(AlwaysCollide)),
        (rest, Box::new(NeverCollide)),
    ])
}

/// CPF scaling `gamma * f` (Lemma 1.4(b) with a [`NeverCollide`] pad).
pub fn scaled<P: ?Sized + 'static>(family: BoxedDshFamily<P>, gamma: f64) -> Mixture<P> {
    affine(family, gamma, 0.0)
}

/// Precompose a family with a point transformation: if `inner` is a family
/// over `Q` with CPF `f(dist_Q)`, then `MapPoints` is a family over `P`
/// whose CPF at `(x, y)` is `f(dist_Q(map(x), map(y)))`.
///
/// This is how the paper transfers constructions between spaces: the
/// hypercube-corner embedding `{0,1}^d -> S^{d-1}` (§4.1's comparison of
/// anti bit-sampling with sphere constructions) and Valiant's polynomial
/// embeddings (Theorem 5.1) are both instances.
pub struct MapPoints<F, M> {
    inner: F,
    map: std::sync::Arc<M>,
    label: String,
}

impl<F, M> MapPoints<F, M> {
    /// Compose `inner` with `map` (applied to both data and query points).
    pub fn new(label: impl Into<String>, inner: F, map: M) -> Self {
        MapPoints {
            inner,
            map: std::sync::Arc::new(map),
            label: label.into(),
        }
    }
}

/// `MapPoints` with distinct data-side and query-side transformations —
/// the fully asymmetric version needed by Valiant's pair of embeddings
/// `phi_1, phi_2` (Theorem 5.1).
pub struct MapPointsAsym<F, M1, M2> {
    inner: F,
    map_data: std::sync::Arc<M1>,
    map_query: std::sync::Arc<M2>,
    label: String,
}

impl<F, M1, M2> MapPointsAsym<F, M1, M2> {
    /// Compose `inner` with `map_data` on the data side and `map_query` on
    /// the query side.
    pub fn new(label: impl Into<String>, inner: F, map_data: M1, map_query: M2) -> Self {
        MapPointsAsym {
            inner,
            map_data: std::sync::Arc::new(map_data),
            map_query: std::sync::Arc::new(map_query),
            label: label.into(),
        }
    }
}

impl<P, Q, F, M> DshFamily<P> for MapPoints<F, M>
where
    P: ?Sized + 'static,
    Q: AsRow + 'static,
    F: DshFamily<Q::Row>,
    M: Fn(&P) -> Q + Send + Sync + 'static,
{
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        let pair = self.inner.sample(rng);
        let (d, q) = (pair.data, pair.query);
        let md = self.map.clone();
        let mq = self.map.clone();
        HasherPair::from_fns(
            move |x: &P| d.hash(md(x).as_row()),
            move |y: &P| q.hash(mq(y).as_row()),
        )
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

impl<P, Q, F, M1, M2> DshFamily<P> for MapPointsAsym<F, M1, M2>
where
    P: ?Sized + 'static,
    Q: AsRow + 'static,
    F: DshFamily<Q::Row>,
    M1: Fn(&P) -> Q + Send + Sync + 'static,
    M2: Fn(&P) -> Q + Send + Sync + 'static,
{
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<P> {
        let pair = self.inner.sample(rng);
        let (d, q) = (pair.data, pair.query);
        let md = self.map_data.clone();
        let mq = self.map_query.clone();
        HasherPair::from_fns(
            move |x: &P| d.hash(md(x).as_row()),
            move |y: &P| q.hash(mq(y).as_row()),
        )
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::CpfEstimator;
    use crate::family::SymmetricFamily;
    use crate::points::BitVector;

    /// Bit-sampling on `{0,1}^d` rows: CPF `1 - t` in relative Hamming
    /// distance.
    fn bit_sampling(d: usize) -> impl DshFamily<[u64]> {
        SymmetricFamily::new("bits", move |rng: &mut dyn Rng| {
            let i = rng.random_range(0..d);
            crate::family::FnHasher(move |x: &[u64]| crate::points::get_bit(x, i) as u64)
        })
    }

    fn test_points(d: usize, dist: usize) -> (BitVector, BitVector) {
        let x = BitVector::zeros(d);
        let mut y = BitVector::zeros(d);
        for i in 0..dist {
            y.set(i, true);
        }
        (x, y)
    }

    #[test]
    fn concat_multiplies_cpfs() {
        let d = 100;
        let fam = Concat::new(vec![Box::new(bit_sampling(d)), Box::new(bit_sampling(d))]);
        let (x, y) = test_points(d, 30); // f = 0.7 each, product 0.49
        let est = CpfEstimator::new(40_000, 1234).estimate_pair(&fam, &x, &y);
        assert!(
            est.contains(0.49),
            "got {} in [{},{}]",
            est.estimate,
            est.lo,
            est.hi
        );
    }

    #[test]
    fn power_exponentiates() {
        let d = 100;
        let fam = Power::new(bit_sampling(d), 3);
        let (x, y) = test_points(d, 20); // 0.8^3 = 0.512
        let est = CpfEstimator::new(40_000, 99).estimate_pair(&fam, &x, &y);
        assert!(est.contains(0.8f64.powi(3)), "got {}", est.estimate);
        assert_eq!(fam.exponent(), 3);
    }

    #[test]
    fn mixture_averages() {
        let d = 100;
        let fam = Mixture::new(vec![
            (0.5, Box::new(bit_sampling(d)) as BoxedDshFamily<[u64]>),
            (0.5, Box::new(NeverCollide)),
        ]);
        let (x, y) = test_points(d, 40); // 0.5 * 0.6 = 0.3
        let est = CpfEstimator::new(40_000, 7).estimate_pair(&fam, &x, &y);
        assert!(est.contains(0.3), "got {}", est.estimate);
    }

    #[test]
    fn always_and_never() {
        let d = 10;
        let (x, y) = test_points(d, 5);
        let mut rng = dsh_math::rng::seeded(1);
        let a = DshFamily::<[u64]>::sample(&AlwaysCollide, &mut rng);
        assert!(a.collides(&x, &y));
        assert!(a.collides(&x, &x));
        let n = DshFamily::<[u64]>::sample(&NeverCollide, &mut rng);
        assert!(!n.collides(&x, &y));
        assert!(
            !n.collides(&x, &x),
            "NeverCollide must not collide even at distance 0"
        );
    }

    #[test]
    fn affine_rescales_cpf() {
        let d = 100;
        // CPF = 0.5 * (1 - t) + 0.25.
        let fam = affine(Box::new(bit_sampling(d)), 0.5, 0.25);
        let (x, y) = test_points(d, 60); // 0.5*0.4 + 0.25 = 0.45
        let est = CpfEstimator::new(40_000, 11).estimate_pair(&fam, &x, &y);
        assert!(est.contains(0.45), "got {}", est.estimate);
    }

    #[test]
    fn scaled_shrinks_cpf() {
        let d = 50;
        let fam = scaled(Box::new(bit_sampling(d)), 0.1);
        let (x, y) = test_points(d, 0); // 0.1 * 1.0
        let est = CpfEstimator::new(40_000, 13).estimate_pair(&fam, &x, &y);
        assert!(est.contains(0.1), "got {}", est.estimate);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn mixture_rejects_bad_weights() {
        let _ = Mixture::<[u64]>::new(vec![
            (0.5, Box::new(AlwaysCollide) as BoxedDshFamily<[u64]>),
            (0.2, Box::new(NeverCollide)),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn concat_rejects_empty() {
        let _ = Concat::<[u64]>::new(vec![]);
    }

    #[test]
    fn names_are_descriptive() {
        let d = 10;
        let c = Concat::new(vec![
            Box::new(bit_sampling(d)) as BoxedDshFamily<[u64]>,
            Box::new(AlwaysCollide),
        ]);
        assert_eq!(c.name(), "Concat[bits, Always]");
        assert_eq!(c.arity(), 2);
        let p = Power::new(bit_sampling(d), 4);
        assert_eq!(DshFamily::<[u64]>::name(&p), "bits^4");
    }
}
