//! 64-bit hash-value plumbing.
//!
//! Every [`crate::family::PointHasher`] emits a `u64`. Composite hashers
//! (concatenation, mixtures) fold several values into one with a strong
//! 64-bit mixer; the induced spurious collision probability is `2^-64`,
//! which is negligible against the `>= 1e-7` resolution of any Monte-Carlo
//! CPF estimate and against every collision probability the paper works
//! with.

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold `value` into an accumulator (order-sensitive, like a tiny
/// Merkle–Damgård chain over mix64).
#[inline]
pub fn combine(acc: u64, value: u64) -> u64 {
    mix64(acc.rotate_left(23) ^ value.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Hash a slice of 64-bit hash values into one.
pub fn combine_all(values: &[u64]) -> u64 {
    combine_iter(values.iter().copied())
}

/// [`combine_all`] over an iterator: identical fold (same IV, same
/// order-sensitive chain) without materializing a slice. This is the
/// allocation-free form the hash-evaluation hot paths (`Concat`, `Power`)
/// use — one `Power<_, k>` evaluation used to build a `Vec` of `k` words
/// per point per table.
pub fn combine_iter(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3; // pi digits, arbitrary nonzero IV
    for v in values {
        acc = combine(acc, v);
    }
    acc
}

/// Truncate a 64-bit hash to `bits` bits (used by the privacy protocol to
/// model `O(log t)`-bit digests).
#[inline]
pub fn truncate(h: u64, bits: u32) -> u64 {
    assert!((1..=64).contains(&bits));
    if bits == 64 {
        h
    } else {
        h & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_sample() {
        let mut outs: Vec<u64> = (0..10_000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit flips roughly half the output bits.
        let mut total = 0u32;
        let n = 1000;
        for i in 0..n {
            let a = mix64(i);
            let b = mix64(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / n as f64;
        assert!((avg - 32.0).abs() < 2.0, "avalanche avg {avg}");
    }

    #[test]
    fn combine_is_order_sensitive() {
        let ab = combine(combine(0, 1), 2);
        let ba = combine(combine(0, 2), 1);
        assert_ne!(ab, ba);
    }

    #[test]
    fn combine_all_matches_fold() {
        let vs = [7u64, 13, 42, 0, u64::MAX];
        let mut acc = 0x243F_6A88_85A3_08D3;
        for &v in &vs {
            acc = combine(acc, v);
        }
        assert_eq!(combine_all(&vs), acc);
    }

    #[test]
    fn combine_all_distinguishes_lengths() {
        assert_ne!(combine_all(&[]), combine_all(&[0]));
        assert_ne!(combine_all(&[0]), combine_all(&[0, 0]));
    }

    #[test]
    fn truncate_masks() {
        assert_eq!(truncate(0xFFFF_FFFF_FFFF_FFFF, 8), 0xFF);
        assert_eq!(truncate(0x1234, 64), 0x1234);
        assert_eq!(truncate(0b1011, 2), 0b11);
    }

    #[test]
    #[should_panic]
    fn truncate_zero_bits_panics() {
        let _ = truncate(1, 0);
    }
}
