//! Min-wise hashing over token sets (Broder \[15, 16\] in the paper's
//! bibliography) — the classical symmetric LSH for Jaccard similarity,
//! and the mechanism §1.2 cites for converting locality-sensitive *maps*
//! into asymmetric LSH families ([21, Theorem 1.4]).
//!
//! Included in the core crate both as a stock symmetric family for the
//! combinator algebra (its CPF `J(x, y)` composes with Lemma 1.4 like any
//! other) and as the substrate for the filter-set transform implemented
//! in `dsh-sphere::filter_minhash`.

use crate::family::{DshFamily, HasherPair};
use crate::hash::mix64;
use crate::points::AsRow;
use rand::Rng;

/// A set of 64-bit tokens (e.g. shingle fingerprints of a document),
/// stored sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TokenSet {
    tokens: Vec<u64>,
}

impl TokenSet {
    /// Build from arbitrary tokens (sorted + deduplicated internally).
    pub fn new(mut tokens: Vec<u64>) -> Self {
        tokens.sort_unstable();
        tokens.dedup();
        TokenSet { tokens }
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Sorted token view.
    pub fn tokens(&self) -> &[u64] {
        &self.tokens
    }

    /// Intersection size with another set (linear merge).
    pub fn intersection_size(&self, other: &TokenSet) -> usize {
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < self.tokens.len() && j < other.tokens.len() {
            match self.tokens[i].cmp(&other.tokens[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Jaccard similarity `|x ∩ y| / |x ∪ y|` (1 for two empty sets).
    pub fn jaccard(&self, other: &TokenSet) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Character `w`-shingles of a string, fingerprinted to tokens — the
    /// document model of Broder's resemblance work.
    pub fn shingles(text: &str, w: usize) -> Self {
        assert!(w >= 1);
        let chars: Vec<char> = text.chars().collect();
        if chars.len() < w {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for c in &chars {
                h = mix64(h ^ *c as u64);
            }
            return TokenSet::new(if chars.is_empty() { vec![] } else { vec![h] });
        }
        let tokens = chars
            .windows(w)
            .map(|win| {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for c in win {
                    h = mix64(h ^ *c as u64);
                }
                h
            })
            .collect();
        TokenSet::new(tokens)
    }
}

impl AsRow for TokenSet {
    /// Token sets are their own row: there is no flat multi-set store, so
    /// hashing and estimation operate on the owned representation.
    type Row = TokenSet;
    fn as_row(&self) -> &TokenSet {
        self
    }
}

/// Min-wise hashing: a random priority function over tokens; a set hashes
/// to its minimum-priority token. Symmetric CPF = Jaccard similarity.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinHash;

impl MinHash {
    /// The family (stateless; all randomness is drawn at sampling time).
    pub fn new() -> Self {
        MinHash
    }
}

impl DshFamily<TokenSet> for MinHash {
    fn sample(&self, rng: &mut dyn Rng) -> HasherPair<TokenSet> {
        let seed = rng.next_u64();
        HasherPair::symmetric(crate::family::FnHasher(move |x: &TokenSet| {
            x.tokens()
                .iter()
                .map(|&t| mix64(t ^ seed))
                .min()
                .unwrap_or(u64::MAX) // empty set: a fixed sentinel
        }))
    }

    fn name(&self) -> String {
        "MinHash".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::Power;
    use crate::estimate::CpfEstimator;
    use dsh_math::rng::seeded;

    fn set(v: &[u64]) -> TokenSet {
        TokenSet::new(v.to_vec())
    }

    #[test]
    fn token_set_basics() {
        let s = TokenSet::new(vec![3, 1, 2, 3, 1]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.tokens(), &[1, 2, 3]);
        assert!(!s.is_empty());
        assert!(TokenSet::new(vec![]).is_empty());
    }

    #[test]
    fn jaccard_values() {
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[3, 4, 5, 6]);
        assert_eq!(a.intersection_size(&b), 2);
        assert!((a.jaccard(&b) - 2.0 / 6.0).abs() < 1e-15);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(set(&[]).jaccard(&set(&[])), 1.0);
        assert_eq!(set(&[1]).jaccard(&set(&[2])), 0.0);
    }

    #[test]
    fn minhash_cpf_is_jaccard() {
        let a = set(&[1, 2, 3, 4, 5, 6]);
        let b = set(&[4, 5, 6, 7, 8, 9]);
        let want = a.jaccard(&b); // 3/9 = 1/3
        let est = CpfEstimator::new(60_000, 0x111).estimate_pair(&MinHash::new(), &a, &b);
        assert!(est.contains(want), "want {want}, got {}", est.estimate);
    }

    #[test]
    fn minhash_powers_compose() {
        // Lemma 1.4(a): MinHash^2 has CPF J^2.
        let a = set(&[1, 2, 3, 4]);
        let b = set(&[2, 3, 4, 5]);
        let want = a.jaccard(&b).powi(2); // (3/5)^2
        let fam = Power::new(MinHash::new(), 2);
        let est = CpfEstimator::new(60_000, 0x112).estimate_pair(&fam, &a, &b);
        assert!(est.contains(want), "want {want}, got {}", est.estimate);
    }

    #[test]
    fn shingles_similarity_tracks_text_overlap() {
        let doc1 = TokenSet::shingles("the quick brown fox jumps over the lazy dog", 4);
        let doc2 = TokenSet::shingles("the quick brown fox leaps over the lazy dog", 4);
        let doc3 = TokenSet::shingles("completely unrelated text about databases", 4);
        assert!(doc1.jaccard(&doc2) > 0.5, "{}", doc1.jaccard(&doc2));
        assert!(doc1.jaccard(&doc3) < 0.1, "{}", doc1.jaccard(&doc3));
        // Short strings degrade gracefully.
        assert_eq!(TokenSet::shingles("ab", 4).len(), 1);
        assert!(TokenSet::shingles("", 4).is_empty());
    }

    #[test]
    fn empty_sets_collide_with_each_other() {
        let fam = MinHash::new();
        let mut rng = seeded(0x113);
        let e1 = TokenSet::new(vec![]);
        let e2 = TokenSet::new(vec![]);
        let pair = fam.sample(&mut rng);
        assert!(pair.collides(&e1, &e2));
    }
}

// Property-style tests over randomized inputs (seeded, so deterministic).
// These replace `proptest!` blocks: the crate is built offline and
// proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use dsh_math::rng::seeded;
    use rand::rngs::StdRng;

    fn random_tokens(rng: &mut StdRng, max_token: u64, max_len: usize) -> Vec<u64> {
        let len = rng.random_range(0..max_len);
        (0..len).map(|_| rng.random_range(0..max_token)).collect()
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded() {
        let mut rng = seeded(0x3AC);
        for _ in 0..256 {
            let x = TokenSet::new(random_tokens(&mut rng, 50, 30));
            let y = TokenSet::new(random_tokens(&mut rng, 50, 30));
            let j = x.jaccard(&y);
            assert!((0.0..=1.0).contains(&j));
            assert!((j - y.jaccard(&x)).abs() < 1e-15);
            assert_eq!(x.jaccard(&x), 1.0);
        }
    }

    #[test]
    fn intersection_bounded_by_sizes() {
        let mut rng = seeded(0x3AD);
        for _ in 0..256 {
            let x = TokenSet::new(random_tokens(&mut rng, u64::MAX, 30));
            let y = TokenSet::new(random_tokens(&mut rng, u64::MAX, 30));
            let i = x.intersection_size(&y);
            assert!(i <= x.len().min(y.len()));
        }
    }
}
