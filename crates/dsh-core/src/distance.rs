//! Distance and similarity measures, and the conversions between them.
//!
//! The paper states sphere results in terms of the inner product
//! `alpha = <x, y>` (equivalent to cosine similarity on `S^{d-1}`), Hamming
//! results in terms of absolute/relative Hamming distance or the similarity
//! `simH(x, y) = 1 - 2 ||x - y||_1 / d` (§3), and Euclidean results in
//! terms of `||x - y||_2`. These are all in 1-1 correspondence on the
//! relevant domains; this module centralizes the conversions so that each
//! construction can state its CPF in the paper's native parameterization.
//!
//! The point-pair measures here are thin names over the owned-point
//! methods, which in turn call the runtime-dispatched kernels in
//! [`crate::kernels`] — one implementation per metric in the workspace,
//! SIMD-accelerated where the CPU supports it.

use crate::points::{BitVector, DenseVector};

/// Inner product `<x, y>`.
pub fn inner_product(x: &DenseVector, y: &DenseVector) -> f64 {
    x.dot(y)
}

/// Euclidean distance `||x - y||_2`.
pub fn euclidean_distance(x: &DenseVector, y: &DenseVector) -> f64 {
    x.euclidean(y)
}

/// Angular distance: the angle between unit vectors, in radians.
pub fn angular_distance(x: &DenseVector, y: &DenseVector) -> f64 {
    x.dot(y).clamp(-1.0, 1.0).acos()
}

/// Absolute Hamming distance.
pub fn hamming_distance(x: &BitVector, y: &BitVector) -> u64 {
    x.hamming(y)
}

/// Relative Hamming distance in `[0, 1]`.
pub fn relative_hamming(x: &BitVector, y: &BitVector) -> f64 {
    x.relative_hamming(y)
}

/// The Hamming similarity of §3: `simH(x, y) = 1 - 2 ||x - y||_1 / d`,
/// ranging over `[-1, 1]`. Coincides with the inner product of the
/// hypercube-corner embeddings.
pub fn sim_h(x: &BitVector, y: &BitVector) -> f64 {
    1.0 - 2.0 * x.relative_hamming(y)
}

/// Inner product on the unit sphere -> Euclidean distance:
/// `tau = sqrt(2 (1 - alpha))` (paper footnote 1).
pub fn alpha_to_euclidean(alpha: f64) -> f64 {
    assert!((-1.0..=1.0).contains(&alpha), "alpha must be in [-1,1]");
    (2.0 * (1.0 - alpha)).sqrt()
}

/// Euclidean distance between unit vectors -> inner product:
/// `alpha = 1 - tau^2 / 2`.
pub fn euclidean_to_alpha(tau: f64) -> f64 {
    assert!(
        (0.0..=2.0).contains(&tau),
        "unit-sphere distances lie in [0,2]"
    );
    1.0 - tau * tau / 2.0
}

/// Inner product -> angular distance `theta = arccos(alpha)`.
pub fn alpha_to_angle(alpha: f64) -> f64 {
    alpha.clamp(-1.0, 1.0).acos()
}

/// Relative Hamming distance -> simH similarity.
pub fn relative_hamming_to_sim(t: f64) -> f64 {
    assert!((0.0..=1.0).contains(&t));
    1.0 - 2.0 * t
}

/// simH similarity -> relative Hamming distance.
pub fn sim_to_relative_hamming(alpha: f64) -> f64 {
    assert!((-1.0..=1.0).contains(&alpha));
    (1.0 - alpha) / 2.0
}

/// The map `a(alpha) = (1 - alpha) / (1 + alpha)` that appears throughout
/// the paper's sphere bounds (Theorems 1.2, 1.3, 6.2). Strictly decreasing
/// on `(-1, 1]`, with `a(0) = 1`.
pub fn alpha_ratio(alpha: f64) -> f64 {
    assert!(alpha > -1.0 && alpha <= 1.0, "alpha must be in (-1, 1]");
    (1.0 - alpha) / (1.0 + alpha)
}

/// Inverse of [`alpha_ratio`]: `alpha = (1 - a) / (1 + a)` for `a >= 0`.
pub fn alpha_from_ratio(a: f64) -> f64 {
    assert!(a >= 0.0);
    (1.0 - a) / (1.0 + a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn alpha_euclidean_roundtrip() {
        for &alpha in &[-1.0, -0.4, 0.0, 0.3, 0.99, 1.0] {
            let tau = alpha_to_euclidean(alpha);
            assert!((euclidean_to_alpha(tau) - alpha).abs() < 1e-12);
        }
        assert_eq!(alpha_to_euclidean(1.0), 0.0);
        assert_eq!(alpha_to_euclidean(-1.0), 2.0);
    }

    #[test]
    fn alpha_euclidean_consistent_with_vectors() {
        let mut rng = seeded(8);
        let x = DenseVector::random_unit(&mut rng, 40);
        let y = DenseVector::random_unit(&mut rng, 40);
        let alpha = inner_product(&x, &y);
        let tau = euclidean_distance(&x, &y);
        assert!((alpha_to_euclidean(alpha) - tau).abs() < 1e-10);
    }

    #[test]
    fn sim_h_matches_embedding_inner_product() {
        let mut rng = seeded(9);
        let x = BitVector::random(&mut rng, 96);
        let y = BitVector::random(&mut rng, 96);
        let s = sim_h(&x, &y);
        let ip = x.to_unit_vector().dot(&y.to_unit_vector());
        assert!((s - ip).abs() < 1e-12);
    }

    #[test]
    fn sim_relative_roundtrip() {
        for &t in &[0.0, 0.25, 0.5, 1.0] {
            assert!((sim_to_relative_hamming(relative_hamming_to_sim(t)) - t).abs() < 1e-15);
        }
        assert_eq!(relative_hamming_to_sim(0.0), 1.0);
        assert_eq!(relative_hamming_to_sim(1.0), -1.0);
    }

    #[test]
    fn alpha_ratio_properties() {
        assert_eq!(alpha_ratio(0.0), 1.0);
        assert_eq!(alpha_ratio(1.0), 0.0);
        assert!(alpha_ratio(-0.5) > 1.0);
        // Decreasing.
        assert!(alpha_ratio(0.2) > alpha_ratio(0.5));
        for &a in &[0.0, 0.3, 1.0, 4.0] {
            assert!((alpha_ratio(alpha_from_ratio(a)) - a).abs() < 1e-12);
        }
    }

    #[test]
    fn angular_distance_basics() {
        let e1 = DenseVector::new(vec![1.0, 0.0]);
        let e2 = DenseVector::new(vec![0.0, 1.0]);
        assert!((angular_distance(&e1, &e2) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(angular_distance(&e1, &e1).abs() < 1e-6);
        assert!((angular_distance(&e1, &e1.negated()) - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn free_function_wrappers() {
        let x = BitVector::from_bools(&[true, false, true, true]);
        let y = BitVector::from_bools(&[true, true, false, true]);
        assert_eq!(hamming_distance(&x, &y), 2);
        assert!((relative_hamming(&x, &y) - 0.5).abs() < 1e-15);
        assert!((sim_h(&x, &y) - 0.0).abs() < 1e-15);
    }
}
