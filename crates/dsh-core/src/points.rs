//! Point types and the flat point-storage layer.
//!
//! Two owned point types — packed [`BitVector`] for Hamming space
//! `{0,1}^d` and [`DenseVector`] for `R^d` / the unit sphere `S^{d-1}` —
//! plus the contiguous stores the index substrate is built on:
//!
//! * slice **kernels** ([`dot`], [`euclidean`], [`hamming`]) operating on
//!   raw rows (`[f64]` / `[u64]`), with blocked batch variants
//!   ([`DenseStore::dot_many`], [`BitStore::hamming_many`]) that verify a
//!   whole candidate list against contiguous rows in one pass;
//! * the [`AsRow`] bridge from owned points to their borrowed row type;
//! * the [`PointStore`] trait over row-addressable point collections, with
//!   [`DenseStore`] (row-major `Vec<f64>`) and [`BitStore`] (contiguous
//!   `Vec<u64>` blocks) as the flat implementations and `Vec<P>` kept as
//!   the pointer-per-point compatibility implementation;
//! * the [`AppendStore`] extension for stores that grow one row at a
//!   time — the contract the mutable (segmented) index layer builds on;
//! * the snapshot-friendly [`ChunkedStore`] wrapper: frozen `Arc`-shared
//!   chunks plus a small mutable tail, so cloning a store for an
//!   immutable snapshot costs the tail, not the dataset — the storage
//!   contract of the concurrent sharded serving layer;
//! * zero-copy row views [`DenseRef`] / [`BitRef`] carrying the dimension
//!   for ergonomic distance evaluation.

use rand::Rng;
use std::sync::Arc;

/// A point of `{0,1}^d`, bit-packed into 64-bit blocks.
///
/// ```
/// use dsh_core::points::BitVector;
/// let mut x = BitVector::zeros(100);
/// x.set(3, true);
/// x.flip(99);
/// let y = BitVector::zeros(100);
/// assert_eq!(x.hamming(&y), 2);
/// assert!((x.relative_hamming(&y) - 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVector {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVector {
    /// The all-zeros vector of dimension `d`.
    pub fn zeros(d: usize) -> Self {
        BitVector {
            blocks: vec![0; d.div_ceil(64)],
            len: d,
        }
    }

    /// The all-ones vector of dimension `d`: whole blocks filled with
    /// `!0`, tail bits beyond `d` masked back to zero (the invariant
    /// `Eq`/`Hash`/[`BitVector::hamming`] rely on).
    pub fn ones(d: usize) -> Self {
        let mut v = BitVector {
            blocks: vec![!0u64; d.div_ceil(64)],
            len: d,
        };
        v.mask_tail();
        v
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVector::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// A uniformly random point of `{0,1}^d`.
    pub fn random(rng: &mut dyn Rng, d: usize) -> Self {
        let mut blocks = vec![0u64; d.div_ceil(64)];
        for b in &mut blocks {
            *b = rng.next_u64();
        }
        let mut v = BitVector { blocks, len: d };
        v.mask_tail();
        v
    }

    /// Dimension `d`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff `d == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`.
    pub fn get(&self, i: usize) -> bool {
        // lint: allow(panic) — caller contract: bit index bounded by the vector dimension
        assert!(
            i < self.len,
            "bit index {i} out of range (d = {})",
            self.len
        );
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (d = {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Flip bit `i`.
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range (d = {})",
            self.len
        );
        self.blocks[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> u64 {
        self.blocks.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// The packed blocks (the vector's row in a [`BitStore`]-compatible
    /// layout): bit `i` is `blocks[i / 64] >> (i % 64) & 1`, tail bits
    /// beyond `len` are zero.
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Rebuild from packed blocks (the inverse of
    /// [`BitVector::as_blocks`]). Tail bits beyond `len` are masked to
    /// zero; `blocks.len()` must be exactly `len.div_ceil(64)`.
    pub fn from_blocks(blocks: Vec<u64>, len: usize) -> Self {
        assert_eq!(blocks.len(), len.div_ceil(64), "block count mismatch");
        let mut v = BitVector { blocks, len };
        v.mask_tail();
        v
    }

    /// Hamming distance `||x - y||_1` to another vector of equal dimension.
    pub fn hamming(&self, other: &BitVector) -> u64 {
        assert_eq!(self.len, other.len, "dimension mismatch");
        hamming(&self.blocks, &other.blocks)
    }

    /// Relative Hamming distance `||x - y||_1 / d` in `[0, 1]`.
    pub fn relative_hamming(&self, other: &BitVector) -> f64 {
        assert!(self.len > 0, "relative distance undefined in dimension 0");
        self.hamming(other) as f64 / self.len as f64
    }

    /// Componentwise complement.
    pub fn complement(&self) -> BitVector {
        let mut v = BitVector {
            blocks: self.blocks.iter().map(|b| !b).collect(),
            len: self.len,
        };
        v.mask_tail();
        v
    }

    /// Map to a scaled hypercube corner on the unit sphere:
    /// bit `b_i` becomes `(2 b_i - 1) / sqrt(d)`. This is the standard
    /// embedding the paper uses to transfer Hamming results to `S^{d-1}`
    /// (§1.1.1: "unit vectors up to a scaling factor sqrt(d)").
    pub fn to_unit_vector(&self) -> DenseVector {
        assert!(self.len > 0);
        let s = 1.0 / (self.len as f64).sqrt();
        DenseVector::new(
            (0..self.len)
                .map(|i| if self.get(i) { s } else { -s })
                .collect(),
        )
    }

    /// Zero out bits beyond `len` in the last block (keeps equality and
    /// popcount honest after complement/random fills).
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// A point of `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector {
    components: Vec<f64>,
}

impl DenseVector {
    /// Build from components.
    pub fn new(components: Vec<f64>) -> Self {
        DenseVector { components }
    }

    /// The zero vector of dimension `d`.
    pub fn zeros(d: usize) -> Self {
        DenseVector {
            components: vec![0.0; d],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Component access.
    pub fn as_slice(&self) -> &[f64] {
        &self.components
    }

    /// Inner product with another vector of equal dimension. Delegates to
    /// the slice kernel [`dot`], so owned vectors and store rows produce
    /// bit-identical values.
    pub fn dot(&self, other: &DenseVector) -> f64 {
        dot(&self.components, &other.components)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Euclidean distance to another vector. Delegates to the slice kernel
    /// [`euclidean`].
    pub fn euclidean(&self, other: &DenseVector) -> f64 {
        euclidean(&self.components, &other.components)
    }

    /// Scale by a constant.
    pub fn scaled(&self, s: f64) -> DenseVector {
        DenseVector::new(self.components.iter().map(|c| c * s).collect())
    }

    /// Negation (the paper's "negate the query point" trick).
    pub fn negated(&self) -> DenseVector {
        self.scaled(-1.0)
    }

    /// Vector sum.
    pub fn add(&self, other: &DenseVector) -> DenseVector {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        DenseVector::new(
            self.components
                .iter()
                .zip(&other.components)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Vector difference `self - other`.
    pub fn sub(&self, other: &DenseVector) -> DenseVector {
        self.add(&other.negated())
    }

    /// Normalize onto the unit sphere. Panics on the zero vector.
    pub fn normalized(&self) -> DenseVector {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self.scaled(1.0 / n)
    }

    /// A vector of `d` i.i.d. standard Gaussians.
    pub fn gaussian(rng: &mut dyn Rng, d: usize) -> Self {
        DenseVector::new((0..d).map(|_| dsh_math::normal::sample(rng)).collect())
    }

    /// A uniformly random point on `S^{d-1}` (normalized Gaussian).
    pub fn random_unit(rng: &mut dyn Rng, d: usize) -> Self {
        loop {
            let v = DenseVector::gaussian(rng, d);
            if v.norm() > 1e-12 {
                return v.normalized();
            }
        }
    }

    /// A uniformly random point in `{-1/sqrt(d), +1/sqrt(d)}^d` (scaled
    /// hypercube corner on the sphere).
    pub fn random_hypercube_corner(rng: &mut dyn Rng, d: usize) -> Self {
        let s = 1.0 / (d as f64).sqrt();
        DenseVector::new(
            (0..d)
                .map(|_| if rng.random_bool(0.5) { s } else { -s })
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Slice kernels
// ---------------------------------------------------------------------------

/// Read bit `i` of a packed `[u64]` row (a [`BitStore`] row or
/// [`BitVector::as_blocks`]).
#[inline]
pub fn get_bit(blocks: &[u64], i: usize) -> bool {
    (blocks[i / 64] >> (i % 64)) & 1 == 1
}

// The pair kernels live in `crate::kernels` (runtime-dispatched over the
// scalar/SSE2/AVX2 tiers); re-exported here because this module is their
// historical home and every measure site imports them via `points::`.
pub use crate::kernels::{dot, euclidean, hamming};

// ---------------------------------------------------------------------------
// Owned point -> borrowed row bridge
// ---------------------------------------------------------------------------

/// Types that expose a borrowed row — the bridge between owned points and
/// the slice-based hashing/verification layer.
///
/// Hash families and measures operate on the row type (`[f64]` for dense
/// points, `[u64]` for packed bit points); owned [`DenseVector`] /
/// [`BitVector`] values, store row views, and rows themselves all
/// implement `AsRow`, so query APIs accept any of them interchangeably.
pub trait AsRow {
    /// The borrowed row type (`[f64]`, `[u64]`, or `Self` for point types
    /// that are their own row, e.g. scalars).
    type Row: ?Sized + 'static;

    /// Borrow the row.
    fn as_row(&self) -> &Self::Row;
}

impl AsRow for DenseVector {
    type Row = [f64];
    fn as_row(&self) -> &[f64] {
        self.as_slice()
    }
}

impl AsRow for BitVector {
    type Row = [u64];
    fn as_row(&self) -> &[u64] {
        self.as_blocks()
    }
}

impl AsRow for [f64] {
    type Row = [f64];
    fn as_row(&self) -> &[f64] {
        self
    }
}

impl AsRow for [u64] {
    type Row = [u64];
    fn as_row(&self) -> &[u64] {
        self
    }
}

/// Scalar (and other self-describing) point types are their own row.
macro_rules! self_row {
    ($($t:ty),*) => {$(
        impl AsRow for $t {
            type Row = $t;
            fn as_row(&self) -> &$t {
                self
            }
        }
    )*};
}
self_row!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

// ---------------------------------------------------------------------------
// Point stores
// ---------------------------------------------------------------------------

/// A row-addressable collection of points, the storage abstraction the
/// index layer builds from and verifies against.
///
/// The flat implementations are [`DenseStore`] and [`BitStore`]; `Vec<P>`
/// (one heap allocation per point) is kept as the compatibility
/// implementation so existing call sites keep working and so store-built
/// indexes can be checked query-for-query against Vec-built ones.
pub trait PointStore: Send + Sync {
    /// The borrowed row type handed to hash functions and measures.
    type Row: ?Sized + 'static;

    /// Number of stored points.
    fn len(&self) -> usize;

    /// True when no points are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow row `i`.
    fn row(&self, i: usize) -> &Self::Row;

    /// Hint that row `i` will be read soon: best-effort software prefetch
    /// of the row's cache lines. The default is a no-op; the flat stores
    /// forward to [`crate::kernels::prefetch_span`] (itself a no-op off
    /// x86_64 and under the scalar dispatch tier). Out-of-bounds indices
    /// are silently ignored — a hint must never be the bounds check.
    #[inline]
    fn prefetch_row(&self, i: usize) {
        let _ = i;
    }
}

/// A [`PointStore`] that can grow one row at a time — the storage
/// contract of the mutable index layer (`dsh-index`'s `DynamicIndex`
/// appends every inserted point to its backing store).
///
/// Appending is already natural for the flat stores: [`DenseStore`] is
/// row-major (`push_row` is one `extend_from_slice`) and [`BitStore`] is
/// bit-packed with a fixed block count per row. `Vec<DenseVector>` is
/// supported for the pointer-per-point compatibility path; `Vec<BitVector>`
/// is not, because a raw `[u64]` row does not carry the bit dimension an
/// owned [`BitVector`] needs.
///
/// ```
/// use dsh_core::points::{AppendStore, BitStore, BitVector, PointStore};
/// let mut store = BitStore::with_dim(70);
/// let p = BitVector::ones(70);
/// store.push_row(p.as_blocks());
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.row(0), p.as_blocks());
/// ```
pub trait AppendStore: PointStore {
    /// Append one row (must match the store's row shape).
    fn push_row(&mut self, row: &Self::Row);

    /// Pre-allocate for `additional` more rows. A batched write path
    /// (the index layer's group commits) knows its append count up
    /// front; reserving once turns the per-row buffer growth into a
    /// single allocation. The default is a no-op, so stores without a
    /// useful notion of capacity need not implement it.
    fn reserve_rows(&mut self, additional: usize) {
        let _ = additional;
    }

    /// A fresh empty store of the same row shape (same dimension /
    /// block count), ready to receive rows of this store. This is what
    /// lets generic code split one store into shards, or freeze a write
    /// head and start a new one, without knowing the concrete backend.
    fn empty_like(&self) -> Self
    where
        Self: Sized;
}

impl AppendStore for DenseStore {
    fn push_row(&mut self, row: &[f64]) {
        self.push(row);
    }

    fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional.saturating_mul(self.dim));
    }

    fn empty_like(&self) -> Self {
        DenseStore::with_dim(self.dim())
    }
}

impl AppendStore for BitStore {
    fn push_row(&mut self, row: &[u64]) {
        BitStore::push_row(self, row);
    }

    fn reserve_rows(&mut self, additional: usize) {
        self.blocks
            .reserve(additional.saturating_mul(self.blocks_per_row));
    }

    fn empty_like(&self) -> Self {
        BitStore::with_dim(self.dim())
    }
}

impl AppendStore for Vec<DenseVector> {
    fn push_row(&mut self, row: &[f64]) {
        if let Some(first) = self.first() {
            // lint: allow(panic) — caller contract: row shape fixed by the first append; a mismatch is a caller bug
            assert_eq!(row.len(), first.dim(), "dimension mismatch");
        }
        self.push(DenseVector::new(row.to_vec()));
    }

    fn reserve_rows(&mut self, additional: usize) {
        self.reserve(additional);
    }

    fn empty_like(&self) -> Self {
        Vec::new()
    }
}

impl<P: AsRow + Send + Sync> PointStore for Vec<P> {
    type Row = P::Row;
    fn len(&self) -> usize {
        Vec::len(self)
    }
    fn row(&self, i: usize) -> &P::Row {
        self[i].as_row()
    }
}

impl<P: AsRow + Send + Sync> PointStore for [P] {
    type Row = P::Row;
    fn len(&self) -> usize {
        <[P]>::len(self)
    }
    fn row(&self, i: usize) -> &P::Row {
        self[i].as_row()
    }
}

/// Row-major contiguous storage for `n` points of `R^d`: one `Vec<f64>`
/// of length `n * d` instead of `n` separately allocated vectors, so
/// hashing and candidate verification stream rows at memory bandwidth.
///
/// ```
/// use dsh_core::points::{DenseStore, PointStore};
/// let mut store = DenseStore::with_dim(3);
/// store.push(&[1.0, 0.0, 0.0]);
/// store.push(&[0.0, 1.0, 0.0]);
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.row(1), &[0.0, 1.0, 0.0]);
/// assert_eq!(store.row_ref(0).dot(store.row_ref(1)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseStore {
    data: Vec<f64>,
    dim: usize,
    n: usize,
}

impl DenseStore {
    /// An empty store for points of dimension `dim`.
    pub fn with_dim(dim: usize) -> Self {
        DenseStore {
            data: Vec::new(),
            dim,
            n: 0,
        }
    }

    /// Build from a flat row-major buffer (`data.len()` must be a multiple
    /// of `dim`).
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer not a multiple of dim"
        );
        let n = data.len() / dim;
        DenseStore { data, dim, n }
    }

    /// Append one point.
    pub fn push(&mut self, row: &[f64]) {
        // lint: allow(panic) — caller contract: row shape fixed at store construction; a mismatch is a caller bug
        assert_eq!(row.len(), self.dim, "dimension mismatch");
        self.data.extend_from_slice(row);
        self.n += 1;
    }

    /// Dimension `d` of the stored points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Borrow row `i` as a raw slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow row `i` as a typed view.
    #[inline]
    pub fn row_ref(&self, i: usize) -> DenseRef<'_> {
        DenseRef {
            components: self.row(i),
        }
    }

    /// Iterate over all rows in storage order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.n).map(move |i| self.row(i))
    }

    /// The underlying flat row-major buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Batch kernel: inner products of rows `ids` with `q`, appended to
    /// `out` (cleared first) in `ids` order — the candidate-verification
    /// pass of the index layer as one contiguous, prefetched,
    /// runtime-dispatched sweep instead of per-pair boxed-closure calls.
    // lint: hot
    pub fn dot_many(&self, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(ids.len());
        crate::kernels::dot_many(&self.data, self.dim, ids, q, out);
    }

    /// Batch kernel: Euclidean distances of rows `ids` to `q` (same
    /// contract as [`DenseStore::dot_many`]).
    // lint: hot
    pub fn euclidean_many(&self, ids: &[usize], q: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(ids.len());
        crate::kernels::euclidean_many(&self.data, self.dim, ids, q, out);
    }
}

impl From<Vec<DenseVector>> for DenseStore {
    /// Thin conversion flattening owned vectors into one buffer. All
    /// points must share one dimension; an empty input yields an empty
    /// store of dimension 0.
    fn from(points: Vec<DenseVector>) -> Self {
        let dim = points.first().map_or(0, DenseVector::dim);
        let mut data = Vec::with_capacity(points.len() * dim);
        for p in &points {
            assert_eq!(p.dim(), dim, "mixed dimensions");
            data.extend_from_slice(p.as_slice());
        }
        DenseStore {
            data,
            dim,
            n: points.len(),
        }
    }
}

impl PointStore for DenseStore {
    type Row = [f64];
    fn len(&self) -> usize {
        self.n
    }
    fn row(&self, i: usize) -> &[f64] {
        DenseStore::row(self, i)
    }
    #[inline]
    fn prefetch_row(&self, i: usize) {
        if let Some(start) = i.checked_mul(self.dim) {
            crate::kernels::prefetch_span(&self.data, start, self.dim);
        }
    }
}

/// Zero-copy view of one [`DenseStore`] row (or any `[f64]` row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseRef<'a> {
    components: &'a [f64],
}

impl<'a> DenseRef<'a> {
    /// View a raw row.
    pub fn new(components: &'a [f64]) -> Self {
        DenseRef { components }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &'a [f64] {
        self.components
    }

    /// Inner product with another row view.
    pub fn dot(&self, other: DenseRef<'_>) -> f64 {
        dot(self.components, other.components)
    }

    /// Euclidean distance to another row view.
    pub fn euclidean(&self, other: DenseRef<'_>) -> f64 {
        euclidean(self.components, other.components)
    }

    /// Copy into an owned [`DenseVector`].
    pub fn to_owned(&self) -> DenseVector {
        DenseVector::new(self.components.to_vec())
    }
}

impl AsRow for DenseRef<'_> {
    type Row = [f64];
    fn as_row(&self) -> &[f64] {
        self.components
    }
}

/// Contiguous storage for `n` points of `{0,1}^d`: all rows bit-packed
/// into one `Vec<u64>`, `d.div_ceil(64)` blocks per row, tail bits zero.
///
/// ```
/// use dsh_core::points::{BitStore, BitVector, PointStore};
/// let mut store = BitStore::with_dim(70);
/// store.push(&BitVector::ones(70));
/// store.push(&BitVector::zeros(70));
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.row_ref(0).hamming(store.row_ref(1)), 70);
/// assert!(store.row_ref(0).get(69));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitStore {
    blocks: Vec<u64>,
    dim: usize,
    blocks_per_row: usize,
    n: usize,
}

impl BitStore {
    /// An empty store for points of dimension `dim`.
    pub fn with_dim(dim: usize) -> Self {
        BitStore {
            blocks: Vec::new(),
            dim,
            blocks_per_row: dim.div_ceil(64),
            n: 0,
        }
    }

    /// Append one point (must match the store dimension).
    pub fn push(&mut self, v: &BitVector) {
        // lint: allow(panic) — caller contract: row shape fixed at store construction; a mismatch is a caller bug
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        self.blocks.extend_from_slice(v.as_blocks());
        self.n += 1;
    }

    /// Append one point given as its packed row (`d.div_ceil(64)` blocks,
    /// e.g. another store's row or [`BitVector::as_blocks`]). Tail bits
    /// beyond the dimension are masked to zero on copy, so a sloppy source
    /// row cannot corrupt the store's Hamming/equality invariant.
    pub fn push_row(&mut self, row: &[u64]) {
        // lint: allow(panic) — caller contract: row shape fixed at store construction; a mismatch is a caller bug
        assert_eq!(row.len(), self.blocks_per_row, "block count mismatch");
        self.blocks.extend_from_slice(row);
        let rem = self.dim % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        self.n += 1;
    }

    /// Append a uniformly random point, drawing the same RNG stream as
    /// [`BitVector::random`] (so generators can fill a store directly and
    /// still produce bit-identical data to the `Vec<BitVector>` path).
    pub fn push_random(&mut self, rng: &mut dyn Rng) {
        let start = self.blocks.len();
        for _ in 0..self.blocks_per_row {
            self.blocks.push(rng.next_u64());
        }
        let rem = self.dim % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        debug_assert_eq!(self.blocks.len(), start + self.blocks_per_row);
        self.n += 1;
    }

    /// Dimension `d` of the stored points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Packed blocks per row (`d.div_ceil(64)`).
    pub fn blocks_per_row(&self) -> usize {
        self.blocks_per_row
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Borrow row `i` as its packed blocks.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.blocks[i * self.blocks_per_row..(i + 1) * self.blocks_per_row]
    }

    /// Borrow row `i` as a typed view carrying the dimension.
    #[inline]
    pub fn row_ref(&self, i: usize) -> BitRef<'_> {
        BitRef {
            blocks: self.row(i),
            len: self.dim,
        }
    }

    /// Iterate over all rows in storage order.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        (0..self.n).map(move |i| self.row(i))
    }

    /// Borrow the whole store as one flat row-major block buffer
    /// (`len() * blocks_per_row()` blocks) — the layout the batch
    /// kernels in [`crate::kernels`] operate on directly.
    pub fn as_flat(&self) -> &[u64] {
        &self.blocks
    }

    /// Batch kernel: Hamming distances of rows `ids` to `q`, appended to
    /// `out` (cleared first) in `ids` order (runtime-dispatched, with
    /// prefetch-ahead on the SIMD tiers).
    // lint: hot
    pub fn hamming_many(&self, ids: &[usize], q: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(ids.len());
        crate::kernels::hamming_many(&self.blocks, self.blocks_per_row, ids, q, out);
    }
}

impl From<Vec<BitVector>> for BitStore {
    /// Thin conversion packing owned vectors into one block buffer. All
    /// points must share one dimension; an empty input yields an empty
    /// store of dimension 0.
    fn from(points: Vec<BitVector>) -> Self {
        let dim = points.first().map_or(0, BitVector::len);
        let mut store = BitStore::with_dim(dim);
        store.blocks.reserve(points.len() * store.blocks_per_row);
        for p in &points {
            store.push(p);
        }
        store
    }
}

impl PointStore for BitStore {
    type Row = [u64];
    fn len(&self) -> usize {
        self.n
    }
    fn row(&self, i: usize) -> &[u64] {
        BitStore::row(self, i)
    }
    #[inline]
    fn prefetch_row(&self, i: usize) {
        if let Some(start) = i.checked_mul(self.blocks_per_row) {
            crate::kernels::prefetch_span(&self.blocks, start, self.blocks_per_row);
        }
    }
}

/// Zero-copy view of one [`BitStore`] row, carrying the bit dimension
/// (which the raw `[u64]` row cannot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitRef<'a> {
    blocks: &'a [u64],
    len: usize,
}

impl<'a> BitRef<'a> {
    /// View a packed row of dimension `len`.
    pub fn new(blocks: &'a [u64], len: usize) -> Self {
        assert_eq!(blocks.len(), len.div_ceil(64), "block count mismatch");
        BitRef { blocks, len }
    }

    /// Dimension `d`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff `d == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed blocks.
    pub fn as_blocks(&self) -> &'a [u64] {
        self.blocks
    }

    /// Read bit `i`.
    pub fn get(&self, i: usize) -> bool {
        // lint: allow(panic) — caller contract: bit index bounded by the row dimension fixed at store build
        assert!(
            i < self.len,
            "bit index {i} out of range (d = {})",
            self.len
        );
        get_bit(self.blocks, i)
    }

    /// Hamming distance to another row view of equal dimension.
    pub fn hamming(&self, other: BitRef<'_>) -> u64 {
        assert_eq!(self.len, other.len, "dimension mismatch");
        hamming(self.blocks, other.blocks)
    }

    /// Relative Hamming distance in `[0, 1]`.
    pub fn relative_hamming(&self, other: BitRef<'_>) -> f64 {
        assert!(self.len > 0, "relative distance undefined in dimension 0");
        self.hamming(other) as f64 / self.len as f64
    }

    /// Copy into an owned [`BitVector`].
    pub fn to_owned(&self) -> BitVector {
        BitVector::from_blocks(self.blocks.to_vec(), self.len)
    }
}

impl AsRow for BitRef<'_> {
    type Row = [u64];
    fn as_row(&self) -> &[u64] {
        self.blocks
    }
}

/// A snapshot-friendly append-only store: a list of **frozen** chunks
/// shared behind [`Arc`], plus one small mutable **tail** absorbing
/// appends.
///
/// Row ids and contents are identical to the flat backend `S` the rows
/// would otherwise live in — the chunking is invisible to readers. What
/// changes is the cost of [`Clone`]: frozen chunks are shared by
/// reference-count bump, so cloning the store for an immutable snapshot
/// copies only the tail. [`ChunkedStore::freeze_tail`] moves the current
/// tail behind an `Arc` (a natural fit for the segmented index's `seal`,
/// which also retires its write head), keeping every subsequent clone
/// cheap; [`ChunkedStore::consolidate`] merges all chunks back into one
/// for dense sequential reads after a compaction.
///
/// Frozen chunks are never mutated — a clone taken at any point keeps
/// reading exactly the rows it saw, while the original keeps growing.
/// This is the storage contract the concurrent sharded serving layer
/// (`dsh-index`'s `ShardedIndex`) publishes its snapshots on.
///
/// ```
/// use dsh_core::points::{AppendStore, BitStore, BitVector, ChunkedStore, PointStore};
/// let mut store = ChunkedStore::new(BitStore::with_dim(70));
/// let p = BitVector::ones(70);
/// store.push_row(p.as_blocks());
/// store.freeze_tail();
/// let snapshot = store.clone(); // shares the frozen chunk
/// store.push_row(BitVector::zeros(70).as_blocks());
/// assert_eq!(store.len(), 2);
/// assert_eq!(snapshot.len(), 1);
/// assert_eq!(snapshot.row(0), p.as_blocks());
/// ```
#[derive(Debug)]
pub struct ChunkedStore<S> {
    chunks: Vec<Arc<S>>,
    /// Cumulative first-row index of each chunk (`starts[c]` is the
    /// global id of `chunks[c]`'s row 0).
    starts: Vec<usize>,
    tail: S,
    tail_start: usize,
}

impl<S: Clone> Clone for ChunkedStore<S> {
    fn clone(&self) -> Self {
        ChunkedStore {
            chunks: self.chunks.clone(),
            starts: self.starts.clone(),
            tail: self.tail.clone(),
            tail_start: self.tail_start,
        }
    }
}

impl<S: AppendStore> ChunkedStore<S> {
    /// Start from an empty tail store (which fixes the row shape —
    /// dimension, block count — of everything appended later).
    pub fn new(empty: S) -> Self {
        // lint: allow(panic) — constructor contract (empty tail store); violations are build bugs, not data-dependent
        assert!(empty.is_empty(), "ChunkedStore::new takes an empty store");
        ChunkedStore {
            chunks: Vec::new(),
            starts: Vec::new(),
            tail: empty,
            tail_start: 0,
        }
    }

    /// Wrap an existing store, freezing its rows as the first chunk.
    pub fn from_store(store: S) -> Self {
        let tail = store.empty_like();
        let mut chunked = ChunkedStore::new(tail);
        if store.len() > 0 {
            chunked.starts.push(0);
            chunked.tail_start = store.len();
            chunked.chunks.push(Arc::new(store));
        }
        chunked
    }

    /// Number of frozen chunks currently held.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Rows sitting in the mutable tail (copied by every clone — callers
    /// bound it by freezing periodically).
    pub fn tail_rows(&self) -> usize {
        self.tail.len()
    }

    /// A fresh empty store of the **inner** backend type, with this
    /// store's row shape — the staging buffer a write batch accumulates
    /// rows in before they are appended across chunked shard stores.
    pub fn empty_inner(&self) -> S {
        self.tail.empty_like()
    }

    /// Freeze the tail into a new shared chunk and start an empty one.
    /// No-op when the tail is empty. Row ids and contents are unchanged.
    pub fn freeze_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let fresh = self.tail.empty_like();
        let full = std::mem::replace(&mut self.tail, fresh);
        self.starts.push(self.tail_start);
        self.tail_start += full.len();
        self.chunks.push(Arc::new(full));
    }

    /// Rebuild as a single frozen chunk (plus an empty tail): one
    /// contiguous row range for dense sequential reads. Copies every row
    /// once; row ids and contents are unchanged.
    pub fn consolidate(&mut self) {
        if self.chunks.len() <= 1 && self.tail.is_empty() {
            return;
        }
        let mut merged = self.tail.empty_like();
        for i in 0..self.len() {
            merged.push_row(self.row(i));
        }
        *self = ChunkedStore::from_store(merged);
    }
}

impl<S: AppendStore> PointStore for ChunkedStore<S> {
    type Row = S::Row;

    fn len(&self) -> usize {
        self.tail_start + self.tail.len()
    }

    fn row(&self, i: usize) -> &S::Row {
        if i >= self.tail_start {
            return self.tail.row(i - self.tail_start);
        }
        // partition_point returns the first chunk starting past `i`;
        // its predecessor is the chunk holding row `i`.
        let c = self.starts.partition_point(|&s| s <= i) - 1;
        self.chunks[c].row(i - self.starts[c])
    }

    #[inline]
    fn prefetch_row(&self, i: usize) {
        if i >= self.tail_start {
            self.tail.prefetch_row(i - self.tail_start);
            return;
        }
        let c = self.starts.partition_point(|&s| s <= i) - 1;
        self.chunks[c].prefetch_row(i - self.starts[c]);
    }
}

impl<S: AppendStore> AppendStore for ChunkedStore<S> {
    fn push_row(&mut self, row: &S::Row) {
        self.tail.push_row(row);
    }

    fn reserve_rows(&mut self, additional: usize) {
        self.tail.reserve_rows(additional);
    }

    fn empty_like(&self) -> Self {
        ChunkedStore::new(self.tail.empty_like())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn bitvector_get_set_flip() {
        let mut v = BitVector::zeros(130);
        assert_eq!(v.count_ones(), 0);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.flip(129);
        assert!(!v.get(129));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn bitvector_hamming() {
        let mut a = BitVector::zeros(100);
        let mut b = BitVector::zeros(100);
        assert_eq!(a.hamming(&b), 0);
        a.set(3, true);
        b.set(99, true);
        assert_eq!(a.hamming(&b), 2);
        b.set(3, true);
        assert_eq!(a.hamming(&b), 1);
        assert!((a.relative_hamming(&b) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn bitvector_complement_distance() {
        let v = BitVector::random(&mut seeded(11), 77);
        let c = v.complement();
        assert_eq!(v.hamming(&c), 77);
        assert_eq!(v.count_ones() + c.count_ones(), 77);
    }

    #[test]
    fn bitvector_ones_and_from_bools() {
        let o = BitVector::ones(70);
        assert_eq!(o.count_ones(), 70);
        let v = BitVector::from_bools(&[true, false, true]);
        assert!(v.get(0) && !v.get(1) && v.get(2));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn constructors_keep_tail_bits_zero() {
        // Tail bits beyond `len` must stay zero in every constructor, or
        // Eq / Hash / hamming silently diverge between equal vectors.
        use std::hash::{BuildHasher, RandomState};
        let hasher = RandomState::new();
        let mut rng = seeded(77);
        for d in [1usize, 7, 63, 64, 65, 70, 127, 128, 130] {
            let rem = d % 64;
            let tail = |v: &BitVector| {
                if rem == 0 {
                    0
                } else {
                    v.blocks.last().unwrap() >> rem
                }
            };
            let o = BitVector::ones(d);
            assert_eq!(tail(&o), 0, "ones({d}) leaked tail bits");
            assert_eq!(o.count_ones(), d as u64);
            assert_eq!(tail(&BitVector::zeros(d)), 0);
            assert_eq!(tail(&BitVector::random(&mut rng, d)), 0);
            assert_eq!(tail(&o.complement()), 0);
            assert_eq!(tail(&BitVector::from_bools(&vec![true; d])), 0);
            // The Eq/Hash/hamming invariants the masking protects.
            let bitwise = BitVector::from_bools(&vec![true; d]);
            assert_eq!(o, bitwise, "d = {d}");
            assert_eq!(hasher.hash_one(&o), hasher.hash_one(&bitwise), "d = {d}");
            assert_eq!(o.hamming(&bitwise), 0);
            assert_eq!(o.complement(), BitVector::zeros(d));
        }
    }

    #[test]
    fn bitvector_random_is_balanced() {
        let mut rng = seeded(42);
        let mut total = 0u64;
        for _ in 0..100 {
            total += BitVector::random(&mut rng, 256).count_ones();
        }
        let frac = total as f64 / (100.0 * 256.0);
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn bitvector_to_unit_vector() {
        let mut v = BitVector::zeros(4);
        v.set(0, true);
        let u = v.to_unit_vector();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((u.as_slice()[0] - 0.5).abs() < 1e-12);
        assert!((u.as_slice()[1] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn hamming_inner_product_correspondence() {
        // For hypercube corners, <u_x, u_y> = 1 - 2 dist_H(x,y)/d = simH.
        let mut rng = seeded(5);
        let x = BitVector::random(&mut rng, 128);
        let y = BitVector::random(&mut rng, 128);
        let alpha = x.to_unit_vector().dot(&y.to_unit_vector());
        let sim = 1.0 - 2.0 * x.relative_hamming(&y);
        assert!((alpha - sim).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn hamming_dimension_mismatch_panics() {
        let a = BitVector::zeros(3);
        let b = BitVector::zeros(4);
        let _ = a.hamming(&b);
    }

    #[test]
    fn dense_vector_ops() {
        let a = DenseVector::new(vec![1.0, 2.0, 2.0]);
        let b = DenseVector::new(vec![0.0, 1.0, 0.0]);
        assert_eq!(a.dot(&b), 2.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.euclidean(&b), (1.0f64 + 1.0 + 4.0).sqrt());
        assert_eq!(a.sub(&b).as_slice(), &[1.0, 1.0, 2.0]);
        assert_eq!(a.negated().as_slice(), &[-1.0, -2.0, -2.0]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_unit_is_unit() {
        let mut rng = seeded(1);
        for _ in 0..10 {
            let v = DenseVector::random_unit(&mut rng, 25);
            assert!((v.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn random_units_nearly_orthogonal_in_high_dim() {
        let mut rng = seeded(2);
        let a = DenseVector::random_unit(&mut rng, 2000);
        let b = DenseVector::random_unit(&mut rng, 2000);
        assert!(a.dot(&b).abs() < 0.1);
    }

    #[test]
    fn hypercube_corner_on_sphere() {
        let mut rng = seeded(3);
        let v = DenseVector::random_hypercube_corner(&mut rng, 64);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn normalize_zero_panics() {
        let _ = DenseVector::zeros(3).normalized();
    }
}

#[cfg(test)]
mod store_tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn kernels_match_owned_point_methods() {
        let mut rng = seeded(0x570);
        for d in [1usize, 3, 4, 7, 16, 33] {
            let a = DenseVector::gaussian(&mut rng, d);
            let b = DenseVector::gaussian(&mut rng, d);
            assert_eq!(dot(a.as_slice(), b.as_slice()), a.dot(&b));
            assert_eq!(euclidean(a.as_slice(), b.as_slice()), a.euclidean(&b));
        }
        for d in [1usize, 63, 64, 65, 130] {
            let x = BitVector::random(&mut rng, d);
            let y = BitVector::random(&mut rng, d);
            assert_eq!(hamming(x.as_blocks(), y.as_blocks()), x.hamming(&y));
            for i in 0..d {
                assert_eq!(get_bit(x.as_blocks(), i), x.get(i));
            }
        }
    }

    #[test]
    fn blocked_dot_agrees_with_sequential_fold() {
        // Reassociation moves the result by O(eps), never more.
        let mut rng = seeded(0x571);
        for d in [5usize, 17, 64, 101] {
            let a = DenseVector::gaussian(&mut rng, d);
            let b = DenseVector::gaussian(&mut rng, d);
            let seq: f64 = a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| x * y)
                .sum();
            assert!((dot(a.as_slice(), b.as_slice()) - seq).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_store_round_trips_vec() {
        let mut rng = seeded(0x572);
        let points: Vec<DenseVector> = (0..9).map(|_| DenseVector::gaussian(&mut rng, 5)).collect();
        let store = DenseStore::from(points.clone());
        assert_eq!(store.len(), 9);
        assert_eq!(store.dim(), 5);
        assert_eq!(store.as_flat().len(), 45);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(store.row(i), p.as_slice());
            assert_eq!(PointStore::row(&store, i), PointStore::row(&points, i));
            assert_eq!(store.row_ref(i).to_owned(), *p);
        }
    }

    #[test]
    fn bit_store_round_trips_vec() {
        let mut rng = seeded(0x573);
        for d in [1usize, 64, 65, 130] {
            let points: Vec<BitVector> = (0..7).map(|_| BitVector::random(&mut rng, d)).collect();
            let store = BitStore::from(points.clone());
            assert_eq!(store.len(), 7);
            assert_eq!(store.dim(), d);
            assert_eq!(store.blocks_per_row(), d.div_ceil(64));
            for (i, p) in points.iter().enumerate() {
                assert_eq!(store.row(i), p.as_blocks());
                assert_eq!(store.row_ref(i).to_owned(), *p);
                assert_eq!(store.row_ref(i).len(), d);
            }
        }
    }

    #[test]
    fn push_random_matches_bitvector_random_stream() {
        for d in [1usize, 63, 64, 65, 200] {
            let mut store = BitStore::with_dim(d);
            let mut rng = seeded(0x574);
            for _ in 0..5 {
                store.push_random(&mut rng);
            }
            let mut rng = seeded(0x574);
            let owned: Vec<BitVector> = (0..5).map(|_| BitVector::random(&mut rng, d)).collect();
            assert_eq!(store, BitStore::from(owned), "d = {d}");
        }
    }

    #[test]
    fn batch_kernels_verify_candidate_lists() {
        let mut rng = seeded(0x575);
        let dense: Vec<DenseVector> = (0..20)
            .map(|_| DenseVector::gaussian(&mut rng, 8))
            .collect();
        let q = DenseVector::gaussian(&mut rng, 8);
        let store = DenseStore::from(dense.clone());
        let ids = [3usize, 17, 0, 3, 9];
        let mut out = Vec::new();
        store.dot_many(&ids, q.as_slice(), &mut out);
        let want: Vec<f64> = ids.iter().map(|&i| dense[i].dot(&q)).collect();
        assert_eq!(out, want);
        store.euclidean_many(&ids, q.as_slice(), &mut out);
        let want: Vec<f64> = ids.iter().map(|&i| dense[i].euclidean(&q)).collect();
        assert_eq!(out, want);

        let bits: Vec<BitVector> = (0..20).map(|_| BitVector::random(&mut rng, 90)).collect();
        let bq = BitVector::random(&mut rng, 90);
        let bstore = BitStore::from(bits.clone());
        let mut bout = Vec::new();
        bstore.hamming_many(&ids, bq.as_blocks(), &mut bout);
        let want: Vec<u64> = ids.iter().map(|&i| bits[i].hamming(&bq)).collect();
        assert_eq!(bout, want);
    }

    #[test]
    fn vec_and_slice_are_stores() {
        let points = vec![BitVector::zeros(10), BitVector::ones(10)];
        assert_eq!(PointStore::len(&points), 2);
        assert_eq!(PointStore::row(&points, 1), points[1].as_blocks());
        let slice: &[BitVector] = &points;
        assert_eq!(PointStore::len(slice), 2);
        assert!(!PointStore::is_empty(&points));
    }

    #[test]
    fn as_row_reflexivity_and_views() {
        let v = DenseVector::new(vec![1.0, 2.0]);
        assert_eq!(v.as_row(), v.as_slice());
        assert_eq!(v.as_slice().as_row(), v.as_slice());
        assert_eq!(7u64.as_row(), &7u64);
        let b = BitVector::ones(3);
        let r = BitRef::new(b.as_blocks(), 3);
        assert_eq!(r.as_row(), b.as_row());
        assert!(r.get(2) && !r.is_empty());
        assert_eq!(r.relative_hamming(BitRef::new(b.as_blocks(), 3)), 0.0);
        let dr = DenseRef::new(v.as_slice());
        assert_eq!(dr.dim(), 2);
        assert_eq!(dr.as_row(), v.as_slice());
        assert_eq!(dr.euclidean(dr), 0.0);
    }

    #[test]
    fn empty_and_flat_constructors() {
        let empty = DenseStore::from(Vec::<DenseVector>::new());
        assert!(empty.is_empty());
        assert_eq!(empty.dim(), 0);
        let flat = DenseStore::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.row(1), &[3.0, 4.0]);
        assert_eq!(flat.rows().count(), 2);
        let bempty = BitStore::from(Vec::<BitVector>::new());
        assert!(bempty.is_empty());
        assert_eq!(bempty.rows().count(), 0);
        let mut ds = DenseStore::with_dim(2);
        ds.push(&[5.0, 6.0]);
        assert_eq!(ds.row_ref(0).as_slice(), &[5.0, 6.0]);
    }

    #[test]
    fn append_store_rows_round_trip() {
        let mut rng = seeded(0x576);
        // BitStore: push_row from another store's rows and from owned
        // points must be bit-identical to the push(&BitVector) path.
        for d in [1usize, 63, 64, 65, 130] {
            let points: Vec<BitVector> = (0..6).map(|_| BitVector::random(&mut rng, d)).collect();
            let whole = BitStore::from(points.clone());
            let mut grown = BitStore::with_dim(d);
            for p in &points {
                AppendStore::push_row(&mut grown, p.as_blocks());
            }
            assert_eq!(grown, whole, "d = {d}");
            let mut copied = BitStore::with_dim(d);
            for i in 0..whole.len() {
                copied.push_row(whole.row(i));
            }
            assert_eq!(copied, whole, "d = {d}");
        }
        // DenseStore and Vec<DenseVector> append the same rows.
        let points: Vec<DenseVector> = (0..5).map(|_| DenseVector::gaussian(&mut rng, 7)).collect();
        let mut dense = DenseStore::with_dim(7);
        let mut vec_store: Vec<DenseVector> = Vec::new();
        for p in &points {
            AppendStore::push_row(&mut dense, p.as_slice());
            AppendStore::push_row(&mut vec_store, p.as_slice());
        }
        assert_eq!(dense, DenseStore::from(points.clone()));
        assert_eq!(vec_store, points);
    }

    #[test]
    fn bit_store_push_row_masks_tail_bits() {
        // A dirty source row (tail bits set beyond the dimension) must not
        // corrupt the store's zero-tail invariant.
        let mut store = BitStore::with_dim(70);
        store.push_row(&[!0u64, !0u64]);
        let expected = BitVector::ones(70);
        assert_eq!(store.row(0), expected.as_blocks());
        assert_eq!(store.row_ref(0).to_owned(), expected);
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn bit_store_push_row_rejects_wrong_block_count() {
        let mut store = BitStore::with_dim(70);
        store.push_row(&[0u64]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dense_store_rejects_wrong_dim_push() {
        let mut s = DenseStore::with_dim(3);
        s.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bit_store_rejects_wrong_dim_push() {
        let mut s = BitStore::with_dim(65);
        s.push(&BitVector::zeros(64));
    }
}

// Property-style tests over randomized inputs (seeded, so deterministic).
// These replace `proptest!` blocks: the crate is built offline and
// proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use dsh_math::rng::seeded;
    use rand::rngs::StdRng;

    fn random_bools(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<bool> {
        let len = rng.random_range(min_len..max_len);
        (0..len).map(|_| rng.random_bool(0.5)).collect()
    }

    fn random_coords(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<f64> {
        let len = rng.random_range(min_len..max_len);
        (0..len).map(|_| rng.random_range(-10.0f64..10.0)).collect()
    }

    #[test]
    fn hamming_is_a_metric() {
        let mut rng = seeded(0xB17);
        for _ in 0..256 {
            let a = random_bools(&mut rng, 1, 200);
            let b = random_bools(&mut rng, 1, 200);
            let c = random_bools(&mut rng, 1, 200);
            let n = a.len().min(b.len()).min(c.len());
            let x = BitVector::from_bools(&a[..n]);
            let y = BitVector::from_bools(&b[..n]);
            let z = BitVector::from_bools(&c[..n]);
            // Symmetry, identity, triangle inequality.
            assert_eq!(x.hamming(&y), y.hamming(&x));
            assert_eq!(x.hamming(&x), 0);
            assert!(x.hamming(&z) <= x.hamming(&y) + y.hamming(&z));
        }
    }

    #[test]
    fn complement_involution() {
        let mut rng = seeded(0xB18);
        for _ in 0..256 {
            let bits = random_bools(&mut rng, 1, 200);
            let v = BitVector::from_bools(&bits);
            assert_eq!(v.complement().complement(), v);
        }
    }

    #[test]
    fn dense_cauchy_schwarz() {
        let mut rng = seeded(0xB19);
        for _ in 0..256 {
            let a = random_coords(&mut rng, 1, 20);
            let b = random_coords(&mut rng, 1, 20);
            let n = a.len().min(b.len());
            let x = DenseVector::new(a[..n].to_vec());
            let y = DenseVector::new(b[..n].to_vec());
            assert!(x.dot(&y).abs() <= x.norm() * y.norm() + 1e-9);
        }
    }

    #[test]
    fn dense_triangle_inequality() {
        let mut rng = seeded(0xB1A);
        for _ in 0..256 {
            let a = random_coords(&mut rng, 3, 10);
            let b = random_coords(&mut rng, 3, 10);
            let n = a.len().min(b.len());
            let x = DenseVector::new(a[..n].to_vec());
            let y = DenseVector::new(b[..n].to_vec());
            let z = DenseVector::zeros(n);
            assert!(x.euclidean(&y) <= x.euclidean(&z) + z.euclidean(&y) + 1e-9);
        }
    }

    #[test]
    fn empty_like_preserves_row_shape() {
        let mut rng = seeded(0xC01);
        let mut bits = BitStore::with_dim(70);
        bits.push(&BitVector::random(&mut rng, 70));
        let fresh = bits.empty_like();
        assert_eq!(fresh.dim(), 70);
        assert!(fresh.is_empty());

        let mut dense = DenseStore::with_dim(5);
        dense.push(&[1.0; 5]);
        let fresh = dense.empty_like();
        assert_eq!(fresh.dim(), 5);
        assert!(fresh.is_empty());

        let vecs = vec![DenseVector::zeros(3)];
        assert!(AppendStore::empty_like(&vecs).is_empty());
    }

    #[test]
    fn chunked_store_rows_match_flat_store_across_freezes() {
        let mut rng = seeded(0xC02);
        let d = 130;
        let mut flat = BitStore::with_dim(d);
        let mut chunked = ChunkedStore::new(BitStore::with_dim(d));
        for i in 0..50 {
            let p = BitVector::random(&mut rng, d);
            flat.push(&p);
            chunked.push_row(p.as_blocks());
            if i % 7 == 6 {
                chunked.freeze_tail();
            }
        }
        assert_eq!(chunked.len(), flat.len());
        assert_eq!(chunked.num_chunks(), 7);
        assert_eq!(chunked.tail_rows(), 1);
        for i in 0..flat.len() {
            assert_eq!(chunked.row(i), flat.row(i), "row {i}");
        }
        // Consolidation changes the chunk layout, not the rows.
        chunked.consolidate();
        assert_eq!(chunked.num_chunks(), 1);
        assert_eq!(chunked.tail_rows(), 0);
        for i in 0..flat.len() {
            assert_eq!(chunked.row(i), flat.row(i), "row {i} post-consolidate");
        }
    }

    #[test]
    fn chunked_store_from_store_freezes_initial_rows() {
        let mut dense = DenseStore::with_dim(3);
        dense.push(&[1.0, 2.0, 3.0]);
        dense.push(&[4.0, 5.0, 6.0]);
        let mut chunked = ChunkedStore::from_store(dense);
        assert_eq!(chunked.len(), 2);
        assert_eq!(chunked.num_chunks(), 1);
        assert_eq!(chunked.tail_rows(), 0);
        chunked.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!(chunked.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(chunked.row(2), &[7.0, 8.0, 9.0]);
        // Empty initial store: no chunk at all.
        let empty = ChunkedStore::from_store(DenseStore::with_dim(3));
        assert_eq!(empty.num_chunks(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn chunked_store_clone_is_a_frozen_snapshot() {
        let d = 64;
        let mut rng = seeded(0xC03);
        let rows: Vec<BitVector> = (0..12).map(|_| BitVector::random(&mut rng, d)).collect();
        let mut store = ChunkedStore::new(BitStore::with_dim(d));
        for p in &rows[..8] {
            store.push_row(p.as_blocks());
        }
        store.freeze_tail();
        for p in &rows[8..10] {
            store.push_row(p.as_blocks());
        }
        let snapshot = store.clone();
        // The original keeps growing, freezing, consolidating...
        for p in &rows[10..] {
            store.push_row(p.as_blocks());
        }
        store.freeze_tail();
        store.consolidate();
        assert_eq!(store.len(), 12);
        // ...while the snapshot still reads exactly the rows it saw.
        assert_eq!(snapshot.len(), 10);
        for (i, p) in rows[..10].iter().enumerate() {
            assert_eq!(snapshot.row(i), p.as_blocks(), "snapshot row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn chunked_store_new_rejects_non_empty_tail() {
        let mut dense = DenseStore::with_dim(2);
        dense.push(&[1.0, 2.0]);
        let _ = ChunkedStore::new(dense);
    }
}
