//! Point types: packed bit vectors for Hamming space `{0,1}^d` and dense
//! vectors for `R^d` / the unit sphere `S^{d-1}`.

use rand::Rng;

/// A point of `{0,1}^d`, bit-packed into 64-bit blocks.
///
/// ```
/// use dsh_core::points::BitVector;
/// let mut x = BitVector::zeros(100);
/// x.set(3, true);
/// x.flip(99);
/// let y = BitVector::zeros(100);
/// assert_eq!(x.hamming(&y), 2);
/// assert!((x.relative_hamming(&y) - 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVector {
    blocks: Vec<u64>,
    len: usize,
}

impl BitVector {
    /// The all-zeros vector of dimension `d`.
    pub fn zeros(d: usize) -> Self {
        BitVector {
            blocks: vec![0; d.div_ceil(64)],
            len: d,
        }
    }

    /// The all-ones vector of dimension `d`: whole blocks filled with
    /// `!0`, tail bits beyond `d` masked back to zero (the invariant
    /// `Eq`/`Hash`/[`BitVector::hamming`] rely on).
    pub fn ones(d: usize) -> Self {
        let mut v = BitVector {
            blocks: vec![!0u64; d.div_ceil(64)],
            len: d,
        };
        v.mask_tail();
        v
    }

    /// Build from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVector::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// A uniformly random point of `{0,1}^d`.
    pub fn random(rng: &mut dyn Rng, d: usize) -> Self {
        let mut blocks = vec![0u64; d.div_ceil(64)];
        for b in blocks.iter_mut() {
            *b = rng.next_u64();
        }
        let mut v = BitVector { blocks, len: d };
        v.mask_tail();
        v
    }

    /// Dimension `d`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff `d == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (d = {})", self.len);
        (self.blocks[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range (d = {})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.blocks[i / 64] |= mask;
        } else {
            self.blocks[i / 64] &= !mask;
        }
    }

    /// Flip bit `i`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range (d = {})", self.len);
        self.blocks[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> u64 {
        self.blocks.iter().map(|b| b.count_ones() as u64).sum()
    }

    /// Hamming distance `||x - y||_1` to another vector of equal dimension.
    pub fn hamming(&self, other: &BitVector) -> u64 {
        assert_eq!(self.len, other.len, "dimension mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a ^ b).count_ones() as u64)
            .sum()
    }

    /// Relative Hamming distance `||x - y||_1 / d` in `[0, 1]`.
    pub fn relative_hamming(&self, other: &BitVector) -> f64 {
        assert!(self.len > 0, "relative distance undefined in dimension 0");
        self.hamming(other) as f64 / self.len as f64
    }

    /// Componentwise complement.
    pub fn complement(&self) -> BitVector {
        let mut v = BitVector {
            blocks: self.blocks.iter().map(|b| !b).collect(),
            len: self.len,
        };
        v.mask_tail();
        v
    }

    /// Map to a scaled hypercube corner on the unit sphere:
    /// bit `b_i` becomes `(2 b_i - 1) / sqrt(d)`. This is the standard
    /// embedding the paper uses to transfer Hamming results to `S^{d-1}`
    /// (§1.1.1: "unit vectors up to a scaling factor sqrt(d)").
    pub fn to_unit_vector(&self) -> DenseVector {
        assert!(self.len > 0);
        let s = 1.0 / (self.len as f64).sqrt();
        DenseVector::new(
            (0..self.len)
                .map(|i| if self.get(i) { s } else { -s })
                .collect(),
        )
    }

    /// Zero out bits beyond `len` in the last block (keeps equality and
    /// popcount honest after complement/random fills).
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

/// A point of `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector {
    components: Vec<f64>,
}

impl DenseVector {
    /// Build from components.
    pub fn new(components: Vec<f64>) -> Self {
        DenseVector { components }
    }

    /// The zero vector of dimension `d`.
    pub fn zeros(d: usize) -> Self {
        DenseVector {
            components: vec![0.0; d],
        }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// Component access.
    pub fn as_slice(&self) -> &[f64] {
        &self.components
    }

    /// Inner product with another vector of equal dimension.
    pub fn dot(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.components
            .iter()
            .zip(&other.components)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Euclidean distance to another vector.
    pub fn euclidean(&self, other: &DenseVector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.components
            .iter()
            .zip(&other.components)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Scale by a constant.
    pub fn scaled(&self, s: f64) -> DenseVector {
        DenseVector::new(self.components.iter().map(|c| c * s).collect())
    }

    /// Negation (the paper's "negate the query point" trick).
    pub fn negated(&self) -> DenseVector {
        self.scaled(-1.0)
    }

    /// Vector sum.
    pub fn add(&self, other: &DenseVector) -> DenseVector {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        DenseVector::new(
            self.components
                .iter()
                .zip(&other.components)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Vector difference `self - other`.
    pub fn sub(&self, other: &DenseVector) -> DenseVector {
        self.add(&other.negated())
    }

    /// Normalize onto the unit sphere. Panics on the zero vector.
    pub fn normalized(&self) -> DenseVector {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self.scaled(1.0 / n)
    }

    /// A vector of `d` i.i.d. standard Gaussians.
    pub fn gaussian(rng: &mut dyn Rng, d: usize) -> Self {
        DenseVector::new((0..d).map(|_| dsh_math::normal::sample(rng)).collect())
    }

    /// A uniformly random point on `S^{d-1}` (normalized Gaussian).
    pub fn random_unit(rng: &mut dyn Rng, d: usize) -> Self {
        loop {
            let v = DenseVector::gaussian(rng, d);
            if v.norm() > 1e-12 {
                return v.normalized();
            }
        }
    }

    /// A uniformly random point in `{-1/sqrt(d), +1/sqrt(d)}^d` (scaled
    /// hypercube corner on the sphere).
    pub fn random_hypercube_corner(rng: &mut dyn Rng, d: usize) -> Self {
        let s = 1.0 / (d as f64).sqrt();
        DenseVector::new(
            (0..d)
                .map(|_| if rng.random_bool(0.5) { s } else { -s })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn bitvector_get_set_flip() {
        let mut v = BitVector::zeros(130);
        assert_eq!(v.count_ones(), 0);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.flip(129);
        assert!(!v.get(129));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn bitvector_hamming() {
        let mut a = BitVector::zeros(100);
        let mut b = BitVector::zeros(100);
        assert_eq!(a.hamming(&b), 0);
        a.set(3, true);
        b.set(99, true);
        assert_eq!(a.hamming(&b), 2);
        b.set(3, true);
        assert_eq!(a.hamming(&b), 1);
        assert!((a.relative_hamming(&b) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn bitvector_complement_distance() {
        let v = BitVector::random(&mut seeded(11), 77);
        let c = v.complement();
        assert_eq!(v.hamming(&c), 77);
        assert_eq!(v.count_ones() + c.count_ones(), 77);
    }

    #[test]
    fn bitvector_ones_and_from_bools() {
        let o = BitVector::ones(70);
        assert_eq!(o.count_ones(), 70);
        let v = BitVector::from_bools(&[true, false, true]);
        assert!(v.get(0) && !v.get(1) && v.get(2));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn constructors_keep_tail_bits_zero() {
        // Tail bits beyond `len` must stay zero in every constructor, or
        // Eq / Hash / hamming silently diverge between equal vectors.
        use std::hash::{BuildHasher, RandomState};
        let hasher = RandomState::new();
        let mut rng = seeded(77);
        for d in [1usize, 7, 63, 64, 65, 70, 127, 128, 130] {
            let rem = d % 64;
            let tail = |v: &BitVector| {
                if rem == 0 {
                    0
                } else {
                    v.blocks.last().unwrap() >> rem
                }
            };
            let o = BitVector::ones(d);
            assert_eq!(tail(&o), 0, "ones({d}) leaked tail bits");
            assert_eq!(o.count_ones(), d as u64);
            assert_eq!(tail(&BitVector::zeros(d)), 0);
            assert_eq!(tail(&BitVector::random(&mut rng, d)), 0);
            assert_eq!(tail(&o.complement()), 0);
            assert_eq!(tail(&BitVector::from_bools(&vec![true; d])), 0);
            // The Eq/Hash/hamming invariants the masking protects.
            let bitwise = BitVector::from_bools(&vec![true; d]);
            assert_eq!(o, bitwise, "d = {d}");
            assert_eq!(hasher.hash_one(&o), hasher.hash_one(&bitwise), "d = {d}");
            assert_eq!(o.hamming(&bitwise), 0);
            assert_eq!(o.complement(), BitVector::zeros(d));
        }
    }

    #[test]
    fn bitvector_random_is_balanced() {
        let mut rng = seeded(42);
        let mut total = 0u64;
        for _ in 0..100 {
            total += BitVector::random(&mut rng, 256).count_ones();
        }
        let frac = total as f64 / (100.0 * 256.0);
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn bitvector_to_unit_vector() {
        let mut v = BitVector::zeros(4);
        v.set(0, true);
        let u = v.to_unit_vector();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((u.as_slice()[0] - 0.5).abs() < 1e-12);
        assert!((u.as_slice()[1] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn hamming_inner_product_correspondence() {
        // For hypercube corners, <u_x, u_y> = 1 - 2 dist_H(x,y)/d = simH.
        let mut rng = seeded(5);
        let x = BitVector::random(&mut rng, 128);
        let y = BitVector::random(&mut rng, 128);
        let alpha = x.to_unit_vector().dot(&y.to_unit_vector());
        let sim = 1.0 - 2.0 * x.relative_hamming(&y);
        assert!((alpha - sim).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn hamming_dimension_mismatch_panics() {
        let a = BitVector::zeros(3);
        let b = BitVector::zeros(4);
        let _ = a.hamming(&b);
    }

    #[test]
    fn dense_vector_ops() {
        let a = DenseVector::new(vec![1.0, 2.0, 2.0]);
        let b = DenseVector::new(vec![0.0, 1.0, 0.0]);
        assert_eq!(a.dot(&b), 2.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.euclidean(&b), (1.0f64 + 1.0 + 4.0).sqrt());
        assert_eq!(a.sub(&b).as_slice(), &[1.0, 1.0, 2.0]);
        assert_eq!(a.negated().as_slice(), &[-1.0, -2.0, -2.0]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_unit_is_unit() {
        let mut rng = seeded(1);
        for _ in 0..10 {
            let v = DenseVector::random_unit(&mut rng, 25);
            assert!((v.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn random_units_nearly_orthogonal_in_high_dim() {
        let mut rng = seeded(2);
        let a = DenseVector::random_unit(&mut rng, 2000);
        let b = DenseVector::random_unit(&mut rng, 2000);
        assert!(a.dot(&b).abs() < 0.1);
    }

    #[test]
    fn hypercube_corner_on_sphere() {
        let mut rng = seeded(3);
        let v = DenseVector::random_hypercube_corner(&mut rng, 64);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn normalize_zero_panics() {
        let _ = DenseVector::zeros(3).normalized();
    }
}

// Property-style tests over randomized inputs (seeded, so deterministic).
// These replace `proptest!` blocks: the crate is built offline and
// proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use dsh_math::rng::seeded;
    use rand::rngs::StdRng;

    fn random_bools(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<bool> {
        let len = rng.random_range(min_len..max_len);
        (0..len).map(|_| rng.random_bool(0.5)).collect()
    }

    fn random_coords(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<f64> {
        let len = rng.random_range(min_len..max_len);
        (0..len).map(|_| rng.random_range(-10.0f64..10.0)).collect()
    }

    #[test]
    fn hamming_is_a_metric() {
        let mut rng = seeded(0xB17);
        for _ in 0..256 {
            let a = random_bools(&mut rng, 1, 200);
            let b = random_bools(&mut rng, 1, 200);
            let c = random_bools(&mut rng, 1, 200);
            let n = a.len().min(b.len()).min(c.len());
            let x = BitVector::from_bools(&a[..n]);
            let y = BitVector::from_bools(&b[..n]);
            let z = BitVector::from_bools(&c[..n]);
            // Symmetry, identity, triangle inequality.
            assert_eq!(x.hamming(&y), y.hamming(&x));
            assert_eq!(x.hamming(&x), 0);
            assert!(x.hamming(&z) <= x.hamming(&y) + y.hamming(&z));
        }
    }

    #[test]
    fn complement_involution() {
        let mut rng = seeded(0xB18);
        for _ in 0..256 {
            let bits = random_bools(&mut rng, 1, 200);
            let v = BitVector::from_bools(&bits);
            assert_eq!(v.complement().complement(), v);
        }
    }

    #[test]
    fn dense_cauchy_schwarz() {
        let mut rng = seeded(0xB19);
        for _ in 0..256 {
            let a = random_coords(&mut rng, 1, 20);
            let b = random_coords(&mut rng, 1, 20);
            let n = a.len().min(b.len());
            let x = DenseVector::new(a[..n].to_vec());
            let y = DenseVector::new(b[..n].to_vec());
            assert!(x.dot(&y).abs() <= x.norm() * y.norm() + 1e-9);
        }
    }

    #[test]
    fn dense_triangle_inequality() {
        let mut rng = seeded(0xB1A);
        for _ in 0..256 {
            let a = random_coords(&mut rng, 3, 10);
            let b = random_coords(&mut rng, 3, 10);
            let n = a.len().min(b.len());
            let x = DenseVector::new(a[..n].to_vec());
            let y = DenseVector::new(b[..n].to_vec());
            let z = DenseVector::zeros(n);
            assert!(x.euclidean(&y) <= x.euclidean(&z) + z.euclidean(&y) + 1e-9);
        }
    }
}
