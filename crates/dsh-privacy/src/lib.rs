//! Privacy-preserving distance estimation (paper §6.4).
//!
//! Reduces "is `dist(q, x) <= r`?" to private set intersection on vectors
//! of distance-sensitive hash values with a step-function CPF: collisions
//! are (almost) equally likely anywhere inside `[0, r]` — so, unlike a
//! standard LSH, the intersection does not reveal *how* close the points
//! are — and polynomially less likely beyond `c r`.
//!
//! * [`psi`] — a simulated PSI functionality (an honest dealer revealing
//!   only the component-wise intersection) plus digest truncation to
//!   `O(log t)` bits;
//! * [`protocol`] — parameter selection `t ~ (1/delta)^{rho/(1-rho)}`,
//!   the Yes/No decision rule, and leakage accounting in bits.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod attack;
pub mod protocol;
pub mod psi;

pub use attack::{profile_signal, SignalProfile};
pub use protocol::{DistanceEstimationProtocol, ProtocolOutcome};
pub use psi::{intersection_positions, PsiTranscript};
