//! The triangulation attack of Riazi et al. \[45\] and the flat-CPF defence
//! (§6.4's closing discussion).
//!
//! An adversary who sees the PSI transcript learns the intersection size.
//! Under a standard LSH the expected intersection is `N f(dist)` with `f`
//! steeply decreasing, so the count is a high-resolution proximity signal
//! (close to a distance oracle — which is what enables triangulation).
//! A step-function CPF makes the signal (nearly) constant over the whole
//! sensitive range `[0, r]`.
//!
//! This module quantifies the leak: it simulates transcripts at a set of
//! distances and reports how well a maximum-likelihood adversary can
//! distinguish them from the intersection size alone.

use crate::protocol::DistanceEstimationProtocol;
use dsh_core::points::AsRow;
use rand::Rng;

/// Empirical distribution of intersection sizes at one distance.
#[derive(Debug, Clone)]
pub struct SignalProfile {
    /// The distances profiled.
    pub distances: Vec<f64>,
    /// Mean intersection size at each distance.
    pub mean_sizes: Vec<f64>,
    /// Total-variation-style distinguishability of adjacent distances:
    /// `|mean_i - mean_{i+1}| / sqrt(max(mean_i, mean_{i+1}, 1))` — the
    /// per-transcript signal-to-noise of the count (Poisson-scale noise).
    pub adjacent_snr: Vec<f64>,
}

impl SignalProfile {
    /// The largest adjacent signal-to-noise ratio: > ~1 means a single
    /// transcript reveals which of two adjacent distances is at play.
    pub fn worst_snr(&self) -> f64 {
        self.adjacent_snr.iter().cloned().fold(0.0, f64::max)
    }
}

/// Profile the intersection-size signal of a protocol across distances.
///
/// `make_pair(rng, dist)` must produce an `(x, q)` pair at the requested
/// distance; `runs` transcripts are simulated per distance.
pub fn profile_signal<P: ?Sized, Q, G>(
    protocol: &DistanceEstimationProtocol<P>,
    distances: &[f64],
    runs: usize,
    rng: &mut dyn Rng,
    mut make_pair: G,
) -> SignalProfile
where
    Q: AsRow<Row = P>,
    G: FnMut(&mut dyn Rng, f64) -> (Q, Q),
{
    assert!(!distances.is_empty() && runs > 0);
    let mut mean_sizes = Vec::with_capacity(distances.len());
    for &dist in distances {
        let mut total = 0usize;
        for _ in 0..runs {
            let (x, q) = make_pair(rng, dist);
            total += protocol.run(&x, &q).intersection_size;
        }
        mean_sizes.push(total as f64 / runs as f64);
    }
    let adjacent_snr = mean_sizes
        .windows(2)
        .map(|w| (w[0] - w[1]).abs() / w[0].max(w[1]).max(1.0).sqrt())
        .collect();
    SignalProfile {
        distances: distances.to_vec(),
        mean_sizes,
        adjacent_snr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::combinators::{Concat, Power};
    use dsh_core::points::BitVector;
    use dsh_core::BoxedDshFamily;
    use dsh_data::hamming_data::point_at_distance;
    use dsh_hamming::{AntiBitSampling, BitSampling};
    use dsh_math::rng::seeded;

    fn pair_at(rng: &mut dyn rand::Rng, d: usize, dist: f64) -> (BitVector, BitVector) {
        let x = BitVector::random(rng, d);
        let q = point_at_distance(rng, &x, dist.round() as usize);
        (x, q)
    }

    #[test]
    fn plain_lsh_signal_is_strong_step_signal_is_weak() {
        let d = 256;
        let k = 12usize;
        let n_hashes = 1500;
        let mut rng = seeded(0xA71);

        let plain = Power::new(BitSampling::new(d), k);
        let proto_plain = DistanceEstimationProtocol::new(&plain, n_hashes, 16, &mut rng);

        let step: Concat<[u64]> = Concat::new(vec![
            Box::new(Power::new(BitSampling::new(d), k)) as BoxedDshFamily<[u64]>,
            Box::new(AntiBitSampling::new(d)),
        ]);
        let proto_step = DistanceEstimationProtocol::new(&step, n_hashes, 16, &mut rng);

        // Distances within the sensitive range [0, 0.1 d].
        let distances = [0.0, 6.0, 13.0, 26.0];
        let runs = 40;
        let plain_profile = profile_signal(&proto_plain, &distances, runs, &mut rng, |r, dist| {
            pair_at(r, d, dist)
        });
        let step_profile = profile_signal(&proto_step, &distances, runs, &mut rng, |r, dist| {
            pair_at(r, d, dist)
        });

        // The plain LSH signal collapses steeply: dist 0 vs dist 26 is
        // many noise standard deviations apart.
        assert!(
            plain_profile.worst_snr() > 3.0,
            "plain LSH should be distinguishable, snr {}",
            plain_profile.worst_snr()
        );
        // The step family's in-range signal (excluding the designed zero
        // at distance 0) is much flatter.
        let step_inner: f64 = step_profile.adjacent_snr[1..]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        assert!(
            step_inner < plain_profile.worst_snr() / 2.0,
            "step family should at least halve the in-range signal: {} vs {}",
            step_inner,
            plain_profile.worst_snr()
        );
    }

    #[test]
    fn profile_reports_shapes() {
        let d = 64;
        let fam = BitSampling::new(d);
        let mut rng = seeded(0xA72);
        let proto = DistanceEstimationProtocol::new(&fam, 100, 8, &mut rng);
        let profile = profile_signal(&proto, &[0.0, 32.0], 20, &mut rng, |r, dist| {
            pair_at(r, d, dist)
        });
        assert_eq!(profile.mean_sizes.len(), 2);
        assert_eq!(profile.adjacent_snr.len(), 1);
        // Identical points collide everywhere; half-distance points in
        // roughly half the positions.
        assert!((profile.mean_sizes[0] - 100.0).abs() < 1e-9);
        assert!((profile.mean_sizes[1] - 50.0).abs() < 10.0);
    }
}
