//! Simulated private set intersection (PSI) over hash-value vectors.
//!
//! The paper reduces private distance estimation to PSI of the vectors
//! `(h_1(x), h_2(x), ...)` and `(g_1(q), g_2(q), ...)` and cites
//! linear-complexity PSI protocols \[24, 26\] as a black box. We model the
//! PSI as an ideal functionality: an honest dealer that reveals *only* the
//! component-wise intersection (positions and matching digests) and
//! nothing else. What the library evaluates — and what the paper's §6.4
//! actually contributes — is the DSH-side reduction: how much information
//! the intersection itself leaks, and the (epsilon, delta) error trade-off.

use dsh_core::hash::{mix64, truncate};

/// Component-wise intersection positions of two equal-length digest
/// vectors: the ideal PSI output.
pub fn intersection_positions(a: &[u64], b: &[u64]) -> Vec<usize> {
    assert_eq!(a.len(), b.len(), "PSI inputs must have equal length");
    a.iter()
        .zip(b)
        .enumerate()
        .filter(|(_, (x, y))| x == y)
        .map(|(i, _)| i)
        .collect()
}

/// Compress a raw 64-bit hash value to a `bits`-bit digest (the paper's
/// "hash them to O(log t) bits using universal hashing"). Truncation after
/// a strong mix behaves like a universal digest; two distinct values
/// collide with probability `2^-bits`.
pub fn digest(value: u64, bits: u32) -> u64 {
    truncate(mix64(value), bits)
}

/// The transcript of one PSI execution, with leakage accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct PsiTranscript {
    /// Positions where the digests matched.
    pub positions: Vec<usize>,
    /// Digest width in bits.
    pub digest_bits: u32,
    /// Total vector length.
    pub length: usize,
}

impl PsiTranscript {
    /// Run the ideal functionality on two digest vectors.
    pub fn run(a: &[u64], b: &[u64], digest_bits: u32) -> Self {
        PsiTranscript {
            positions: intersection_positions(a, b),
            digest_bits,
            length: a.len(),
        }
    }

    /// Intersection cardinality.
    pub fn intersection_size(&self) -> usize {
        self.positions.len()
    }

    /// Upper bound on the bits of information revealed about the other
    /// party's vector: each matching position reveals its index
    /// (`log2 length`) and digest (`digest_bits`). This is the paper's
    /// `O(log(1/eps) log t)` expected leakage when the expected
    /// intersection is `O(log(1/eps))`.
    pub fn leakage_bits(&self) -> f64 {
        if self.length <= 1 {
            return self.positions.len() as f64 * self.digest_bits as f64;
        }
        self.positions.len() as f64 * (self.digest_bits as f64 + (self.length as f64).log2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_basic() {
        let a = [1u64, 2, 3, 4, 5];
        let b = [1u64, 9, 3, 8, 5];
        assert_eq!(intersection_positions(&a, &b), vec![0, 2, 4]);
        assert_eq!(intersection_positions(&a, &a).len(), 5);
        assert!(intersection_positions(&a[..0], &b[..0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = intersection_positions(&[1], &[1, 2]);
    }

    #[test]
    fn digest_is_deterministic_and_bounded() {
        for bits in [1u32, 8, 16, 63] {
            let d1 = digest(12345, bits);
            let d2 = digest(12345, bits);
            assert_eq!(d1, d2);
            assert!(d1 < (1u64 << bits));
        }
    }

    #[test]
    fn digest_collision_rate_near_uniform() {
        // 8-bit digests of distinct values should collide at ~1/256.
        let bits = 8;
        let n = 20_000u64;
        let mut collisions = 0u64;
        for i in 0..n {
            if digest(2 * i, bits) == digest(2 * i + 1, bits) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / n as f64;
        assert!((rate - 1.0 / 256.0).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn transcript_accounting() {
        let a = [7u64, 8, 9, 10];
        let b = [7u64, 0, 9, 0];
        let t = PsiTranscript::run(&a, &b, 12);
        assert_eq!(t.intersection_size(), 2);
        assert_eq!(t.positions, vec![0, 2]);
        // 2 matches * (12 + log2 4) = 2 * 14 = 28 bits.
        assert!((t.leakage_bits() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn empty_intersection_leaks_nothing() {
        let t = PsiTranscript::run(&[1, 2], &[3, 4], 16);
        assert_eq!(t.intersection_size(), 0);
        assert_eq!(t.leakage_bits(), 0.0);
    }
}
