//! The §6.4 distance-estimation protocol.
//!
//! Two parties hold points `x` (server) and `q` (client) and want to learn
//! whether `dist(x, q) <= r` — and as little else as possible. Using a DSH
//! family with a *step-function* CPF (collision probability ~`1/t`
//! everywhere on `[0, r]`, at most `t^{-1/rho}` beyond `c r`):
//!
//! 1. the parties share `N = O(t log(1/eps))` sampled pairs
//!    `(h_i, g_i)` (public randomness);
//! 2. each computes its digest vector (`h_i(x)` resp. `g_i(q)`, compressed
//!    to `O(log t)` bits);
//! 3. an ideal PSI reveals the component-wise intersection;
//! 4. answer "Yes" iff the intersection is nonempty.
//!
//! Close pairs collide somewhere with probability `>= 1 - eps`; far pairs
//! trigger a false "Yes" with probability `delta = O(t log(1/eps) /
//! t^{1/rho})`; and — the privacy point — because the CPF is *flat* on
//! `[0, r]`, the intersection size does not reveal how close the points
//! are, unlike a standard LSH whose collision counts grow sharply as
//! `dist -> 0` (the triangulation attack of \[45\]).

use crate::psi::{digest, PsiTranscript};
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::AsRow;
use rand::Rng;

/// Outcome of one protocol execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolOutcome {
    /// The protocol's answer to "is dist(x, q) <= r?".
    pub answer: bool,
    /// Size of the revealed intersection.
    pub intersection_size: usize,
    /// Information revealed (bits), per the PSI accounting.
    pub leakage_bits: f64,
}

/// A configured instance of the distance-estimation protocol for points of
/// type `P`. Sampling the hash pairs at construction models the shared
/// public randomness.
pub struct DistanceEstimationProtocol<P: ?Sized> {
    pairs: Vec<HasherPair<P>>,
    digest_bits: u32,
}

impl<P: ?Sized> DistanceEstimationProtocol<P> {
    /// Instantiate with `num_hashes` shared pairs from `family` and
    /// digests of `digest_bits` bits.
    pub fn new(
        family: &(impl DshFamily<P> + ?Sized),
        num_hashes: usize,
        digest_bits: u32,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(num_hashes >= 1);
        assert!((1..=64).contains(&digest_bits));
        DistanceEstimationProtocol {
            pairs: (0..num_hashes).map(|_| family.sample(rng)).collect(),
            digest_bits,
        }
    }

    /// The number of hash pairs `N = O(t log(1/eps))` needed so that a
    /// pair colliding with probability at least `f_min` (the CPF minimum
    /// over `[0, r]`) yields a nonempty intersection with probability at
    /// least `1 - eps`: `N = ceil(ln(1/eps) / f_min)`.
    pub fn required_hashes(f_min: f64, eps: f64) -> usize {
        assert!(f_min > 0.0 && f_min <= 1.0);
        assert!(eps > 0.0 && eps < 1.0);
        ((1.0 / eps).ln() / f_min).ceil() as usize
    }

    /// The paper's parameter rule for the far-distance regime: to achieve
    /// false-positive probability `delta` with exponent `rho`, take
    /// `t ~ (1/delta)^{rho / (1 - rho)}`.
    pub fn suggested_t(delta: f64, rho: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0);
        assert!(rho > 0.0 && rho < 1.0);
        (1.0 / delta).powf(rho / (1.0 - rho))
    }

    /// Number of shared hash pairs.
    pub fn num_hashes(&self) -> usize {
        self.pairs.len()
    }

    /// The server's digest vector for its point `x` (an owned point, a
    /// store row view, or a raw row).
    pub fn server_digests<X>(&self, x: &X) -> Vec<u64>
    where
        X: AsRow<Row = P> + ?Sized,
    {
        self.pairs
            .iter()
            .map(|p| digest(p.data.hash(x.as_row()), self.digest_bits))
            .collect()
    }

    /// The client's digest vector for its query `q`.
    pub fn client_digests<Q>(&self, q: &Q) -> Vec<u64>
    where
        Q: AsRow<Row = P> + ?Sized,
    {
        self.pairs
            .iter()
            .map(|p| digest(p.query.hash(q.as_row()), self.digest_bits))
            .collect()
    }

    /// Execute the protocol end-to-end through the ideal PSI.
    pub fn run<X, Q>(&self, x: &X, q: &Q) -> ProtocolOutcome
    where
        X: AsRow<Row = P> + ?Sized,
        Q: AsRow<Row = P> + ?Sized,
    {
        let transcript = PsiTranscript::run(
            &self.server_digests(x),
            &self.client_digests(q),
            self.digest_bits,
        );
        ProtocolOutcome {
            answer: transcript.intersection_size() > 0,
            intersection_size: transcript.intersection_size(),
            leakage_bits: transcript.leakage_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::combinators::{Concat, Power};
    use dsh_core::points::BitVector;
    use dsh_core::BoxedDshFamily;
    use dsh_data::hamming_data;
    use dsh_hamming::{AntiBitSampling, BitSampling};
    use dsh_math::rng::seeded;

    /// Step-ish Hamming family for testing: CPF (1-t)^k spread over the
    /// close range.
    fn close_family(d: usize, k: usize) -> Power<BitSampling> {
        Power::new(BitSampling::new(d), k)
    }

    #[test]
    fn close_pairs_answer_yes() {
        let d = 256;
        let k = 10;
        let fam = close_family(d, k);
        let f_min = 0.95f64.powi(k as i32); // CPF at relative distance 0.05
        let n_hashes = DistanceEstimationProtocol::<[u64]>::required_hashes(f_min, 0.05);
        let mut rng = seeded(401);
        let proto = DistanceEstimationProtocol::new(&fam, n_hashes, 16, &mut rng);

        let mut yes = 0;
        let runs = 100;
        for _ in 0..runs {
            let x = BitVector::random(&mut rng, d);
            let q = hamming_data::point_at_distance(&mut rng, &x, d / 20);
            if proto.run(&x, &q).answer {
                yes += 1;
            }
        }
        assert!(yes >= 90, "close pairs answered yes only {yes}/{runs}");
    }

    #[test]
    fn far_pairs_answer_no() {
        let d = 256;
        let k = 30; // sharp decay: f(0.5) = 2^-30
        let fam = close_family(d, k);
        let f_min = 0.95f64.powi(k as i32);
        let n_hashes = DistanceEstimationProtocol::<[u64]>::required_hashes(f_min, 0.1);
        let mut rng = seeded(402);
        let proto = DistanceEstimationProtocol::new(&fam, n_hashes, 24, &mut rng);

        let mut false_yes = 0;
        let runs = 50;
        for _ in 0..runs {
            let x = BitVector::random(&mut rng, d);
            let q = hamming_data::point_at_distance(&mut rng, &x, d / 2);
            if proto.run(&x, &q).answer {
                false_yes += 1;
            }
        }
        assert!(false_yes <= 5, "far pairs answered yes {false_yes}/{runs}");
    }

    #[test]
    fn flat_cpf_hides_distance_within_range() {
        // The privacy property: with a unimodal/flat-ish CPF the expected
        // intersection size at distance 0 vs distance r differs far less
        // than with a plain LSH. Compare (1-t)^k t (zero at t=0!) against
        // (1-t)^k.
        let d = 256;
        let k = 10;
        let plain = close_family(d, k);
        let step: Concat<[u64]> = Concat::new(vec![
            Box::new(close_family(d, k)) as BoxedDshFamily<[u64]>,
            Box::new(AntiBitSampling::new(d)),
        ]);
        let mut rng = seeded(403);
        let n = 4000;
        let proto_plain = DistanceEstimationProtocol::new(&plain, n, 16, &mut rng);
        let proto_step = DistanceEstimationProtocol::new(&step, n, 16, &mut rng);

        let x = BitVector::random(&mut rng, d);
        let identical = x.clone();
        let at_r = hamming_data::point_at_distance(&mut rng, &x, d / 10); // t = 0.1

        // Plain LSH: intersection at distance 0 is the full vector; at r
        // it is ~ (0.9)^k N. Ratio huge -> leaks proximity.
        let p0 = proto_plain.run(&x, &identical).intersection_size as f64;
        let pr = proto_plain.run(&x, &at_r).intersection_size as f64;
        // Step family: f(0) = 0 (!) and f(0.1) moderate: the *identical*
        // point is indistinguishable-or-smaller, not a blaring signal.
        let s0 = proto_step.run(&x, &identical).intersection_size as f64;
        let sr = proto_step.run(&x, &at_r).intersection_size as f64;
        assert!(
            p0 / pr.max(1.0) > 2.5,
            "plain ratio {} too small for the test",
            p0 / pr.max(1.0)
        );
        assert!(
            s0 <= sr,
            "step family must not spike at distance 0 ({s0} vs {sr})"
        );
    }

    #[test]
    fn leakage_scales_with_intersection() {
        let d = 64;
        let fam = close_family(d, 2);
        let mut rng = seeded(404);
        let proto = DistanceEstimationProtocol::new(&fam, 500, 8, &mut rng);
        let x = BitVector::random(&mut rng, d);
        let out = proto.run(&x, &x);
        // Identical points collide in every pair for the symmetric family.
        assert_eq!(out.intersection_size, 500);
        assert!(out.answer);
        assert!((out.leakage_bits - 500.0 * (8.0 + 500f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn parameter_rules() {
        // required_hashes: ceil(ln(1/eps)/f_min).
        assert_eq!(
            DistanceEstimationProtocol::<[u64]>::required_hashes(0.1, 0.05),
            ((1.0f64 / 0.05).ln() / 0.1).ceil() as usize
        );
        // suggested_t is monotone decreasing in delta and increasing in rho.
        let t1 = DistanceEstimationProtocol::<[u64]>::suggested_t(0.01, 0.5);
        let t2 = DistanceEstimationProtocol::<[u64]>::suggested_t(0.001, 0.5);
        assert!(t2 > t1);
        let t3 = DistanceEstimationProtocol::<[u64]>::suggested_t(0.01, 0.25);
        assert!(t3 < t1);
        // rho = 1/2: t = (1/delta)^1.
        assert!((t1 - 100.0).abs() < 1e-9);
    }
}
