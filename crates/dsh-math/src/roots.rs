//! Polynomial root finding: Aberth–Ehrlich simultaneous iteration.
//!
//! Theorem 5.2 factorizes the target CPF polynomial `P(t)` over ℂ and
//! classifies each root by sign of its real part and magnitude. The paper
//! treats factorization as given; we implement it. Aberth–Ehrlich converges
//! cubically for simple roots and is robust for the modest degrees
//! (`k <= ~30`) that arise for CPF polynomials.

use crate::complex::Complex;
use crate::poly::Polynomial;

/// All complex roots of `p`, each appearing according to multiplicity.
///
/// Near-real roots are snapped onto the real axis, and complex roots are
/// adjusted into exactly conjugate pairs so that downstream consumers
/// (Theorem 5.2's case analysis) can rely on closure under conjugation.
///
/// # Panics
/// Panics if `p` is constant (no roots to find) or zero, or if the
/// iteration fails to converge (which does not happen for the well-scaled
/// polynomials the library produces; degree is asserted `<= 64`).
pub fn find_roots(p: &Polynomial) -> Vec<Complex> {
    let deg = p
        .degree()
        .expect("zero polynomial has every number as root");
    assert!(deg >= 1, "constant polynomial has no roots");
    assert!(deg <= 64, "root finder intended for moderate degrees");

    // Peel off exact zero roots first: they are common (monomial factors)
    // and slow the iteration down.
    let (zeros, q) = p.factor_out_zero_roots();
    let mut roots = vec![Complex::ZERO; zeros];
    if let Some(qdeg) = q.degree() {
        if qdeg >= 1 {
            roots.extend(aberth(&q));
        }
    }
    canonicalize(&mut roots);
    roots
}

/// Aberth–Ehrlich iteration on a polynomial with nonzero constant term.
fn aberth(p: &Polynomial) -> Vec<Complex> {
    let deg = p.degree().unwrap();
    let dp = p.derivative();

    // Initial guesses: points on a circle of radius given by the Cauchy
    // bound, slightly perturbed off symmetric configurations.
    let lead = p.leading().abs();
    let radius = 1.0
        + p.coeffs()
            .iter()
            .take(deg)
            .map(|c| (c / lead).abs())
            .fold(0.0f64, f64::max);
    let mut z: Vec<Complex> = (0..deg)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / deg as f64 + 0.4;
            Complex::cis(theta) * (radius * 0.8)
        })
        .collect();

    let scale = p.coeffs().iter().map(|c| c.abs()).fold(0.0f64, f64::max);
    for _iter in 0..200 {
        let mut max_step = 0.0f64;
        for i in 0..deg {
            let pz = p.eval_complex(z[i]);
            if pz.abs() <= 1e-300 {
                continue;
            }
            let dpz = dp.eval_complex(z[i]);
            let newton = if dpz.abs() > 0.0 {
                pz / dpz
            } else {
                Complex::new(1e-6, 1e-6)
            };
            let mut repulsion = Complex::ZERO;
            for (j, &zj) in z.iter().enumerate() {
                if j != i {
                    let diff = z[i] - zj;
                    if diff.abs() > 1e-30 {
                        repulsion += diff.inv();
                    } else {
                        // Coincident iterates: nudge apart.
                        repulsion += Complex::new(1e6, 1e6);
                    }
                }
            }
            let denom = Complex::ONE - newton * repulsion;
            let step = if denom.abs() > 1e-30 {
                newton / denom
            } else {
                newton
            };
            z[i] -= step;
            max_step = max_step.max(step.abs());
        }
        if max_step < 1e-14 * (1.0 + radius) {
            break;
        }
    }

    // Verify convergence: |P(z_i)| should be tiny relative to the
    // coefficient scale (multiple roots converge linearly, so allow slack).
    for &zi in &z {
        let residual = p.eval_complex(zi).abs();
        assert!(
            residual <= 1e-6 * scale * (1.0 + zi.abs().powi(deg as i32)),
            "Aberth iteration failed to converge: residual {residual} at {zi:?}"
        );
    }
    z
}

/// Snap near-real roots to the real axis and pair complex roots into exact
/// conjugate pairs.
fn canonicalize(roots: &mut [Complex]) {
    let scale = 1.0 + roots.iter().map(|r| r.abs()).fold(0.0f64, f64::max);
    for r in roots.iter_mut() {
        if r.im.abs() <= 1e-9 * scale {
            r.im = 0.0;
        }
    }
    // Greedy conjugate pairing among the complex roots.
    let mut used = vec![false; roots.len()];
    for i in 0..roots.len() {
        if used[i] || roots[i].im == 0.0 {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for j in (i + 1)..roots.len() {
            if used[j] || roots[j].im == 0.0 || roots[j].im.signum() == roots[i].im.signum() {
                continue;
            }
            let d = (roots[j] - roots[i].conj()).abs();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((j, d));
            }
        }
        if let Some((j, d)) = best {
            assert!(
                d <= 1e-6 * scale,
                "complex roots not closed under conjugation (gap {d})"
            );
            let avg_re = 0.5 * (roots[i].re + roots[j].re);
            let avg_im = 0.5 * (roots[i].im.abs() + roots[j].im.abs());
            let sign = roots[i].im.signum();
            roots[i] = Complex::new(avg_re, sign * avg_im);
            roots[j] = roots[i].conj();
            used[i] = true;
            used[j] = true;
        } else {
            panic!("unpaired complex root {:?}", roots[i]);
        }
    }
    // Deterministic order: by real part, then imaginary part.
    roots.sort_by(|a, b| {
        a.re.partial_cmp(&b.re)
            .unwrap()
            .then(a.im.partial_cmp(&b.im).unwrap())
    });
}

/// Roots grouped the way Theorem 5.2's case analysis consumes them:
/// real roots individually, complex roots as conjugate pairs (the
/// representative has positive imaginary part).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedRoots {
    /// Real roots (with multiplicity).
    pub real: Vec<f64>,
    /// One representative per conjugate pair, `im > 0`.
    pub complex_pairs: Vec<Complex>,
}

/// Group [`find_roots`] output into real roots and conjugate pairs.
pub fn group_roots(roots: &[Complex]) -> GroupedRoots {
    let mut real = Vec::new();
    let mut complex_pairs = Vec::new();
    for &r in roots {
        if r.im == 0.0 {
            real.push(r.re);
        } else if r.im > 0.0 {
            complex_pairs.push(r);
        }
    }
    GroupedRoots {
        real,
        complex_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roots_of(coeffs: Vec<f64>) -> Vec<Complex> {
        find_roots(&Polynomial::new(coeffs))
    }

    fn assert_contains_root(roots: &[Complex], want: Complex) {
        assert!(
            roots.iter().any(|r| (*r - want).abs() < 1e-7),
            "roots {roots:?} missing {want:?}"
        );
    }

    #[test]
    fn linear() {
        let r = roots_of(vec![-3.0, 1.5]); // 1.5t - 3 => t = 2
        assert_eq!(r.len(), 1);
        assert_contains_root(&r, Complex::from_real(2.0));
    }

    #[test]
    fn quadratic_real_roots() {
        let r = roots_of(vec![2.0, -3.0, 1.0]); // (t-1)(t-2)
        assert_eq!(r.len(), 2);
        assert_contains_root(&r, Complex::from_real(1.0));
        assert_contains_root(&r, Complex::from_real(2.0));
        assert!(r.iter().all(|z| z.im == 0.0));
    }

    #[test]
    fn quadratic_complex_roots() {
        let r = roots_of(vec![2.0, -2.0, 1.0]); // t^2 - 2t + 2 => 1 +- i
        assert_eq!(r.len(), 2);
        assert_contains_root(&r, Complex::new(1.0, 1.0));
        assert_contains_root(&r, Complex::new(1.0, -1.0));
        // Exact conjugates after canonicalization.
        assert_eq!(r[0].re, r[1].re);
        assert_eq!(r[0].im, -r[1].im);
    }

    #[test]
    fn zero_roots_peeled() {
        // t^2 (t - 5)
        let r = roots_of(vec![0.0, 0.0, -5.0, 1.0]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().filter(|z| z.abs() < 1e-12).count(), 2);
        assert_contains_root(&r, Complex::from_real(5.0));
    }

    #[test]
    fn chebyshev_like_degree_five() {
        // 16t^5 - 20t^3 + 5t: roots are sin(k pi / 10)-style values; known
        // roots: 0, +-cos(pi/10)... Actually these are the roots of the
        // Chebyshev T5(t): cos((2k+1)pi/10).
        let r = roots_of(vec![0.0, 5.0, 0.0, -20.0, 0.0, 16.0]);
        assert_eq!(r.len(), 5);
        for k in 0..5 {
            let want = ((2 * k + 1) as f64 * std::f64::consts::PI / 10.0).cos();
            assert_contains_root(&r, Complex::from_real(want));
        }
    }

    #[test]
    fn reconstruction_roundtrip() {
        let p = Polynomial::new(vec![0.7, -1.3, 0.2, 2.0, 1.0]);
        let roots = find_roots(&p);
        let q = Polynomial::from_roots(p.leading(), &roots);
        for (a, b) in p.coeffs().iter().zip(q.coeffs()) {
            assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", p.coeffs(), q.coeffs());
        }
    }

    #[test]
    fn multiple_root() {
        // (t-1)^3 = t^3 - 3t^2 + 3t - 1: triple root at 1; linear
        // convergence, looser tolerance.
        let r = roots_of(vec![-1.0, 3.0, -3.0, 1.0]);
        assert_eq!(r.len(), 3);
        for z in &r {
            assert!((*z - Complex::ONE).abs() < 1e-3, "root {z:?}");
        }
    }

    #[test]
    fn grouping() {
        let r = roots_of(vec![2.0, -2.0, 1.0]); // 1 +- i
        let g = group_roots(&r);
        assert!(g.real.is_empty());
        assert_eq!(g.complex_pairs.len(), 1);
        assert!(g.complex_pairs[0].im > 0.0);

        let r2 = roots_of(vec![2.0, -3.0, 1.0]); // 1, 2
        let g2 = group_roots(&r2);
        assert_eq!(g2.real.len(), 2);
        assert!(g2.complex_pairs.is_empty());
    }

    #[test]
    fn negative_real_part_pair() {
        // t^2 + 2t + 5 => -1 +- 2i
        let r = roots_of(vec![5.0, 2.0, 1.0]);
        assert_contains_root(&r, Complex::new(-1.0, 2.0));
        assert_contains_root(&r, Complex::new(-1.0, -2.0));
    }
}

// Property-style tests over randomized inputs (seeded, so deterministic).
// These replace `proptest!` blocks: the crate is built offline and
// proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn roots_reconstruct_polynomial() {
        let mut rng = seeded(0x2007);
        let mut cases = 0;
        while cases < 64 {
            let len = rng.random_range(2usize..7);
            let coeffs: Vec<f64> = (0..len).map(|_| rng.random_range(-5.0f64..5.0)).collect();
            // proptest's prop_filter: leading coefficient bounded away
            // from zero so deflation is well-conditioned.
            if coeffs.last().map(|&l| l.abs() > 0.1) != Some(true) {
                continue;
            }
            let p = Polynomial::new(coeffs);
            if p.degree().map(|d| d >= 1) != Some(true) {
                continue;
            }
            cases += 1;
            let roots = find_roots(&p);
            assert_eq!(roots.len(), p.degree().unwrap());
            let q = Polynomial::from_roots(p.leading(), &roots);
            let scale = p.abs_coeff_sum();
            for i in 0..p.coeffs().len() {
                assert!(
                    (p.coeff(i) - q.coeff(i)).abs() < 1e-4 * (1.0 + scale),
                    "coeff {} mismatch: {} vs {}",
                    i,
                    p.coeff(i),
                    q.coeff(i)
                );
            }
        }
    }

    #[test]
    fn real_polys_from_random_roots() {
        let mut rng = seeded(0x2008);
        let mut cases = 0;
        while cases < 64 {
            let n_reals = rng.random_range(0usize..3);
            let n_pairs = rng.random_range(0usize..2);
            if n_reals + 2 * n_pairs == 0 {
                continue;
            }
            cases += 1;
            let mut roots: Vec<Complex> = (0..n_reals)
                .map(|_| Complex::from_real(rng.random_range(-3.0f64..3.0)))
                .collect();
            for _ in 0..n_pairs {
                let re = rng.random_range(-2.0f64..2.0);
                let im = rng.random_range(0.1f64..2.0);
                roots.push(Complex::new(re, im));
                roots.push(Complex::new(re, -im));
            }
            let p = Polynomial::from_roots(1.0, &roots);
            let found = find_roots(&p);
            assert_eq!(found.len(), roots.len());
            // Every constructed root is rediscovered.
            for want in &roots {
                assert!(
                    found.iter().any(|f| (*f - *want).abs() < 1e-4),
                    "missing root {want:?} in {found:?}"
                );
            }
        }
    }
}
