//! Symmetric alpha-stable sampling (Chambers–Mallows–Stuck).
//!
//! §2 of the paper notes that unit-sphere results extend to `l_s` spaces
//! for `0 < s <= 2` through Rahimi–Recht random features applied to the
//! characteristic functions of `s`-stable distributions. Sampling those
//! distributions is the substrate; the CMS method generates exact
//! variates for every stability index `s` in `(0, 2]`.
//!
//! The characteristic function of a standard symmetric `s`-stable variable
//! is `E[e^{i w u}] = e^{-|u|^s}`, which is what makes the random-feature
//! inner products depend on `||x - y||_s` only.

use rand::Rng;

/// Draw one standard symmetric `s`-stable variate (`0 < s <= 2`).
///
/// For `s = 2` this is `sqrt(2) *` standard normal (characteristic
/// function `e^{-u^2}`); for `s = 1` it is standard Cauchy.
pub fn sample_stable(rng: &mut dyn Rng, s: f64) -> f64 {
    assert!(s > 0.0 && s <= 2.0, "stability index must be in (0, 2]");
    // Uniform angle in (-pi/2, pi/2) and standard exponential.
    let theta = (rng.random::<f64>() - 0.5) * std::f64::consts::PI;
    let w = -((1.0f64 - rng.random::<f64>()).ln()); // Exp(1), guards log(0)
    if (s - 1.0).abs() < 1e-12 {
        return theta.tan();
    }
    if (s - 2.0).abs() < 1e-12 {
        // Box–Muller style exact normal with variance 2.
        let u: f64 = 1.0 - rng.random::<f64>();
        let v: f64 = rng.random::<f64>();
        return 2.0 * (-u.ln()).sqrt() * (std::f64::consts::PI * v).cos();
    }
    // General CMS formula (symmetric case, beta = 0):
    //   X = sin(s theta) / cos(theta)^{1/s}
    //       * (cos((1 - s) theta) / W)^{(1 - s)/s}.
    (s * theta).sin() / theta.cos().powf(1.0 / s)
        * (((1.0 - s) * theta).cos() / w).powf((1.0 - s) / s)
}

/// Fill a vector with i.i.d. standard symmetric `s`-stable variates.
pub fn sample_stable_vec(rng: &mut dyn Rng, s: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| sample_stable(rng, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    /// Empirical characteristic function `E[cos(u X)]` (the imaginary part
    /// vanishes by symmetry).
    fn empirical_cf(s: f64, u: f64, n: usize, seed: u64) -> f64 {
        let mut rng = seeded(seed);
        (0..n)
            .map(|_| (u * sample_stable(&mut rng, s)).cos())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn cauchy_case_matches_characteristic_function() {
        // s = 1: E[cos(uX)] = e^{-|u|}.
        for &u in &[0.3, 1.0, 2.0] {
            let emp = empirical_cf(1.0, u, 300_000, 0x57AB1E);
            let want = (-u).exp();
            assert!((emp - want).abs() < 0.01, "u={u}: {emp} vs {want}");
        }
    }

    #[test]
    fn gaussian_case_matches_characteristic_function() {
        // s = 2: E[cos(uX)] = e^{-u^2}.
        for &u in &[0.3f64, 0.8, 1.5] {
            let emp = empirical_cf(2.0, u, 300_000, 0x57AB2E);
            let want = (-u * u).exp();
            assert!((emp - want).abs() < 0.01, "u={u}: {emp} vs {want}");
        }
    }

    #[test]
    fn general_stable_characteristic_function() {
        // s = 1.5 and s = 0.8: E[cos(uX)] = e^{-|u|^s}.
        for &s in &[0.8f64, 1.5] {
            for &u in &[0.5f64, 1.0] {
                let emp = empirical_cf(s, u, 400_000, 0x57AB3E);
                let want = (-u.powf(s)).exp();
                assert!((emp - want).abs() < 0.015, "s={s}, u={u}: {emp} vs {want}");
            }
        }
    }

    #[test]
    fn stability_under_addition() {
        // X + Y for independent s-stables is 2^{1/s}-scaled s-stable:
        // E[cos(u (X+Y))] = e^{-2|u|^s}.
        let s = 1.5;
        let u = 0.7;
        let mut rng = seeded(0x57AB4E);
        let n = 300_000;
        let emp = (0..n)
            .map(|_| {
                let x = sample_stable(&mut rng, s) + sample_stable(&mut rng, s);
                (u * x).cos()
            })
            .sum::<f64>()
            / n as f64;
        let want = (-2.0 * u.powf(s)).exp();
        assert!((emp - want).abs() < 0.015, "{emp} vs {want}");
    }

    #[test]
    fn symmetric_distribution() {
        let mut rng = seeded(0x57AB5E);
        let n = 200_000;
        let pos = (0..n)
            .filter(|_| sample_stable(&mut rng, 1.3) > 0.0)
            .count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "stability index")]
    fn invalid_index_rejected() {
        let mut rng = seeded(1);
        let _ = sample_stable(&mut rng, 2.5);
    }
}
