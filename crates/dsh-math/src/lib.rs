//! Numerics substrate for the `dsh` workspace.
//!
//! The paper "Distance-Sensitive Hashing" (Aumüller, Christiani, Pagh,
//! Silvestri; PODS 2018) leans on a handful of classical numerical tools:
//!
//! * standard normal pdf/cdf and tail bounds (Szarek–Werner, Lemma A.2),
//! * bivariate normal orthant probabilities and the Savage bounds
//!   (Lemma A.3) used to analyze the Gaussian filter families of §2.2,
//! * polynomial factorization over ℂ for the Hamming-space polynomial
//!   CPF construction of Theorem 5.2,
//! * Chernoff-style concentration and confidence intervals for the
//!   Monte-Carlo validation harness.
//!
//! None of these are available from the offline dependency set, so this crate
//! implements them from scratch: error functions via incomplete-gamma
//! series/continued fractions (near machine precision), inverse normal cdf
//! (Acklam + Halley refinement), Drezner–Wesolowsky orthant probabilities,
//! an Aberth–Ehrlich complex root finder, adaptive Simpson quadrature, a
//! radix-2 FFT (for the TensorSketch kernel-approximation extension), and a
//! small statistics toolbox.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bivariate;
pub mod complex;
pub mod fft;
pub mod integrate;
pub mod normal;
pub mod poly;
pub mod rng;
pub mod roots;
pub mod special;
pub mod stable;
pub mod stats;

pub use complex::Complex;
pub use poly::Polynomial;
