//! Adaptive Simpson quadrature.
//!
//! Used to cross-check the closed-form collision probability functions
//! (Euclidean tent-kernel integral of §4.2, orthant probabilities of
//! Appendix A) against direct numerical integration.

/// Integrate `f` over `[a, b]` with adaptive Simpson's rule to absolute
/// tolerance `tol`.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    assert!(tol > 0.0);
    if a == b {
        return 0.0;
    }
    let (a, b, sign) = if a < b { (a, b, 1.0) } else { (b, a, -1.0) };
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    sign * recurse(&f, a, b, fa, fm, fb, whole, tol, 50)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

/// Integrate a smooth integrand over `[a, +inf)` by mapping onto `[0, 1)`
/// with the substitution `x = a + t/(1-t)`.
pub fn integrate_to_infinity<F: Fn(f64) -> f64>(f: F, a: f64, tol: f64) -> f64 {
    adaptive_simpson(
        |t| {
            let one_minus = 1.0 - t;
            if one_minus <= 1e-12 {
                return 0.0;
            }
            let x = a + t / one_minus;
            f(x) / (one_minus * one_minus)
        },
        0.0,
        1.0 - 1e-12,
        tol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact on cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-12);
        assert!((v - (4.0 - 4.0 + 2.0)).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn integrates_sine() {
        let v = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12);
        assert!((v - 2.0).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn reversed_bounds_negate() {
        let v1 = adaptive_simpson(f64::exp, 0.0, 1.0, 1e-12);
        let v2 = adaptive_simpson(f64::exp, 1.0, 0.0, 1e-12);
        assert!((v1 + v2).abs() < 1e-12);
    }

    #[test]
    fn gaussian_integral_to_infinity() {
        // int_0^inf e^{-x^2/2} dx = sqrt(pi/2)
        let v = integrate_to_infinity(|x| (-0.5 * x * x).exp(), 0.0, 1e-12);
        let expect = (std::f64::consts::PI / 2.0).sqrt();
        assert!((v - expect).abs() < 1e-8, "got {v}, expected {expect}");
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(adaptive_simpson(|x| x, 3.0, 3.0, 1e-9), 0.0);
    }
}
