//! Real-coefficient polynomials.
//!
//! Theorem 5.2 of the paper factorizes a target collision probability
//! polynomial `P(t)` into linear factors over ℂ and builds one hashing
//! scheme per root; Theorem 5.1 needs coefficient-wise manipulation for the
//! Valiant embedding. This module provides the polynomial algebra both use.

use crate::complex::Complex;

/// A polynomial with real coefficients, stored lowest-degree first:
/// `coeffs[i]` is the coefficient of `t^i`. The representation is kept
/// normalized (no trailing zero other than for the zero polynomial).
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Build from coefficients, lowest degree first. Trailing zeros are
    /// trimmed; the empty list denotes the zero polynomial.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// The monomial `c * t^k`.
    pub fn monomial(c: f64, k: usize) -> Self {
        let mut coeffs = vec![0.0; k + 1];
        coeffs[k] = c;
        Polynomial::new(coeffs)
    }

    /// Reconstruct a real polynomial `lead * prod (t - z_i)` from its
    /// (closed-under-conjugation) complex roots. The imaginary residue from
    /// floating point noise is discarded after verifying it is tiny.
    pub fn from_roots(lead: f64, roots: &[Complex]) -> Self {
        let mut coeffs = vec![Complex::from_real(lead)];
        for &r in roots {
            // Multiply by (t - r).
            let mut next = vec![Complex::ZERO; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                next[i + 1] += c;
                next[i] -= c * r;
            }
            coeffs = next;
        }
        let max_abs = coeffs.iter().map(|c| c.abs()).fold(0.0f64, f64::max);
        let real: Vec<f64> = coeffs
            .iter()
            .map(|c| {
                debug_assert!(
                    c.im.abs() <= 1e-8 * (1.0 + max_abs),
                    "roots not closed under conjugation (im residue {})",
                    c.im
                );
                c.re
            })
            .collect();
        Polynomial::new(real)
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(|&c| c == 0.0) {
            self.coeffs.pop();
        }
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficient of `t^i` (0 beyond the degree).
    pub fn coeff(&self, i: usize) -> f64 {
        self.coeffs.get(i).copied().unwrap_or(0.0)
    }

    /// All coefficients, lowest degree first.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Leading coefficient (0 for the zero polynomial).
    pub fn leading(&self) -> f64 {
        self.coeffs.last().copied().unwrap_or(0.0)
    }

    /// Sum of absolute coefficient values `sum_i |a_i|` — the normalization
    /// required by Theorem 5.1.
    pub fn abs_coeff_sum(&self) -> f64 {
        self.coeffs.iter().map(|c| c.abs()).sum()
    }

    /// Evaluate at a real point (Horner).
    pub fn eval(&self, t: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * t + c)
    }

    /// Evaluate at a complex point (Horner).
    pub fn eval_complex(&self, z: Complex) -> Complex {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex::ZERO, |acc, &c| acc * z + Complex::from_real(c))
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| c * i as f64)
                .collect(),
        )
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        Polynomial::new((0..n).map(|i| self.coeff(i) + other.coeff(i)).collect())
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.coeffs.is_empty() || other.coeffs.is_empty() {
            return Polynomial::zero();
        }
        let mut out = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }

    /// Scale every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Divide out the largest power of `t`: returns `(l, Q)` with
    /// `P(t) = t^l * Q(t)` and `Q(0) != 0`. Used by Theorem 5.2 to peel off
    /// roots at zero before factorization.
    pub fn factor_out_zero_roots(&self) -> (usize, Polynomial) {
        if self.coeffs.is_empty() {
            return (0, Polynomial::zero());
        }
        let l = self
            .coeffs
            .iter()
            .position(|&c| c != 0.0)
            .expect("normalized nonzero polynomial has a nonzero coefficient");
        (l, Polynomial::new(self.coeffs[l..].to_vec()))
    }

    /// Maximum of `|P(t)|` over a uniform grid on `[lo, hi]` (used by tests
    /// and by CPF validity checks).
    pub fn max_abs_on(&self, lo: f64, hi: f64, steps: usize) -> f64 {
        assert!(steps >= 1);
        (0..=steps)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / steps as f64;
                self.eval(t).abs()
            })
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.coeffs.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => {
                    if a == 1.0 {
                        write!(f, "t")?;
                    } else {
                        write!(f, "{a}t")?;
                    }
                }
                _ => {
                    if a == 1.0 {
                        write!(f, "t^{i}")?;
                    } else {
                        write!(f, "{a}t^{i}")?;
                    }
                }
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_horner() {
        // P(t) = 1 - 2t + 3t^2
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]);
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 2.0);
        assert_eq!(p.eval(2.0), 1.0 - 4.0 + 12.0);
        assert_eq!(p.degree(), Some(2));
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(0));
        let z = Polynomial::new(vec![0.0, 0.0]);
        assert_eq!(z.degree(), None);
        assert_eq!(z, Polynomial::zero());
    }

    #[test]
    fn arithmetic() {
        let p = Polynomial::new(vec![1.0, 1.0]); // 1 + t
        let q = Polynomial::new(vec![-1.0, 1.0]); // -1 + t
        let prod = p.mul(&q); // t^2 - 1
        assert_eq!(prod.coeffs(), &[-1.0, 0.0, 1.0]);
        let sum = p.add(&q); // 2t
        assert_eq!(sum.coeffs(), &[0.0, 2.0]);
        assert_eq!(p.scale(3.0).coeffs(), &[3.0, 3.0]);
    }

    #[test]
    fn derivative_rules() {
        let p = Polynomial::new(vec![5.0, 0.0, 1.0, 2.0]); // 5 + t^2 + 2t^3
        let d = p.derivative(); // 2t + 6t^2
        assert_eq!(d.coeffs(), &[0.0, 2.0, 6.0]);
        assert_eq!(Polynomial::constant(4.0).derivative(), Polynomial::zero());
    }

    #[test]
    fn from_roots_real() {
        // (t-1)(t-2) = t^2 - 3t + 2
        let p = Polynomial::from_roots(1.0, &[Complex::from_real(1.0), Complex::from_real(2.0)]);
        assert_eq!(p.coeffs(), &[2.0, -3.0, 1.0]);
    }

    #[test]
    fn from_roots_conjugate_pair() {
        // (t - (1+i))(t - (1-i)) = t^2 - 2t + 2
        let p = Polynomial::from_roots(2.0, &[Complex::new(1.0, 1.0), Complex::new(1.0, -1.0)]);
        assert_eq!(p.coeffs(), &[4.0, -4.0, 2.0]);
    }

    #[test]
    fn complex_eval_matches_real_on_axis() {
        let p = Polynomial::new(vec![0.5, -1.0, 0.25, 2.0]);
        for &t in &[-2.0, 0.0, 0.7, 3.0] {
            let z = p.eval_complex(Complex::from_real(t));
            assert!((z.re - p.eval(t)).abs() < 1e-12);
            assert!(z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn factor_out_zero_roots() {
        // t^2 (3 - t)
        let p = Polynomial::new(vec![0.0, 0.0, 3.0, -1.0]);
        let (l, q) = p.factor_out_zero_roots();
        assert_eq!(l, 2);
        assert_eq!(q.coeffs(), &[3.0, -1.0]);
        // No zero roots.
        let (l2, q2) = q.factor_out_zero_roots();
        assert_eq!(l2, 0);
        assert_eq!(q2, q);
    }

    #[test]
    fn abs_coeff_sum() {
        let p = Polynomial::new(vec![-0.25, 0.5, -0.25]);
        assert!((p.abs_coeff_sum() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn display_formatting() {
        let p = Polynomial::new(vec![2.0, 0.0, -1.0]);
        assert_eq!(format!("{p}"), "-t^2 + 2");
        assert_eq!(format!("{}", Polynomial::zero()), "0");
    }

    #[test]
    fn max_abs_on_grid() {
        let p = Polynomial::new(vec![0.0, 1.0]); // t
        assert_eq!(p.max_abs_on(0.0, 1.0, 10), 1.0);
    }
}

// Property-style tests over randomized inputs (seeded, so deterministic).
// These replace `proptest!` blocks: the crate is built offline and
// proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::seeded;
    use rand::rngs::StdRng;

    fn small_poly(rng: &mut StdRng) -> Polynomial {
        let len = rng.random_range(0usize..6);
        Polynomial::new((0..len).map(|_| rng.random_range(-10.0f64..10.0)).collect())
    }

    #[test]
    fn mul_is_commutative() {
        let mut rng = seeded(0x901);
        for _ in 0..256 {
            let p = small_poly(&mut rng);
            let q = small_poly(&mut rng);
            let pq = p.mul(&q);
            let qp = q.mul(&p);
            assert_eq!(pq.coeffs().len(), qp.coeffs().len());
            for (a, b) in pq.coeffs().iter().zip(qp.coeffs()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eval_is_ring_homomorphism() {
        let mut rng = seeded(0x902);
        for _ in 0..256 {
            let p = small_poly(&mut rng);
            let q = small_poly(&mut rng);
            let t = rng.random_range(-3.0f64..3.0);
            let lhs = p.mul(&q).eval(t);
            let rhs = p.eval(t) * q.eval(t);
            assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
            let lhs2 = p.add(&q).eval(t);
            let rhs2 = p.eval(t) + q.eval(t);
            assert!((lhs2 - rhs2).abs() < 1e-8 * (1.0 + rhs2.abs()));
        }
    }

    #[test]
    fn derivative_of_product_leibniz() {
        let mut rng = seeded(0x903);
        for _ in 0..256 {
            let p = small_poly(&mut rng);
            let q = small_poly(&mut rng);
            let t = rng.random_range(-2.0f64..2.0);
            let lhs = p.mul(&q).derivative().eval(t);
            let rhs = p.derivative().mul(&q).eval(t) + p.mul(&q.derivative()).eval(t);
            assert!((lhs - rhs).abs() < 1e-5 * (1.0 + rhs.abs()));
        }
    }
}
