//! Seeded RNG construction helpers.
//!
//! Everything in the workspace is deterministic given a seed: constructions
//! sample hash functions from an explicit RNG, and experiments derive
//! per-repetition RNGs from a master seed so that results are reproducible
//! run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a master seed and a stream index using
/// SplitMix64 — so experiment repetitions get independent, reproducible
/// streams.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Create the `stream`-th child RNG of a master seed.
pub fn child(master: u64, stream: u64) -> StdRng {
    seeded(derive_seed(master, stream))
}

/// Sample a uniform f64 in `[0, w)`.
pub fn uniform(rng: &mut dyn Rng, w: f64) -> f64 {
    assert!(w > 0.0);
    rng.random::<f64>() * w
}

/// Draw a uniformly random index in `[0, n)` from a dynamically typed RNG.
pub fn index(rng: &mut dyn Rng, n: usize) -> usize {
    assert!(n > 0);
    rng.random_range(0..n)
}

/// A minimal SplitMix64 generator for *hot inner loops* that re-derive a
/// stream per item (e.g. one Gaussian cap per filter index). `StdRng`
/// (ChaCha12) costs a full key setup per instantiation; SplitMix64 is a
/// three-multiply state transition. Statistical quality is ample for
/// Monte-Carlo geometry (it passes BigCrush as a 64-bit mixer), and it is
/// NOT used where cryptographic-grade randomness could matter.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A stream of i.i.d. standard Gaussians over SplitMix64 (Marsaglia polar
/// method with spare caching) — the fast path for lazily generated filter
/// caps.
#[derive(Debug, Clone)]
pub struct GaussianStream {
    rng: SplitMix64,
    spare: Option<f64>,
}

impl GaussianStream {
    /// Seed the stream.
    pub fn new(seed: u64) -> Self {
        GaussianStream {
            rng: SplitMix64::new(seed),
            spare: None,
        }
    }

    /// Next standard normal variate.
    // Not an Iterator: the stream is infinite and `Option` would be noise
    // on the hot path.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u = 2.0 * self.rng.next_f64() - 1.0;
            let v = 2.0 * self.rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let scale = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * scale);
                return u * scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(123);
        let mut b = seeded(123);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    // Every experiment binary and integration test keys its
    // reproducibility off `seeded`, so pin the contract down hard: same
    // seed ⇒ identical streams through every sampling surface; different
    // seeds ⇒ streams that actually diverge.
    #[test]
    fn seeded_streams_identical_across_all_sampling_surfaces() {
        let mut a = seeded(0xD5E_u64);
        let mut b = seeded(0xD5E_u64);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
            assert_eq!(a.random::<f64>(), b.random::<f64>());
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
            assert_eq!(a.random_bool(0.3), b.random_bool(0.3));
        }
    }

    #[test]
    fn different_seeds_produce_disjoint_long_streams() {
        let stream = |seed: u64| -> Vec<u64> {
            let mut rng = seeded(seed);
            (0..64).map(|_| rng.next_u64()).collect()
        };
        let seeds = [0u64, 1, 2, u64::MAX, 0xDEAD_BEEF];
        let streams: Vec<Vec<u64>> = seeds.iter().map(|&s| stream(s)).collect();
        for i in 0..streams.len() {
            for j in (i + 1)..streams.len() {
                assert_ne!(
                    streams[i], streams[j],
                    "seeds {} and {} collide",
                    seeds[i], seeds[j]
                );
            }
        }
        // And re-derivation reproduces each stream exactly.
        for (&s, st) in seeds.iter().zip(&streams) {
            assert_eq!(&stream(s), st);
        }
    }

    #[test]
    fn child_streams_are_independent_and_reproducible() {
        // Children of the same master at different stream indices differ...
        let take =
            |mut r: rand::rngs::StdRng| -> Vec<u64> { (0..32).map(|_| r.next_u64()).collect() };
        let c0 = take(child(42, 0));
        let c1 = take(child(42, 1));
        assert_ne!(c0, c1);
        // ...none of them equals the master's own stream...
        let master = take(seeded(42));
        assert_ne!(c0, master);
        assert_ne!(c1, master);
        // ...and each child is reproducible.
        assert_eq!(take(child(42, 0)), c0);
        assert_eq!(take(child(42, 1)), c1);
    }

    #[test]
    fn derive_seed_spreads_streams() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 100);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = seeded(7);
        for _ in 0..1000 {
            let x = uniform(&mut rng, 3.5);
            assert!((0.0..3.5).contains(&x));
        }
    }

    #[test]
    fn splitmix_uniform_f64_in_range() {
        let mut s = SplitMix64::new(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 100_000.0 - 0.5).abs() < 0.005);
    }

    #[test]
    fn gaussian_stream_moments() {
        let mut g = GaussianStream::new(77);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        // Tail mass beyond 2 sigma ~ 4.55%.
        let tail = xs.iter().filter(|x| x.abs() > 2.0).count() as f64 / n as f64;
        assert!((tail - 0.0455).abs() < 0.005, "tail {tail}");
    }

    #[test]
    fn gaussian_stream_deterministic() {
        let a: Vec<f64> = {
            let mut g = GaussianStream::new(3);
            (0..10).map(|_| g.next()).collect()
        };
        let b: Vec<f64> = {
            let mut g = GaussianStream::new(3);
            (0..10).map(|_| g.next()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn index_in_range() {
        let mut rng = seeded(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let i = index(&mut rng, 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices should be hit");
    }
}
