//! Radix-2 complex FFT and convolution.
//!
//! Substrate for the TensorSketch kernel-approximation extension (the
//! paper's remark after Theorem 5.1 cites Pham–Pagh explicit feature maps,
//! which combine count sketches via FFT-based circular convolution).

use crate::complex::Complex;

/// In-place iterative radix-2 FFT. `data.len()` must be a power of two.
/// `inverse` selects the inverse transform (including the `1/n` scaling).
pub fn fft(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Danielson-Lanczos.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = *z * scale;
        }
    }
}

/// Circular convolution of two equal-length real sequences whose length is
/// a power of two, via FFT. This is the combining step of TensorSketch.
pub fn circular_convolution(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sequences must have equal length");
    let n = a.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::from_real(x)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::from_real(x)).collect();
    fft(&mut fa, false);
    fft(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    fft(&mut fa, true);
    fa.into_iter().map(|z| z.re).collect()
}

/// Pointwise product in the frequency domain for several sequences at once:
/// returns the circular convolution of all of `seqs`.
pub fn circular_convolution_many(seqs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!seqs.is_empty());
    let n = seqs[0].len();
    assert!(n.is_power_of_two());
    let mut acc: Vec<Complex> = vec![Complex::ONE; n];
    for s in seqs {
        assert_eq!(s.len(), n);
        let mut f: Vec<Complex> = s.iter().map(|&x| Complex::from_real(x)).collect();
        fft(&mut f, false);
        for (a, b) in acc.iter_mut().zip(&f) {
            *a *= *b;
        }
    }
    fft(&mut acc, true);
    acc.into_iter().map(|z| z.re).collect()
}

/// [`circular_convolution_many`] over rows stored row-major in one flat
/// buffer (`flat.len()` a multiple of the power-of-two row length `m`):
/// the allocation-lean form for callers that assemble their inputs in a
/// single scratch buffer instead of a `Vec<Vec<f64>>`.
pub fn circular_convolution_rows(flat: &[f64], m: usize) -> Vec<f64> {
    assert!(m.is_power_of_two(), "row length must be a power of two");
    assert!(
        !flat.is_empty() && flat.len().is_multiple_of(m),
        "flat buffer not a multiple of m"
    );
    let mut acc: Vec<Complex> = vec![Complex::ONE; m];
    let mut f: Vec<Complex> = Vec::with_capacity(m);
    for row in flat.chunks_exact(m) {
        f.clear();
        f.extend(row.iter().map(|&x| Complex::from_real(x)));
        fft(&mut f, false);
        for (a, b) in acc.iter_mut().zip(&f) {
            *a *= *b;
        }
    }
    fft(&mut acc, true);
    acc.into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_roundtrip() {
        let orig: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i as f64).sin()))
            .collect();
        let mut data = orig.clone();
        fft(&mut data, false);
        fft(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        fft(&mut data, false);
        for z in &data {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_parseval() {
        let mut data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).cos(), 0.0))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        fft(&mut data, false);
        let freq_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn convolution_matches_naive() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.5, -1.0, 0.0, 2.0];
        let got = circular_convolution(&a, &b);
        let n = a.len();
        for k in 0..n {
            let mut want = 0.0;
            for i in 0..n {
                want += a[i] * b[(k + n - i) % n];
            }
            assert!((got[k] - want).abs() < 1e-12, "k={k}: {} vs {want}", got[k]);
        }
    }

    #[test]
    fn convolution_many_is_associative() {
        let a = vec![1.0, 0.0, 2.0, 0.0];
        let b = vec![0.0, 1.0, 0.0, 0.0];
        let c = vec![3.0, 0.0, 0.0, 1.0];
        let pairwise = circular_convolution(&circular_convolution(&a, &b), &c);
        let many = circular_convolution_many(&[a, b, c]);
        for (x, y) in pairwise.iter().zip(&many) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn convolution_rows_matches_many() {
        let a = vec![1.0, 0.5, 2.0, -1.0];
        let b = vec![0.0, 1.0, 0.25, 0.0];
        let c = vec![3.0, 0.0, -2.0, 1.0];
        let flat: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        let many = circular_convolution_many(&[a, b, c]);
        let rows = circular_convolution_rows(&flat, 4);
        assert_eq!(many, rows, "flat rows must reproduce the Vec-of-Vec path");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::ZERO; 6];
        fft(&mut data, false);
    }
}
