//! Special functions: error function, log-gamma, incomplete gamma,
//! binomial coefficients.
//!
//! `erf`/`erfc` are computed through the regularized incomplete gamma
//! functions (series expansion for small arguments, continued fraction for
//! large ones), which yields close to full double precision — important
//! because the collision-probability formulas of the paper evaluate normal
//! tails as small as `exp(-t^2/2)` for `t` up to ~6.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to roughly 1e-13 relative error for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    // lint: allow(panic) — domain precondition: every in-tree caller passes x >= 1 (binomial arguments are counts + 1)
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz), for
/// `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x) = 2/sqrt(pi) * int_0^x e^{-t^2} dt`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, accurate in the tail.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Natural log of `erfc(x)` for `x >= 0`, stable deep in the tail where
/// `erfc(x)` underflows (x beyond ~27).
pub fn ln_erfc(x: f64) -> f64 {
    assert!(x >= 0.0, "ln_erfc requires x >= 0");
    let e = erfc(x);
    if e > 0.0 {
        return e.ln();
    }
    // Asymptotic expansion: erfc(x) ~ e^{-x^2} / (x sqrt(pi)) * (1 - 1/(2x^2) + 3/(4x^4) - ...)
    let x2 = x * x;
    let series = 1.0 - 0.5 / x2 + 0.75 / (x2 * x2) - 1.875 / (x2 * x2 * x2);
    -x2 - (x * std::f64::consts::PI.sqrt()).ln() + series.ln()
}

/// Binomial coefficient `C(n, k)` as an `f64` (exact for small values,
/// computed via `ln_gamma` for large ones).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 1.0;
    }
    if n <= 60 {
        // Exact integer arithmetic fits in u128 for n <= 60.
        let mut num: u128 = 1;
        let mut den: u128 = 1;
        for i in 0..k {
            num *= (n - i) as u128;
            den *= (i + 1) as u128;
        }
        (num / den) as f64
    } else {
        (ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)).exp()
    }
}

/// `ln(1 + x)` computed accurately for small `x` (thin wrapper so callers
/// don't reach for the libm name).
pub fn ln_1p(x: f64) -> f64 {
    x.ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..15 {
            let mut fact = 1.0f64;
            for i in 1..n {
                fact *= i as f64;
            }
            close(ln_gamma(n as f64), fact.ln(), 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun, 10+ digits.
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erfc_tail_values() {
        close(erfc(2.0), 4.677_734_981_047_266e-3, 1e-11);
        close(erfc(4.0), 1.541_725_790_028_002e-8, 1e-10);
        close(erfc(6.0), 2.151_973_671_249_892e-17, 1e-9);
    }

    #[test]
    fn erf_erfc_complement() {
        for &x in &[-3.0, -1.0, -0.1, 0.0, 0.3, 1.7, 4.2] {
            close(erf(x) + erfc(x), 1.0, 1e-14);
        }
    }

    #[test]
    fn ln_erfc_agrees_with_direct_log() {
        for &x in &[0.0, 0.5, 2.0, 5.0, 10.0, 20.0] {
            close(ln_erfc(x), erfc(x).ln(), 1e-10);
        }
    }

    #[test]
    fn ln_erfc_deep_tail_finite() {
        // erfc(40) underflows to 0 in f64; ln_erfc must stay finite.
        let v = ln_erfc(40.0);
        assert!(v.is_finite());
        // Leading order is -x^2 = -1600.
        assert!((v - (-1604.7)).abs() < 1.0, "got {v}");
    }

    #[test]
    fn binomial_small_exact() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(10, 10), 1.0);
        assert_eq!(binomial(10, 11), 0.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
    }

    #[test]
    fn binomial_large_approx() {
        // C(100, 50) = 1.0089134...e29
        close(binomial(100, 50), 1.008_913_445_455_642e29, 1e-10);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 2.0), (3.5, 3.0), (10.0, 14.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-13);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 5.0] {
            close(gamma_p(1.0, x), 1.0 - (-x_f(x)).exp(), 1e-13);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
    }
}
