//! Minimal complex arithmetic (no complex-number crate in the offline set).
//!
//! Only what the polynomial machinery of Theorem 5.2 needs: field
//! operations, magnitude, conjugation, and exponentials for FFT twiddles.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Construct a purely real complex number.
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude `|z|` (hypot, overflow-safe).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|^2`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Argument (angle) in `(-pi, pi]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^{i theta}` on the unit circle.
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn inv(self) -> Self {
        let n = self.norm_sqr();
        assert!(n > 0.0, "division by complex zero");
        Complex::new(self.re / n, -self.im / n)
    }

    /// True if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via multiplication by the inverse is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: Complex) -> Complex {
        self * o.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        *self = *self + o;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, o: Complex) {
        *self = *self - o;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, o: Complex) {
        *self = *self * o;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) {
        assert!((a - b).abs() < 1e-12, "{a:?} != {b:?}");
    }

    #[test]
    fn field_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        close(a + b, Complex::new(-2.0, 2.5));
        close(a - b, Complex::new(4.0, 1.5));
        close(a * b, Complex::new(-3.0 - 1.0, 0.5 - 6.0));
        close((a / b) * b, a);
    }

    #[test]
    fn i_squared_is_minus_one() {
        close(Complex::I * Complex::I, Complex::from_real(-1.0));
    }

    #[test]
    fn inverse_roundtrip() {
        let z = Complex::new(3.0, -4.0);
        close(z * z.inv(), Complex::ONE);
        assert!((z.abs() - 5.0).abs() < 1e-14);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cis_unit_circle() {
        let z = Complex::cis(std::f64::consts::FRAC_PI_2);
        close(z, Complex::I);
        assert!((Complex::cis(1.234).abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(2.0, 7.0);
        close(z * z.conj(), Complex::from_real(z.norm_sqr()));
        assert!((z.conj().arg() + z.arg()).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "division by complex zero")]
    fn zero_inverse_panics() {
        let _ = Complex::ZERO.inv();
    }
}
