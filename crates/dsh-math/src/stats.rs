//! Statistics toolbox: summary statistics, binomial confidence intervals,
//! Chernoff bounds, and log-ratio (rho) estimation.
//!
//! The experimental harness validates collision probability functions by
//! Monte-Carlo estimation; Wilson intervals give calibrated error bars even
//! for probabilities near 0 or 1 (which CPFs routinely are). The Chernoff
//! helpers mirror the concentration arguments of §3.1 of the paper.

use crate::normal;

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance.
pub fn variance(xs: &[f64]) -> f64 {
    assert!(xs.len() >= 2, "variance needs at least two samples");
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// A binomial proportion estimate with a Wilson score interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Proportion {
    /// Number of successes.
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
    /// Point estimate `successes / trials`.
    pub estimate: f64,
    /// Lower end of the Wilson interval.
    pub lo: f64,
    /// Upper end of the Wilson interval.
    pub hi: f64,
}

impl Proportion {
    /// Wilson score interval at confidence level `confidence`
    /// (e.g. 0.99 for 99%).
    pub fn wilson(successes: u64, trials: u64, confidence: f64) -> Self {
        assert!(trials > 0, "no trials");
        assert!(successes <= trials);
        assert!((0.0..1.0).contains(&confidence) && confidence > 0.0);
        let z = normal::inv_cdf(0.5 + confidence / 2.0);
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        // At the boundary counts the Wilson endpoints are exactly 0 / 1
        // algebraically; avoid float roundoff excluding the true value.
        let lo = if successes == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let hi = if successes == trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        Proportion {
            successes,
            trials,
            estimate: p,
            lo,
            hi,
        }
    }

    /// Whether `value` lies within the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }
}

/// Multiplicative Chernoff bound used in §3.1:
/// `Pr[X >= (1+eps) mu] <= exp(-eps^2 mu / 3)` for a sum of independent
/// 0/1 variables with mean `mu` and `0 < eps <= 1`.
pub fn chernoff_upper_tail(mu: f64, eps: f64) -> f64 {
    assert!(mu >= 0.0 && eps > 0.0 && eps <= 1.0);
    (-eps * eps * mu / 3.0).exp()
}

/// Lower-tail Chernoff bound `Pr[X <= (1-eps) mu] <= exp(-eps^2 mu / 2)`.
pub fn chernoff_lower_tail(mu: f64, eps: f64) -> f64 {
    assert!(mu >= 0.0 && eps > 0.0 && eps <= 1.0);
    (-eps * eps * mu / 2.0).exp()
}

/// The `rho` exponent `ln(1/p) / ln(1/q)` comparing two collision
/// probabilities `p > q` (paper §1.2 "ρ-values"). Returns `None` when either
/// probability is degenerate (0 or 1) and the ratio is undefined.
pub fn rho(p: f64, q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&p) || !(0.0..=1.0).contains(&q) {
        return None;
    }
    if p <= 0.0 || p >= 1.0 || q <= 0.0 || q >= 1.0 {
        return None;
    }
    Some(p.ln() / q.ln())
}

/// Geometric mean of strictly positive values.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean needs positives"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Percentile (nearest-rank) of a sample; `q` in `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_truth_mostly() {
        // Basic sanity: for p-hat = 0.5 with many trials the interval is
        // narrow and centered.
        let p = Proportion::wilson(5000, 10000, 0.95);
        assert!((p.estimate - 0.5).abs() < 1e-12);
        assert!(p.contains(0.5));
        assert!(p.half_width() < 0.011);
    }

    #[test]
    fn wilson_extreme_counts() {
        let p0 = Proportion::wilson(0, 100, 0.99);
        assert_eq!(p0.estimate, 0.0);
        assert_eq!(p0.lo, 0.0);
        assert!(p0.hi > 0.0 && p0.hi < 0.1);
        let p1 = Proportion::wilson(100, 100, 0.99);
        assert_eq!(p1.hi, 1.0);
        assert!(p1.lo > 0.9);
    }

    #[test]
    fn wilson_wider_at_higher_confidence() {
        let lo = Proportion::wilson(30, 100, 0.90);
        let hi = Proportion::wilson(30, 100, 0.999);
        assert!(hi.half_width() > lo.half_width());
    }

    #[test]
    fn chernoff_monotone_in_mu() {
        assert!(chernoff_upper_tail(100.0, 0.5) < chernoff_upper_tail(10.0, 0.5));
        assert!(chernoff_lower_tail(100.0, 0.5) < chernoff_lower_tail(10.0, 0.5));
        assert!(chernoff_upper_tail(10.0, 1.0) < chernoff_upper_tail(10.0, 0.1));
    }

    #[test]
    fn rho_basic() {
        // p = q^rho.
        let q: f64 = 0.01;
        let p = q.powf(0.5);
        let r = rho(p, q).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
        assert_eq!(rho(0.0, 0.5), None);
        assert_eq!(rho(0.5, 1.0), None);
        assert_eq!(rho(1.5, 0.5), None);
    }

    #[test]
    fn geometric_mean_log_identity() {
        let xs = [1.0, 4.0, 16.0];
        assert!((geometric_mean(&xs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "no trials")]
    fn wilson_zero_trials_panics() {
        let _ = Proportion::wilson(0, 0, 0.95);
    }
}

// Property-style tests over randomized parameter sweeps (seeded, so
// deterministic). These replace `proptest!` blocks: the crate is built
// offline and proptest is not in the dependency set.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn wilson_interval_ordered_and_contains_estimate() {
        let mut rng = seeded(0x571);
        for _ in 0..256 {
            let s = rng.random_range(0u64..1000);
            let extra = rng.random_range(0u64..1000);
            let n = s + extra;
            if n == 0 {
                continue;
            }
            let p = Proportion::wilson(s, n, 0.95);
            assert!(p.lo <= p.estimate + 1e-12, "s={s} n={n}");
            assert!(p.estimate <= p.hi + 1e-12, "s={s} n={n}");
            assert!(p.lo >= 0.0 && p.hi <= 1.0, "s={s} n={n}");
        }
    }

    #[test]
    fn rho_inverts_powf() {
        let mut rng = seeded(0x572);
        for _ in 0..256 {
            let q = rng.random_range(1e-6f64..0.9);
            let r = rng.random_range(0.05f64..0.95);
            let p = q.powf(r);
            let got = rho(p, q).unwrap();
            assert!((got - r).abs() < 1e-9, "q={q} r={r}: got {got}");
        }
    }
}
