//! Standard normal distribution: density, cdf, inverse cdf, tail bounds,
//! and Gaussian sampling.
//!
//! The tail bounds are the Szarek–Werner inequalities reproduced as
//! Lemma A.2 of the paper; they bracket `Pr[Z >= t]` between
//! `phi(t) / (t + 1)` and `phi(t) / t` and are used both in the analysis of
//! the filter families (§2.2) and to size the number of filters
//! `m = ceil(2 t^3 / p')`.

use crate::special::{erfc, ln_erfc};
use rand::Rng;

/// `1 / sqrt(2 pi)`.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Standard normal density `phi(x)`.
pub fn pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cdf `Phi(x) = Pr[Z <= x]`.
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Upper tail `Pr[Z >= x] = 1 - Phi(x)`, computed without cancellation.
pub fn tail(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Natural log of the upper tail, stable for large `x` (works beyond the
/// underflow point of [`tail`]).
pub fn ln_tail(x: f64) -> f64 {
    if x <= 0.0 {
        return tail(x).ln();
    }
    ln_erfc(x / std::f64::consts::SQRT_2) + (0.5f64).ln()
}

/// Szarek–Werner lower bound on the tail (paper Lemma A.2):
/// `Pr[Z >= t] >= phi(t) / (t + 1)` for `t >= 0`.
pub fn tail_lower_bound(t: f64) -> f64 {
    assert!(t >= 0.0);
    pdf(t) / (t + 1.0)
}

/// Szarek–Werner upper bound on the tail (paper Lemma A.2):
/// `Pr[Z >= t] <= phi(t) / t` for `t > 0`.
pub fn tail_upper_bound(t: f64) -> f64 {
    assert!(t > 0.0);
    pdf(t) / t
}

/// Inverse standard normal cdf (quantile function).
///
/// Peter Acklam's rational approximation (relative error ~1.15e-9) refined
/// with one step of Halley's method against the accurate [`cdf`], giving
/// close to machine precision across `(0, 1)`.
pub fn inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inv_cdf requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Draw a standard normal variate using the Marsaglia polar method.
///
/// `rand_distr` is not in the offline dependency set, so Gaussian sampling is
/// implemented here. The polar method is exact (not an approximation).
pub fn sample(rng: &mut dyn Rng) -> f64 {
    loop {
        let u: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let v: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fill a vector with `n` i.i.d. standard normal variates.
pub fn sample_vec(rng: &mut dyn Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| sample(rng)).collect()
}

/// Draw a pair `(X, Y)` of standard normals with correlation `alpha`,
/// using the representation `X = Z1`, `Y = alpha Z1 + sqrt(1-alpha^2) Z2`
/// (exactly the construction in the proof of Lemma A.1).
pub fn sample_correlated_pair(rng: &mut dyn Rng, alpha: f64) -> (f64, f64) {
    assert!((-1.0..=1.0).contains(&alpha));
    let z1 = sample(rng);
    let z2 = sample(rng);
    (z1, alpha * z1 + (1.0 - alpha * alpha).sqrt() * z2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "expected {b}, got {a}");
    }

    #[test]
    fn cdf_reference_values() {
        close(cdf(0.0), 0.5, 1e-15);
        close(cdf(1.0), 0.841_344_746_068_542_9, 1e-12);
        close(cdf(-1.96), 0.024_997_895_148_220_43, 1e-12);
        close(cdf(3.0), 0.998_650_101_968_369_9, 1e-12);
    }

    #[test]
    fn tail_is_complement_of_cdf() {
        for &x in &[-2.5, -0.3, 0.0, 0.7, 1.9, 4.0] {
            close(tail(x), 1.0 - cdf(x), 1e-14);
        }
    }

    #[test]
    fn ln_tail_deep() {
        // Pr[Z >= 40] has log ~ -804.6; direct tail() underflows around 38.5.
        let v = ln_tail(40.0);
        assert!(v.is_finite());
        // Asymptotics: ln tail ~ -t^2/2 - ln(t sqrt(2 pi))
        let approx = -0.5 * 1600.0 - (40.0 * (2.0 * std::f64::consts::PI).sqrt()).ln();
        assert!((v - approx).abs() < 0.01, "got {v}, approx {approx}");
    }

    #[test]
    fn szarek_werner_brackets_tail() {
        for &t in &[0.1, 0.5, 1.0, 2.0, 3.5, 6.0] {
            let exact = tail(t);
            assert!(tail_lower_bound(t) <= exact + 1e-15, "lb fails at {t}");
            assert!(tail_upper_bound(t) >= exact - 1e-15, "ub fails at {t}");
        }
    }

    #[test]
    fn inv_cdf_roundtrip() {
        for &p in &[1e-10, 1e-4, 0.01, 0.3, 0.5, 0.77, 0.999, 1.0 - 1e-9] {
            let x = inv_cdf(p);
            close(cdf(x), p, 1e-12 * (1.0 + 1.0 / p.min(1.0 - p)));
        }
    }

    #[test]
    fn inv_cdf_symmetry() {
        for &p in &[0.01, 0.2, 0.4] {
            close(inv_cdf(p), -inv_cdf(1.0 - p), 1e-9);
        }
    }

    #[test]
    fn sampling_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let xs = sample_vec(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn correlated_pair_empirical_correlation() {
        let mut rng = StdRng::seed_from_u64(7);
        let alpha = 0.6;
        let n = 200_000;
        let mut sxy = 0.0;
        let mut sx2 = 0.0;
        let mut sy2 = 0.0;
        for _ in 0..n {
            let (x, y) = sample_correlated_pair(&mut rng, alpha);
            sxy += x * y;
            sx2 += x * x;
            sy2 += y * y;
        }
        let corr = sxy / (sx2.sqrt() * sy2.sqrt());
        assert!((corr - alpha).abs() < 0.01, "corr {corr}");
    }

    #[test]
    fn correlated_pair_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (x, y) = sample_correlated_pair(&mut rng, 1.0);
        assert!((x - y).abs() < 1e-12);
        let (x, y) = sample_correlated_pair(&mut rng, -1.0);
        assert!((x + y).abs() < 1e-12);
    }
}
