//! Bivariate standard normal orthant probabilities and the Savage (1962)
//! tail bounds used by the paper (Lemma A.3 / Corollary A.4).
//!
//! The collision probability of the Gaussian filter families of §2.2 is a
//! ratio of bivariate orthant probabilities:
//!
//! ```text
//! f(alpha) = Pr[X >= t, Y >= t] / Pr[X >= t or Y >= t]
//! ```
//!
//! where `(X, Y)` are standard normals with correlation `alpha`. This module
//! provides the exact probability (Plackett/Drezner–Wesolowsky identity,
//! integrated adaptively) along with the closed-form Savage bracket that the
//! paper's analysis relies on.

use crate::integrate::integrate_to_infinity;
use crate::normal;

/// `Pr[X >= h, Y >= k]` for standard bivariate normals with correlation
/// `rho` in `(-1, 1)` (endpoints handled exactly).
///
/// Uses the Plackett identity
/// `d/d rho Pr[X>=h, Y>=k] = bivariate_density(h, k; rho)`, integrating the
/// density from the independent case `rho = 0`.
pub fn orthant(h: f64, k: f64, rho: f64) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "rho must be in [-1,1], got {rho}"
    );
    if rho == 1.0 {
        // Comonotone: X = Y.
        return normal::tail(h.max(k));
    }
    if rho == -1.0 {
        // Antithetic: Y = -X; need X >= h and X <= -k.
        return (normal::cdf(-k) - normal::cdf(h)).max(0.0);
    }
    if h == 0.0 && k == 0.0 {
        // Sheppard / arcsine law, exact.
        return 0.25 + rho.asin() / (2.0 * std::f64::consts::PI);
    }
    if rho == 0.0 {
        return normal::tail(h) * normal::tail(k);
    }
    // Reduce to nonnegative thresholds using reflections (X -> -X flips the
    // sign of rho). With h, k >= 0 the conditional representation below is a
    // positive integral with no cancellation, so even orthant probabilities
    // of order 1e-18 come out with full relative precision.
    if h < 0.0 {
        return (normal::tail(k) - orthant(-h, k, -rho)).clamp(0.0, 1.0);
    }
    if k < 0.0 {
        return (normal::tail(h) - orthant(h, -k, -rho)).clamp(0.0, 1.0);
    }
    // Condition on X = h + s, s >= 0, and factor out phi(h):
    //   Pr[X>=h, Y>=k] = phi(h) * int_0^inf e^{-hs - s^2/2}
    //                      * Pr[Z >= (k - rho (h+s)) / sqrt(1-rho^2)] ds.
    let s1 = (1.0 - rho * rho).sqrt();
    let integrand = |s: f64| (-h * s - 0.5 * s * s).exp() * normal::tail((k - rho * (h + s)) / s1);
    // Two-stage tolerance so the result is accurate *relative* to its own
    // (possibly tiny) magnitude.
    let rough = integrate_to_infinity(integrand, 0.0, 1e-15);
    let integral = if rough > 0.0 {
        integrate_to_infinity(integrand, 0.0, (rough * 1e-11).max(1e-300))
    } else {
        0.0
    };
    (normal::pdf(h) * integral).clamp(0.0, 1.0)
}

/// `Pr[X >= t, Y >= t]` with correlation `alpha` — the quantity bounded by
/// Savage's inequalities (paper Lemma A.3).
pub fn same_orthant(t: f64, alpha: f64) -> f64 {
    orthant(t, t, alpha)
}

/// `Pr[X >= t, Y <= -t]` with correlation `alpha` (paper Corollary A.4):
/// equals [`same_orthant`] with `-alpha` by symmetry of the normal.
pub fn opposite_orthant(t: f64, alpha: f64) -> f64 {
    same_orthant(t, -alpha)
}

/// `Pr[X >= t or Y >= t]` with correlation `alpha` — the denominator of the
/// filter family CPF (Appendix A.1).
pub fn union_tail(t: f64, alpha: f64) -> f64 {
    2.0 * normal::tail(t) - same_orthant(t, alpha)
}

/// Savage upper bound (paper Lemma A.3):
/// `Pr[X1 >= t, X2 >= t] < (1/(2 pi t^2)) ((1+a)^2 / sqrt(1-a^2)) exp(-t^2/(1+a))`.
pub fn savage_upper(t: f64, alpha: f64) -> f64 {
    assert!(t > 0.0 && alpha > -1.0 && alpha < 1.0);
    let a = alpha;
    (1.0 + a).powi(2) / (1.0 - a * a).sqrt() / (2.0 * std::f64::consts::PI * t * t)
        * (-t * t / (1.0 + a)).exp()
}

/// Savage lower bound (paper Lemma A.3): the upper bound scaled by
/// `1 - (2-a)(1+a)/(1-a) * 1/t^2` (may be negative for small `t`, in which
/// case the bound is vacuous and clamped to 0).
pub fn savage_lower(t: f64, alpha: f64) -> f64 {
    let a = alpha;
    let correction = 1.0 - (2.0 - a) * (1.0 + a) / (1.0 - a) / (t * t);
    (correction * savage_upper(t, alpha)).max(0.0)
}

/// Natural log of the Savage upper bound, stable for large `t`.
pub fn ln_savage_upper(t: f64, alpha: f64) -> f64 {
    let a = alpha;
    2.0 * (1.0 + a).ln()
        - 0.5 * (1.0 - a * a).ln()
        - (2.0 * std::f64::consts::PI * t * t).ln()
        - t * t / (1.0 + a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::{sample_correlated_pair, tail};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_correlation_is_product() {
        for &t in &[0.0, 0.5, 1.5, 3.0] {
            let v = same_orthant(t, 0.0);
            let p = tail(t) * tail(t);
            assert!((v - p).abs() < 1e-14, "t={t}: {v} vs {p}");
        }
    }

    #[test]
    fn zero_thresholds_arcsine_law() {
        // Pr[X>=0, Y>=0] = 1/4 + arcsin(rho)/(2 pi).
        for &rho in &[-0.9, -0.4, 0.0, 0.3, 0.8] {
            let v = orthant(0.0, 0.0, rho);
            let expect = 0.25 + rho.asin() / (2.0 * std::f64::consts::PI);
            assert!((v - expect).abs() < 1e-10, "rho={rho}: {v} vs {expect}");
        }
    }

    #[test]
    fn comonotone_and_antithetic_limits() {
        assert!((orthant(1.0, 0.5, 1.0) - tail(1.0)).abs() < 1e-14);
        // rho = -1: Pr[X >= 1, -X >= 1] = 0.
        assert_eq!(orthant(1.0, 1.0, -1.0), 0.0);
        // rho = -1, h = -2, k = -2: Pr[-2 <= X <= 2].
        let v = orthant(-2.0, -2.0, -1.0);
        let expect = normal::cdf(2.0) - normal::cdf(-2.0);
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_rho() {
        // For fixed thresholds, orthant probability increases with rho.
        let mut prev = 0.0;
        for i in 0..=20 {
            let rho = -0.95 + 0.0949999 * i as f64 * 2.0 / 2.0; // -0.95..=0.95
            let v = same_orthant(1.2, rho);
            assert!(v >= prev - 1e-12, "not monotone at rho={rho}");
            prev = v;
        }
    }

    #[test]
    fn savage_brackets_exact_value() {
        for &alpha in &[-0.8, -0.3, 0.0, 0.4, 0.8] {
            for &t in &[2.5, 4.0, 6.0] {
                let exact = same_orthant(t, alpha);
                let hi = savage_upper(t, alpha);
                let lo = savage_lower(t, alpha);
                assert!(
                    exact < hi * (1.0 + 1e-9),
                    "alpha={alpha} t={t}: {exact} !< {hi}"
                );
                assert!(
                    exact >= lo * (1.0 - 1e-9),
                    "alpha={alpha} t={t}: {exact} !>= {lo}"
                );
            }
        }
    }

    #[test]
    fn ln_savage_upper_matches_direct() {
        for &alpha in &[-0.5, 0.0, 0.5] {
            for &t in &[2.0, 5.0] {
                let direct = savage_upper(t, alpha).ln();
                let stable = ln_savage_upper(t, alpha);
                assert!((direct - stable).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn opposite_orthant_symmetry() {
        for &alpha in &[-0.6, 0.0, 0.6] {
            let v = opposite_orthant(1.5, alpha);
            let w = same_orthant(1.5, -alpha);
            assert!((v - w).abs() < 1e-14);
        }
    }

    #[test]
    fn union_tail_inclusion_exclusion() {
        let t = 1.0;
        let alpha = 0.5;
        let u = union_tail(t, alpha);
        assert!(u >= tail(t) && u <= 2.0 * tail(t));
    }

    #[test]
    fn orthant_matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(99);
        let alpha = 0.55;
        let t = 0.8;
        let n = 400_000;
        let mut hits = 0u64;
        for _ in 0..n {
            let (x, y) = sample_correlated_pair(&mut rng, alpha);
            if x >= t && y >= t {
                hits += 1;
            }
        }
        let emp = hits as f64 / n as f64;
        let exact = same_orthant(t, alpha);
        assert!((emp - exact).abs() < 0.003, "emp {emp} vs exact {exact}");
    }
}
