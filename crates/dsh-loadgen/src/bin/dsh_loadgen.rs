//! `dsh-loadgen` — open-loop load generation against `dsh-server`,
//! with answer-parity checking.
//!
//! ```text
//! dsh-loadgen --smoke [--out BENCH_serving.json]
//! dsh-loadgen --addr HOST:PORT [--dim D] [--l L] [--shards N] [--seed S] ...
//! ```
//!
//! `--smoke` spins up an in-process `dsh-server` on a loopback port and
//! runs the CI smoke workload against it; `--addr` targets an already
//! running server, which must have been built with the same
//! `--dim`/`--l`/`--shards`/`--seed` and still be empty. Either way the
//! report is written as flat JSON to `--out` and the process exits
//! nonzero if the wire answers ever diverge from the in-process replay.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use dsh_core::points::BitStore;
use dsh_hamming::BitSampling;
use dsh_index::ShardedIndex;
use dsh_loadgen::{run, Report, WorkloadConfig};
use dsh_math::rng::seeded;
use dsh_server::server::{spawn, ServerConfig};

struct Args {
    addr: Option<String>,
    smoke: bool,
    out: String,
    config: WorkloadConfig,
}

fn usage() -> &'static str {
    "usage: dsh-loadgen (--smoke | --addr HOST:PORT) [--out FILE]\n       \
     [--dim D] [--l L] [--shards N] [--seed S] [--load-points N]\n       \
     [--clients N] [--duration-secs S] [--rate-per-client Q]\n       \
     [--write-mix F] [--zipf-theta T] [--limit K]"
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{name}: could not parse {s:?}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        smoke: false,
        out: "BENCH_serving.json".to_string(),
        config: WorkloadConfig::smoke(),
    };
    let c = &mut args.config;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--addr" => args.addr = Some(take("--addr")?),
            "--out" => args.out = take("--out")?,
            "--dim" => c.dim = parse_num(&take("--dim")?, "--dim")?,
            "--l" => c.l = parse_num(&take("--l")?, "--l")?,
            "--shards" => c.shards = parse_num(&take("--shards")?, "--shards")?,
            "--seed" => c.seed = parse_num(&take("--seed")?, "--seed")?,
            "--load-points" => c.load_points = parse_num(&take("--load-points")?, "--load-points")?,
            "--clients" => c.clients = parse_num(&take("--clients")?, "--clients")?,
            "--duration-secs" => {
                c.duration = Duration::from_secs_f64(parse_num(
                    &take("--duration-secs")?,
                    "--duration-secs",
                )?);
            }
            "--rate-per-client" => {
                c.rate_per_client = parse_num(&take("--rate-per-client")?, "--rate-per-client")?;
            }
            "--write-mix" => c.write_mix = parse_num(&take("--write-mix")?, "--write-mix")?,
            "--zipf-theta" => c.zipf_theta = parse_num(&take("--zipf-theta")?, "--zipf-theta")?,
            "--limit" => c.limit = Some(parse_num(&take("--limit")?, "--limit")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.smoke == args.addr.is_some() {
        return Err(format!("exactly one of --smoke / --addr\n{}", usage()));
    }
    if c.dim == 0 || c.l == 0 || c.shards == 0 || c.clients < 2 {
        return Err("--dim, --l, --shards must be nonzero; --clients at least 2".to_string());
    }
    Ok(args)
}

fn render_json(r: &Report) -> String {
    let c = &r.config;
    format!(
        "{{\n  \"serving_smoke\": {{ \"dim\": {}, \"l\": {}, \"shards\": {}, \"seed\": {}, \
\"loaded\": {}, \"load_ns\": {}, \"load_points_per_s\": {:.0}, \"clients\": {}, \
\"zipf_theta\": {:.2}, \"write_mix\": {:.2}, \"run_ns\": {}, \"queries\": {}, \
\"query_throughput_per_s\": {:.0}, \"query_p50_ns\": {}, \"query_p99_ns\": {}, \
\"query_p999_ns\": {}, \"write_batches\": {}, \"write_ops\": {}, \"write_p50_ns\": {}, \
\"write_p99_ns\": {}, \"write_p999_ns\": {}, \"final_epoch\": {}, \"final_len\": {}, \
\"parity_checksum\": \"{:#018x}\", \"parity\": \"{}\" }}\n}}\n",
        c.dim,
        c.l,
        c.shards,
        c.seed,
        c.load_points,
        r.load_ns,
        r.load_throughput(),
        c.clients,
        c.zipf_theta,
        c.write_mix,
        r.run_ns,
        r.queries,
        r.query_throughput(),
        r.query_pcts_ns[0],
        r.query_pcts_ns[1],
        r.query_pcts_ns[2],
        r.write_batches,
        r.write_ops,
        r.write_pcts_ns[0],
        r.write_pcts_ns[1],
        r.write_pcts_ns[2],
        r.final_epoch,
        r.final_len,
        r.parity_checksum,
        if r.parity_ok { "ok" } else { "FAILED" },
    )
}

fn run_against(addr: SocketAddr, args: &Args) -> std::io::Result<Report> {
    eprintln!(
        "dsh-loadgen: dim={} l={} shards={} seed={} load={} clients={} duration={:?} -> {addr}",
        args.config.dim,
        args.config.l,
        args.config.shards,
        args.config.seed,
        args.config.load_points,
        args.config.clients,
        args.config.duration,
    );
    run(addr, &args.config)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let report = if args.smoke {
        // In-process server on a loopback port, torn down after the run.
        let c = &args.config;
        let index = ShardedIndex::build(
            &BitSampling::new(c.dim),
            BitStore::with_dim(c.dim),
            c.l,
            c.shards,
            &mut seeded(c.seed),
        );
        let handle = match spawn("127.0.0.1:0", index, ServerConfig::new(c.row_elems())) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("spawn server: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = run_against(handle.addr(), &args);
        if let Err(e) = handle.stop() {
            eprintln!("server shutdown: {e}");
            return ExitCode::FAILURE;
        }
        report
    } else {
        let addr = args.addr.as_deref().unwrap_or_default();
        match addr.parse::<SocketAddr>() {
            Ok(addr) => run_against(addr, &args),
            Err(e) => {
                eprintln!("--addr {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let report = match report {
        Ok(report) => report,
        Err(e) => {
            eprintln!("run: {e}");
            return ExitCode::FAILURE;
        }
    };

    let json = render_json(&report);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprint!("{json}");
    eprintln!(
        "dsh-loadgen: {} queries ({:.0}/s), p50/p99/p999 = {}/{}/{} us, parity {}",
        report.queries,
        report.query_throughput(),
        report.query_pcts_ns[0] / 1000,
        report.query_pcts_ns[1] / 1000,
        report.query_pcts_ns[2] / 1000,
        if report.parity_ok { "ok" } else { "FAILED" },
    );
    if report.parity_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
