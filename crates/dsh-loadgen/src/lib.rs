//! Open-loop load generation against a `dsh-server`, with answer-parity
//! checking.
//!
//! A run has five phases:
//!
//! 1. **Load** — insert `load_points` random points over the wire in
//!    group-commit batches;
//! 2. **Parity sweep** — replay the whole write log on an in-process
//!    replica (same family, seed, shard count → bit-identical index) and
//!    compare an FNV-1a checksum over every sweep query's `(stats, ids)`
//!    answer, wire vs replica;
//! 3. **Timed open-loop run** — one writer connection applies mixed
//!    insert/remove batches while `clients - 1` query connections fire
//!    Zipfian-skewed queries at scheduled arrival times. Latency is
//!    measured from the *scheduled* start, so a stalled server keeps
//!    accumulating debt instead of silently thinning the arrival stream
//!    (no coordinated omission);
//! 4. **Quiesce** — writers stop, the log is frozen;
//! 5. **Final parity** — the sweep re-runs against the final state and
//!    the served index's `len`/`id bound`/`epoch` must match the
//!    replica's exactly.
//!
//! The replica replays the log with the same group-commit boundaries the
//! wire used ([`dsh_index::ShardedIndex::apply_batch`] per wire batch),
//! so epochs must match too, not just answers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dsh_core::points::{BitStore, BitVector};
use dsh_hamming::BitSampling;
use dsh_index::ShardedIndex;
use dsh_math::rng::seeded;
use dsh_server::Client;
use rand::Rng;

/// Everything a run needs. The `dim`/`l`/`shards`/`seed` quadruple must
/// match the server's build parameters — parity is checked against an
/// in-process index built from them.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Point dimension (Hamming).
    pub dim: usize,
    /// Hash repetitions `L`.
    pub l: usize,
    /// Shard count.
    pub shards: usize,
    /// Index build seed.
    pub seed: u64,
    /// Points inserted in the load phase.
    pub load_points: usize,
    /// Rows per wire batch during the load phase.
    pub load_batch: usize,
    /// Total connections in the timed phase (1 writer + the rest
    /// query clients); minimum 2.
    pub clients: usize,
    /// Timed-phase duration.
    pub duration: Duration,
    /// Scheduled query arrivals per second, per query client.
    pub rate_per_client: f64,
    /// Fraction of writer ops that are removes (the rest insert).
    pub write_mix: f64,
    /// Ops per writer wire batch.
    pub write_batch: usize,
    /// Zipfian skew of query-pool picks (0 = uniform).
    pub zipf_theta: f64,
    /// Distinct query rows in the pool.
    pub query_pool: usize,
    /// Queries per parity sweep.
    pub sweep_queries: usize,
    /// Retrieval limit sent with every query.
    pub limit: Option<usize>,
}

impl WorkloadConfig {
    /// The CI smoke workload: small, seconds-long, parity-checked.
    pub fn smoke() -> Self {
        WorkloadConfig {
            dim: 64,
            l: 8,
            shards: 4,
            seed: 42,
            load_points: 8_000,
            load_batch: 256,
            clients: 4,
            duration: Duration::from_secs(2),
            rate_per_client: 100.0,
            write_mix: 0.2,
            write_batch: 32,
            zipf_theta: 0.99,
            query_pool: 512,
            sweep_queries: 256,
            limit: None,
        }
    }

    /// Elements per wire row for this dimension.
    pub fn row_elems(&self) -> usize {
        self.dim.div_ceil(64)
    }
}

/// What a run measured; see [`run`]. Latencies in nanoseconds.
#[derive(Debug, Clone)]
pub struct Report {
    /// The workload that produced this report.
    pub config: WorkloadConfig,
    /// Load-phase wall time.
    pub load_ns: u64,
    /// Queries answered in the timed phase.
    pub queries: u64,
    /// Writer batches committed in the timed phase.
    pub write_batches: u64,
    /// Writer ops (inserts + removes) in the timed phase.
    pub write_ops: u64,
    /// Timed-phase wall time.
    pub run_ns: u64,
    /// Query latency percentiles `[p50, p99, p999]`, scheduled-start
    /// relative (coordinated omission included).
    pub query_pcts_ns: [u64; 3],
    /// Writer batch-commit latency percentiles `[p50, p99, p999]`.
    pub write_pcts_ns: [u64; 3],
    /// Served index epoch after quiesce.
    pub final_epoch: u64,
    /// Live points after quiesce.
    pub final_len: u64,
    /// FNV-1a checksum of the final parity sweep (wire side; the
    /// replica side matched if `parity_ok`).
    pub parity_checksum: u64,
    /// Both parity sweeps and the final `len`/`id bound`/`epoch`
    /// matched the in-process replay.
    pub parity_ok: bool,
}

impl Report {
    /// Timed-phase query throughput, per second.
    pub fn query_throughput(&self) -> f64 {
        if self.run_ns == 0 {
            0.0
        } else {
            self.queries as f64 / (self.run_ns as f64 / 1e9)
        }
    }

    /// Load-phase ingest throughput, points per second.
    pub fn load_throughput(&self) -> f64 {
        if self.load_ns == 0 {
            0.0
        } else {
            self.config.load_points as f64 / (self.load_ns as f64 / 1e9)
        }
    }
}

/// One logical wire write batch, for the in-process replay.
enum WireOp {
    /// Flat row-major rows.
    Insert(Vec<u64>),
    Remove(Vec<u64>),
}

/// Zipfian sampler over ranks `0..n` (rank 0 most popular):
/// `P(i) ∝ 1 / (i + 1)^theta`, sampled by binary search over the
/// cumulative weights.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build for `n` ranks with skew `theta` (0 = uniform).
    pub fn new(n: usize, theta: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draw a rank.
    pub fn sample(&self, rng: &mut dyn Rng) -> usize {
        let total = self.cumulative.last().copied().unwrap_or(1.0);
        let u: f64 = rng.random::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len().saturating_sub(1))
    }
}

/// FNV-1a over a stream of `u64`s (little-endian bytes).
pub fn fnv1a(acc: u64, words: &[u64]) -> u64 {
    let mut h = acc;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// FNV-1a offset basis.
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// `[p50, p99, p999]` of `latencies` (sorted in place). Zeros when
/// empty.
pub fn percentiles(latencies: &mut [u64]) -> [u64; 3] {
    if latencies.is_empty() {
        return [0; 3];
    }
    latencies.sort_unstable();
    let pick = |p: f64| {
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    [pick(0.50), pick(0.99), pick(0.999)]
}

fn random_rows(rng: &mut dyn Rng, dim: usize, n: usize) -> Vec<u64> {
    let mut flat = Vec::with_capacity(n * dim.div_ceil(64));
    for _ in 0..n {
        flat.extend_from_slice(BitVector::random(&mut *rng, dim).as_blocks());
    }
    flat
}

fn io_err(what: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what)
}

/// Sweep the query pool prefix over the wire, folding every answer
/// `(stats, ids)` into one checksum.
fn wire_sweep(
    client: &mut Client,
    pool: &[u64],
    row_elems: usize,
    n: usize,
    limit: Option<usize>,
) -> std::io::Result<u64> {
    let mut h = FNV_SEED;
    for row in pool.chunks(row_elems).take(n) {
        let r = client.query(row, limit)?;
        h = fnv1a(h, &r.stats);
        h = fnv1a(h, &r.ids);
    }
    Ok(h)
}

/// The same sweep on the in-process replica.
fn replica_sweep(
    replica: &ShardedIndex<BitStore>,
    pool: &[u64],
    row_elems: usize,
    n: usize,
    limit: Option<usize>,
) -> u64 {
    let mut h = FNV_SEED;
    for row in pool.chunks(row_elems).take(n) {
        let (ids, stats) = replica.candidates(row, limit);
        h = fnv1a(
            h,
            &[
                stats.tables_probed as u64,
                stats.candidates_retrieved as u64,
                stats.distinct_candidates as u64,
                stats.duplicates as u64,
                stats.distance_computations as u64,
            ],
        );
        let ids: Vec<u64> = ids.iter().map(|&i| i as u64).collect();
        h = fnv1a(h, &ids);
    }
    h
}

fn apply_log(replica: &mut ShardedIndex<BitStore>, log: &[WireOp], row_elems: usize) {
    for op in log {
        match op {
            WireOp::Insert(rows) => {
                let mut batch = replica.new_batch();
                for row in rows.chunks(row_elems) {
                    batch.insert(row);
                }
                // The server applied this exact batch, so it validates.
                let _ = replica.apply_batch(&batch);
            }
            WireOp::Remove(ids) => {
                let mut batch = replica.new_batch();
                for &id in ids {
                    batch.remove(id as usize);
                }
                let _ = replica.apply_batch(&batch);
            }
        }
    }
}

/// Run the workload against the server at `addr`. The server must have
/// been built with `config`'s `dim`/`l`/`shards`/`seed` and be empty
/// (epoch 0) — both are checked before any load is applied.
pub fn run(addr: SocketAddr, config: &WorkloadConfig) -> std::io::Result<Report> {
    let row_elems = config.row_elems();
    let mut control = Client::connect(addr)?;
    let info = control.info()?;
    if info.row_elems as usize != row_elems {
        return Err(io_err(format!(
            "server row shape {} != expected {row_elems} (wrong --dim?)",
            info.row_elems
        )));
    }
    if info.num_shards as usize != config.shards || info.repetitions as usize != config.l {
        return Err(io_err(format!(
            "server built with shards={} l={}, expected shards={} l={}",
            info.num_shards, info.repetitions, config.shards, config.l
        )));
    }
    if info.epoch != 0 || info.id_bound != 0 {
        return Err(io_err(
            "server is not empty; parity replay needs an epoch-0 start".to_string(),
        ));
    }

    let mut rng = seeded(config.seed ^ 0xDA7A);
    let log = Mutex::new(Vec::<WireOp>::new());

    // Phase 1: load.
    let load_started = Instant::now();
    {
        let mut log = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut remaining = config.load_points;
        while remaining > 0 {
            let n = remaining.min(config.load_batch.max(1));
            let rows = random_rows(&mut rng, config.dim, n);
            control.insert_batch(row_elems, &rows)?;
            log.push(WireOp::Insert(rows));
            remaining -= n;
        }
    }
    let load_ns = load_started.elapsed().as_nanos() as u64;

    // Phase 2: parity sweep against the loaded state.
    let pool = random_rows(&mut rng, config.dim, config.query_pool.max(1));
    let sweep_n = config.sweep_queries.min(config.query_pool.max(1));
    let mut replica = ShardedIndex::build(
        &BitSampling::new(config.dim),
        BitStore::with_dim(config.dim),
        config.l,
        config.shards,
        &mut seeded(config.seed),
    );
    {
        let guard = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        apply_log(&mut replica, &guard, row_elems);
    }
    let wire_sum = wire_sweep(&mut control, &pool, row_elems, sweep_n, config.limit)?;
    let replica_sum = replica_sweep(&replica, &pool, row_elems, sweep_n, config.limit);
    let mut parity_ok = wire_sum == replica_sum;

    // Phase 3: timed open-loop run.
    let zipf = Zipf::new(config.query_pool.max(1), config.zipf_theta);
    let query_clients = config.clients.saturating_sub(1).max(1);
    let stop = AtomicBool::new(false);
    let deadline = config.duration;
    let run_started = Instant::now();
    let period = Duration::from_secs_f64(1.0 / config.rate_per_client.max(1.0));

    struct TimedResults {
        query_lat: Vec<u64>,
        write_lat: Vec<u64>,
        write_batches: u64,
        write_ops: u64,
    }

    let timed: std::io::Result<TimedResults> = std::thread::scope(|scope| {
        // Writer connection: paced mixed batches, logged for replay.
        let writer = scope.spawn(|| -> std::io::Result<(Vec<u64>, u64, u64)> {
            let mut client = Client::connect(addr)?;
            let mut rng = seeded(config.seed ^ 0x3217E);
            let mut live: Vec<u64> = (0..config.load_points as u64).collect();
            let mut next_id = config.load_points as u64;
            let mut latencies = Vec::new();
            let mut batches = 0u64;
            let mut ops = 0u64;
            while !stop.load(Ordering::Acquire) {
                // Stage one mixed batch.
                let mut removes: Vec<u64> = Vec::new();
                let mut insert_rows: Vec<u64> = Vec::new();
                let mut inserts = 0usize;
                for _ in 0..config.write_batch.max(1) {
                    if !live.is_empty() && rng.random_bool(config.write_mix.clamp(0.0, 1.0)) {
                        let at = rng.random_range(0..live.len());
                        removes.push(live.swap_remove(at));
                    } else {
                        insert_rows.extend(random_rows(&mut rng, config.dim, 1));
                        inserts += 1;
                    }
                }
                // Wire protocol batches are homogeneous (insert XOR
                // remove); send removes first so their ids predate the
                // batch's inserts.
                if !removes.is_empty() {
                    let t = Instant::now();
                    client.remove_batch(&removes)?;
                    latencies.push(t.elapsed().as_nanos() as u64);
                    batches += 1;
                    ops += removes.len() as u64;
                    log.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(WireOp::Remove(removes));
                }
                if inserts > 0 {
                    let t = Instant::now();
                    let (_, ids) = client.insert_batch(row_elems, &insert_rows)?;
                    latencies.push(t.elapsed().as_nanos() as u64);
                    batches += 1;
                    ops += inserts as u64;
                    debug_assert_eq!(ids.first().copied(), Some(next_id));
                    live.extend(next_id..next_id + inserts as u64);
                    next_id += inserts as u64;
                    log.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(WireOp::Insert(insert_rows));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok((latencies, batches, ops))
        });

        let readers: Vec<_> = (0..query_clients)
            .map(|t| {
                let zipf = &zipf;
                let pool = &pool;
                let stop = &stop;
                scope.spawn(move || -> std::io::Result<Vec<u64>> {
                    let mut client = Client::connect(addr)?;
                    let mut rng = seeded(config.seed ^ 0xC11E47 ^ (t as u64) << 32);
                    let started = Instant::now();
                    let mut latencies = Vec::new();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        // Open loop: the i-th arrival is *scheduled* at
                        // i * period; latency runs from the schedule,
                        // not from the send.
                        let scheduled = period
                            .checked_mul(i as u32)
                            .unwrap_or_else(|| period * u32::MAX);
                        let now = started.elapsed();
                        if now < scheduled {
                            std::thread::sleep(scheduled - now);
                        }
                        let rank = zipf.sample(&mut rng);
                        let row = &pool[rank * row_elems..(rank + 1) * row_elems];
                        client.query(row, config.limit)?;
                        latencies
                            .push(started.elapsed().saturating_sub(scheduled).as_nanos() as u64);
                        i += 1;
                    }
                    Ok(latencies)
                })
            })
            .collect();

        std::thread::sleep(deadline);
        stop.store(true, Ordering::Release);

        let (write_lat, write_batches, write_ops) = writer
            .join()
            .map_err(|_| io_err("writer thread panicked".to_string()))??;
        let mut query_lat = Vec::new();
        for r in readers {
            query_lat.extend(
                r.join()
                    .map_err(|_| io_err("query thread panicked".to_string()))??,
            );
        }
        Ok(TimedResults {
            query_lat,
            write_lat,
            write_batches,
            write_ops,
        })
    });
    let mut timed = timed?;
    let run_ns = run_started.elapsed().as_nanos() as u64;

    // Phases 4 + 5: quiesce and final parity.
    let mut replica = ShardedIndex::build(
        &BitSampling::new(config.dim),
        BitStore::with_dim(config.dim),
        config.l,
        config.shards,
        &mut seeded(config.seed),
    );
    {
        let guard = log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        apply_log(&mut replica, &guard, row_elems);
    }
    let wire_sum = wire_sweep(&mut control, &pool, row_elems, sweep_n, config.limit)?;
    let replica_sum = replica_sweep(&replica, &pool, row_elems, sweep_n, config.limit);
    parity_ok &= wire_sum == replica_sum;

    let info = control.info()?;
    parity_ok &= info.len == replica.len() as u64
        && info.id_bound == replica.id_bound() as u64
        && info.epoch == replica.epoch();

    Ok(Report {
        config: config.clone(),
        load_ns,
        queries: timed.query_lat.len() as u64,
        write_batches: timed.write_batches,
        write_ops: timed.write_ops,
        run_ns,
        query_pcts_ns: percentiles(&mut timed.query_lat),
        write_pcts_ns: percentiles(&mut timed.write_lat),
        final_epoch: info.epoch,
        final_len: info.len,
        parity_checksum: wire_sum,
        parity_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_toward_low_ranks_and_in_range() {
        let zipf = Zipf::new(100, 0.99);
        let mut rng = seeded(7);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            let rank = zipf.sample(&mut rng);
            assert!(rank < 100);
            counts[rank] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // Uniform when theta = 0: top rank is no runaway.
        let flat = Zipf::new(100, 0.0);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[flat.sample(&mut rng)] += 1;
        }
        assert!(counts[0] < 600, "{}", counts[0]);
    }

    #[test]
    fn percentiles_pick_the_right_order_statistics() {
        let mut lat: Vec<u64> = (1..=1000).rev().collect();
        // p50 of 1..=1000 lands on index round(999 * 0.5) = 500.
        assert_eq!(percentiles(&mut lat), [501, 990, 999]);
        assert_eq!(percentiles(&mut []), [0, 0, 0]);
    }

    #[test]
    fn fnv_matches_the_reference_vector() {
        // FNV-1a of the empty input is the offset basis; of b"a" (as a
        // u64 word it differs — pin our word-wise convention instead).
        assert_eq!(fnv1a(FNV_SEED, &[]), FNV_SEED);
        let h1 = fnv1a(FNV_SEED, &[1]);
        let h2 = fnv1a(FNV_SEED, &[2]);
        assert_ne!(h1, h2);
        // Order sensitivity.
        assert_ne!(fnv1a(FNV_SEED, &[1, 2]), fnv1a(FNV_SEED, &[2, 1]));
    }
}
