//! `dsh-server` — serve a Hamming ([`BitSampling`]) sharded index over
//! TCP.
//!
//! ```text
//! dsh-server [--addr 127.0.0.1:7465] [--dim 64] [--l 8] [--shards 4] [--seed 42]
//! ```
//!
//! The index starts empty; clients populate it over the wire. All
//! parameters that shape the index (dimension, repetitions, shard
//! count, RNG seed) are fixed at startup — a client replaying the same
//! build parameters in-process reproduces the served index bit for bit,
//! which is how `dsh-loadgen` checks answer parity.

use std::process::ExitCode;

use dsh_core::points::BitStore;
use dsh_hamming::BitSampling;
use dsh_index::ShardedIndex;
use dsh_math::rng::seeded;
use dsh_server::server::{serve, ServerConfig};

struct Args {
    addr: String,
    dim: usize,
    l: usize,
    shards: usize,
    seed: u64,
}

fn usage() -> &'static str {
    "usage: dsh-server [--addr HOST:PORT] [--dim D] [--l L] [--shards N] [--seed S]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7465".to_string(),
        dim: 64,
        l: 8,
        shards: 4,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--addr" => args.addr = take("--addr")?,
            "--dim" => args.dim = parse_num(&take("--dim")?, "--dim")?,
            "--l" => args.l = parse_num(&take("--l")?, "--l")?,
            "--shards" => args.shards = parse_num(&take("--shards")?, "--shards")?,
            "--seed" => args.seed = parse_num(&take("--seed")?, "--seed")?,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.dim == 0 || args.l == 0 || args.shards == 0 {
        return Err("--dim, --l, and --shards must be nonzero".to_string());
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{name}: could not parse {s:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng = seeded(args.seed);
    let index = ShardedIndex::build(
        &BitSampling::new(args.dim),
        BitStore::with_dim(args.dim),
        args.l,
        args.shards,
        &mut rng,
    );
    let row_elems = args.dim.div_ceil(64);
    let listener = match std::net::TcpListener::bind(&args.addr) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => eprintln!(
            "dsh-server: serving dim={} l={} shards={} seed={} on {addr}",
            args.dim, args.l, args.shards, args.seed
        ),
        Err(_) => eprintln!("dsh-server: serving on {}", args.addr),
    }
    let shutdown = std::sync::atomic::AtomicBool::new(false);
    match serve(&listener, index, &ServerConfig::new(row_elems), &shutdown) {
        Ok(_index) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
