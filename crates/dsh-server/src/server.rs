//! The serving loop: a thread-per-connection TCP server over a live
//! [`ShardedIndex`].
//!
//! # Concurrency model
//!
//! No async runtime — an accept loop on a nonblocking listener hands
//! each connection to a scoped OS thread ([`std::thread::scope`]), so
//! every connection handler borrows the shared state directly and the
//! server cannot outlive (or leak) its index.
//!
//! * **Queries never block on writers.** Each `Query`/`QueryBatch`
//!   request takes one wait-free [`ReaderHandle::snapshot`] and answers
//!   entirely from it; the response carries the snapshot's epoch. A
//!   `QueryBatch` is answered by a single snapshot, so its results are
//!   mutually consistent.
//! * **Writes are group commits.** Each `InsertBatch`/`RemoveBatch`
//!   request is staged into one [`dsh_index::WriteBatch`] and applied under the
//!   writer mutex as one [`ShardedIndex::apply_batch`] call — exactly
//!   one epoch per wire batch, none when the batch changed nothing. A
//!   rejected batch (unknown id, capacity) publishes nothing and leaves
//!   the index bit-identical.
//! * **Nothing on this path panics.** Malformed, truncated, or
//!   oversized frames get an error response and a connection teardown;
//!   semantic rejections get an error response on a connection that
//!   stays usable; a client disconnecting mid-write is a clean handler
//!   exit. The writer mutex recovers from poisoning (the index's
//!   publication protocol guarantees the cell always holds a
//!   fully-formed state). `dsh-lint` proves panic-freedom transitively
//!   from this file's public functions (a `[serving]` root).
//!
//! # Shutdown
//!
//! A `Shutdown` request (or [`ServerHandle::stop`]) sets a shared flag.
//! The accept loop polls it between accepts; connection handlers poll
//! it between reads (socket read timeouts double as the poll tick), so
//! the scope drains and [`serve`] returns.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use dsh_core::points::{AppendStore, AsRow};
use dsh_index::shard::ReaderHandle;
use dsh_index::{BatchError, ShardedIndex, WriteOutcome};

use crate::protocol::{
    decode_request, encode_done, encode_error, encode_info_response, encode_inserted,
    encode_query_batch_response, encode_query_response, encode_removed, write_frame, Opcode,
    Request, ServerInfo, Status, WireElem, WireQueryResult, MAX_FRAME,
};

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Elements per point row; every wire row must match. Must be
    /// nonzero.
    pub row_elems: usize,
    /// Socket read timeout — the tick at which idle connection handlers
    /// re-check the shutdown flag.
    pub read_timeout: Duration,
    /// Sleep between accept polls when no connection is pending.
    pub accept_poll: Duration,
}

impl ServerConfig {
    /// Defaults for a `row_elems`-shaped index: 25 ms read timeout,
    /// 1 ms accept poll.
    pub fn new(row_elems: usize) -> Self {
        ServerConfig {
            row_elems,
            read_timeout: Duration::from_millis(25),
            accept_poll: Duration::from_millis(1),
        }
    }
}

struct Shared<S: AppendStore + Clone> {
    index: Mutex<ShardedIndex<S>>,
    reader: ReaderHandle<S>,
    row_elems: usize,
    shutdown: AtomicBool,
}

/// Run the serving loop on `listener` until a `Shutdown` request
/// arrives or `shutdown` is set externally. Blocks the calling thread;
/// connection handlers run on scoped threads inside. Returns the index
/// in its final state.
pub fn serve<E, S>(
    listener: &TcpListener,
    index: ShardedIndex<S>,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> std::io::Result<ShardedIndex<S>>
where
    E: WireElem,
    S: AppendStore<Row = [E]> + Clone,
    [E]: AsRow<Row = [E]>,
{
    if config.row_elems == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "row_elems must be nonzero",
        ));
    }
    listener.set_nonblocking(true)?;
    let shared = Shared {
        reader: index.reader_handle(),
        index: Mutex::new(index),
        row_elems: config.row_elems,
        shutdown: AtomicBool::new(false),
    };
    std::thread::scope(|scope| {
        loop {
            if shutdown.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = &shared;
                    let config = &config;
                    scope.spawn(move || {
                        // A connection dying (io error, teardown-class
                        // protocol violation) takes down its handler
                        // thread only, never the server.
                        let _ = handle_connection(stream, shared, config);
                    });
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(config.accept_poll);
                }
                Err(_) => {
                    // Accept failures (fd pressure, transient network
                    // errors) must not kill the serving loop.
                    std::thread::sleep(config.accept_poll);
                }
            }
        }
    });
    let index = shared
        .index
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    Ok(index)
}

/// A server running on a background OS thread; see [`spawn`].
pub struct ServerHandle<S: AppendStore + Clone> {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<std::io::Result<ShardedIndex<S>>>,
}

impl<S: AppendStore + Clone> ServerHandle<S> {
    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and wait for the serving loop to drain; returns
    /// the index in its final state.
    pub fn stop(self) -> std::io::Result<ShardedIndex<S>> {
        self.shutdown.store(true, Ordering::Release);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }

    /// Wait for the serving loop to exit on its own (a wire `Shutdown`
    /// request); returns the index in its final state.
    pub fn join(self) -> std::io::Result<ShardedIndex<S>> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and run
/// [`serve`] on a background thread.
pub fn spawn<E, S>(
    addr: &str,
    index: ShardedIndex<S>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle<S>>
where
    E: WireElem,
    S: AppendStore<Row = [E]> + Clone + 'static,
    [E]: AsRow<Row = [E]>,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::Builder::new()
        .name("dsh-serve".to_string())
        .spawn(move || serve(&listener, index, &config, &flag))?;
    Ok(ServerHandle {
        addr,
        shutdown,
        thread,
    })
}

enum ConnRead {
    Frame,
    Closed,
    TooLarge(u32),
    Shutdown,
}

/// Read one frame, polling the shutdown flag on every read-timeout
/// tick. A peer close between frames is [`ConnRead::Closed`]; a close
/// mid-frame is an `UnexpectedEof` error (the handler tears down).
fn read_frame_polling(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> std::io::Result<ConnRead> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        if shutdown.load(Ordering::Acquire) {
            return Ok(ConnRead::Shutdown);
        }
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ConnRead::Closed)
                } else {
                    Err(std::io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Ok(ConnRead::TooLarge(len));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Ok(ConnRead::Shutdown);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(std::io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ConnRead::Frame)
}

fn handle_connection<E, S>(
    mut stream: TcpStream,
    shared: &Shared<S>,
    config: &ServerConfig,
) -> std::io::Result<()>
where
    E: WireElem,
    S: AppendStore<Row = [E]> + Clone,
    [E]: AsRow<Row = [E]>,
{
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(config.read_timeout))?;
    let mut buf = Vec::new();
    loop {
        match read_frame_polling(&mut stream, &mut buf, &shared.shutdown)? {
            ConnRead::Closed | ConnRead::Shutdown => return Ok(()),
            ConnRead::TooLarge(len) => {
                // The prefix itself is untrusted, so the payload was
                // never read — respond, then tear down: the stream
                // position is unrecoverable.
                let msg = format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte ceiling");
                let payload = encode_error(Status::FrameTooLarge, None, &msg);
                write_frame(&mut stream, &payload)?;
                return Ok(());
            }
            ConnRead::Frame => {}
        }
        let (payload, last) = match decode_request::<E>(&buf, shared.row_elems) {
            Ok(request) => handle_request(shared, request),
            Err(err) => {
                let status = err.status();
                let op = buf.first().copied().and_then(Opcode::from_u8);
                (
                    encode_error(status, op, &err.to_string()),
                    status.tears_down(),
                )
            }
        };
        write_frame(&mut stream, &payload)?;
        if last {
            return Ok(());
        }
    }
}

/// Answer one decoded request. Returns the response payload and whether
/// the connection must close afterwards.
fn handle_request<E, S>(shared: &Shared<S>, request: Request<E>) -> (Vec<u8>, bool)
where
    E: WireElem,
    S: AppendStore<Row = [E]> + Clone,
    [E]: AsRow<Row = [E]>,
{
    match request {
        Request::Info => {
            let snap = shared.reader.snapshot();
            let info = ServerInfo {
                row_elems: shared.row_elems as u32,
                num_shards: snap.num_shards() as u32,
                repetitions: snap.repetitions() as u32,
                len: snap.len() as u64,
                id_bound: snap.id_bound() as u64,
                epoch: snap.epoch(),
            };
            (encode_info_response(&info), false)
        }
        Request::InsertBatch { count: _, rows } => {
            let mut index = lock_writer(shared);
            let mut batch = index.new_batch();
            for row in rows.chunks(shared.row_elems) {
                batch.insert(row);
            }
            match index.apply_batch(&batch) {
                Ok(outcomes) => {
                    let ids: Vec<u64> = outcomes
                        .iter()
                        .filter_map(|o| match o {
                            WriteOutcome::Inserted(id) => Some(*id as u64),
                            WriteOutcome::Removed(_) => None,
                        })
                        .collect();
                    (encode_inserted(index.epoch(), &ids), false)
                }
                Err(err) => (batch_error_response(Opcode::InsertBatch, &err), false),
            }
        }
        Request::RemoveBatch { ids } => {
            let mut index = lock_writer(shared);
            let mut batch = index.new_batch();
            for &id in &ids {
                // An id beyond the host's usize is certainly beyond the
                // id bound; stage the bound itself so validation rejects
                // the batch with `UnknownId` instead of panicking here.
                let id = usize::try_from(id).unwrap_or(index.id_bound());
                batch.remove(id);
            }
            match index.apply_batch(&batch) {
                Ok(outcomes) => {
                    let removed: Vec<bool> = outcomes
                        .iter()
                        .filter_map(|o| match o {
                            WriteOutcome::Removed(r) => Some(*r),
                            WriteOutcome::Inserted(_) => None,
                        })
                        .collect();
                    (encode_removed(index.epoch(), &removed), false)
                }
                Err(err) => (batch_error_response(Opcode::RemoveBatch, &err), false),
            }
        }
        Request::Query { row, limit } => {
            let snap = shared.reader.snapshot();
            let (ids, stats) = snap.candidates(&row[..], limit);
            let result = WireQueryResult {
                epoch: snap.epoch(),
                stats: stats_to_wire(&stats),
                ids: ids.iter().map(|&id| id as u64).collect(),
            };
            (encode_query_response(&result), false)
        }
        Request::QueryBatch {
            count: _,
            rows,
            limit,
        } => {
            // One snapshot answers the whole batch: results are mutually
            // consistent and carry one epoch.
            let snap = shared.reader.snapshot();
            let mut scratch = snap.new_scratch();
            let epoch = snap.epoch();
            let results: Vec<WireQueryResult> = rows
                .chunks(shared.row_elems)
                .map(|row| {
                    let (ids, stats) = snap.candidates_with(row, limit, &mut scratch);
                    WireQueryResult {
                        epoch,
                        stats: stats_to_wire(&stats),
                        ids: ids.iter().map(|&id| id as u64).collect(),
                    }
                })
                .collect();
            (encode_query_batch_response(&results), false)
        }
        Request::Seal => {
            let mut index = lock_writer(shared);
            index.seal();
            (encode_done(Opcode::Seal, index.epoch()), false)
        }
        Request::Compact => {
            let mut index = lock_writer(shared);
            index.compact();
            (encode_done(Opcode::Compact, index.epoch()), false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            let epoch = shared.reader.snapshot().epoch();
            (encode_done(Opcode::Shutdown, epoch), true)
        }
    }
}

/// Lock the writer mutex, recovering from poisoning: the publication
/// protocol guarantees the index behind it is always fully formed (see
/// the poisoning policy on `ShardedIndex::publish`), so a panicked
/// earlier writer must not wedge the write path forever.
fn lock_writer<S: AppendStore + Clone>(
    shared: &Shared<S>,
) -> std::sync::MutexGuard<'_, ShardedIndex<S>> {
    shared.index.lock().unwrap_or_else(PoisonError::into_inner)
}

fn stats_to_wire(stats: &dsh_index::QueryStats) -> [u64; 5] {
    [
        stats.tables_probed as u64,
        stats.candidates_retrieved as u64,
        stats.distinct_candidates as u64,
        stats.duplicates as u64,
        stats.distance_computations as u64,
    ]
}

fn batch_error_response(op: Opcode, err: &BatchError) -> Vec<u8> {
    let status = match err {
        BatchError::UnknownId { .. } => Status::UnknownId,
        BatchError::CapacityExceeded { .. } => Status::Capacity,
    };
    encode_error(status, Some(op), &err.to_string())
}
