//! A minimal blocking client: one connection, strict request/response.
//!
//! Used by `dsh-loadgen` and the protocol tests. Not part of the
//! serving path — it runs in the load generator's process.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{
    decode_response, encode_bodyless, encode_info, encode_insert_batch, encode_query,
    encode_query_batch, encode_remove_batch, read_frame, write_frame, FrameIn, Opcode, Response,
    ServerInfo, Status, WireElem, WireQueryResult,
};

fn bad_reply(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

/// A reply the caller did not expect, surfaced as an error value (the
/// client never panics on server output).
fn unexpected(resp: Response) -> std::io::Error {
    match resp {
        Response::Error {
            status, message, ..
        } => bad_reply(&format!(
            "server rejected the request (status {}): {message}",
            status as u8
        )),
        other => bad_reply(&format!("unexpected response variant: {other:?}")),
    }
}

/// One blocking connection to a `dsh-server`.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connect.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Connect, giving up after `timeout`.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Send a raw request payload and decode the response. Public so
    /// tests can send deliberately malformed payloads.
    pub fn call(&mut self, payload: &[u8]) -> std::io::Result<Response> {
        write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    /// Write raw bytes (not necessarily a whole frame) — for tests that
    /// violate the framing on purpose.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Read one response frame.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        match read_frame(&mut self.stream, &mut self.buf)? {
            None => Err(std::io::ErrorKind::UnexpectedEof.into()),
            Some(FrameIn::TooLarge(len)) => {
                Err(bad_reply(&format!("server sent a {len}-byte frame")))
            }
            Some(FrameIn::Payload) => {
                decode_response(&self.buf).ok_or_else(|| bad_reply("response did not decode"))
            }
        }
    }

    /// `Info` round trip.
    pub fn info(&mut self) -> std::io::Result<ServerInfo> {
        match self.call(&encode_info())? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected(other)),
        }
    }

    /// `InsertBatch` round trip: flat row-major rows of shape
    /// `row_elems`; returns the epoch and assigned ids.
    pub fn insert_batch<E: WireElem>(
        &mut self,
        row_elems: usize,
        rows: &[E],
    ) -> std::io::Result<(u64, Vec<u64>)> {
        match self.call(&encode_insert_batch(row_elems, rows))? {
            Response::Inserted { epoch, ids } => Ok((epoch, ids)),
            other => Err(unexpected(other)),
        }
    }

    /// `RemoveBatch` round trip; returns the epoch and per-id liveness.
    pub fn remove_batch(&mut self, ids: &[u64]) -> std::io::Result<(u64, Vec<bool>)> {
        match self.call(&encode_remove_batch(ids))? {
            Response::Removed { epoch, removed } => Ok((epoch, removed)),
            other => Err(unexpected(other)),
        }
    }

    /// `Query` round trip.
    pub fn query<E: WireElem>(
        &mut self,
        row: &[E],
        limit: Option<usize>,
    ) -> std::io::Result<WireQueryResult> {
        match self.call(&encode_query(row, limit))? {
            Response::Query(result) => Ok(result),
            other => Err(unexpected(other)),
        }
    }

    /// `QueryBatch` round trip (one snapshot server-side).
    pub fn query_batch<E: WireElem>(
        &mut self,
        row_elems: usize,
        rows: &[E],
        limit: Option<usize>,
    ) -> std::io::Result<Vec<WireQueryResult>> {
        match self.call(&encode_query_batch(row_elems, rows, limit))? {
            Response::QueryBatch(results) => Ok(results),
            other => Err(unexpected(other)),
        }
    }

    /// `Seal` round trip; returns the epoch after sealing.
    pub fn seal(&mut self) -> std::io::Result<u64> {
        self.bodyless(Opcode::Seal)
    }

    /// `Compact` round trip; returns the epoch after compaction.
    pub fn compact(&mut self) -> std::io::Result<u64> {
        self.bodyless(Opcode::Compact)
    }

    /// `Shutdown` round trip; the server stops accepting and drains.
    pub fn shutdown(&mut self) -> std::io::Result<u64> {
        self.bodyless(Opcode::Shutdown)
    }

    fn bodyless(&mut self, op: Opcode) -> std::io::Result<u64> {
        match self.call(&encode_bodyless(op))? {
            Response::Done { op: echoed, epoch } if echoed == op => Ok(epoch),
            other => Err(unexpected(other)),
        }
    }

    /// Send a request expected to be rejected; returns the error status
    /// and message. Errors if the server accepted it.
    pub fn call_expecting_error(&mut self, payload: &[u8]) -> std::io::Result<(Status, String)> {
        match self.call(payload)? {
            Response::Error {
                status, message, ..
            } => Ok((status, message)),
            other => Err(bad_reply(&format!(
                "expected an error response, got: {other:?}"
            ))),
        }
    }
}
