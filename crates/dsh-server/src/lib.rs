//! TCP serving layer for the sharded index (ROADMAP item 1).
//!
//! Three pieces:
//!
//! * [`protocol`] — the length-prefixed binary wire format: checked,
//!   panic-free encode/decode for every request and response;
//! * [`server`] — the serving loop: a thread-per-connection accept loop
//!   (no async runtime) over a live [`dsh_index::ShardedIndex`], with
//!   wait-free snapshot queries and group-commit writes;
//! * [`client`] — a minimal blocking client for load generation and
//!   tests.
//!
//! The serving invariants — one snapshot per query request, one epoch
//! per wire write batch, error responses (never panics, never partial
//! application) for every malformed or rejected request — are
//! documented on [`server`] and enforced end-to-end by the wire tests
//! and by `dsh-lint`'s serving-path rule ([`protocol`] and [`server`]
//! are `[serving]` roots).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{Opcode, Request, Response, ServerInfo, Status, WireElem, WireQueryResult};
pub use server::{serve, spawn, ServerConfig, ServerHandle};
