//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! # Framing
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! [ u32 LE payload length | payload bytes ]
//! ```
//!
//! A length prefix above [`MAX_FRAME`] is rejected before any payload is
//! read ([`Status::FrameTooLarge`]) — a malicious or corrupt prefix must
//! not make the server allocate or wait for gigabytes. A stream that ends
//! mid-frame (client dropped mid-write) is a clean teardown, never a
//! panic.
//!
//! # Requests
//!
//! The payload starts with one opcode byte (see [`Opcode`]), followed by
//! an opcode-specific body. Multi-byte integers are little-endian.
//! Point rows travel as `u32` element count + that many 8-byte elements
//! ([`WireElem`]: `u64` bit-blocks or `f64` components, both 8 bytes on
//! the wire). The element count of every row must match the serving
//! index's row shape, or the request is [`Status::Malformed`].
//!
//! # Responses
//!
//! The payload is `status byte, opcode echo, body`. [`Status::Ok`]
//! carries the opcode-specific result; every other status carries a
//! UTF-8 diagnostic message. Semantic rejections — unknown id, capacity,
//! oversized batch — leave the connection open (the index is untouched:
//! writes are validated before any fork, so a rejected batch publishes
//! nothing). Protocol violations — malformed body, unknown opcode,
//! oversized frame — get a response *and then* connection teardown,
//! because a stream that framed one request wrong can no longer be
//! trusted to frame the next one right.
//!
//! Decoding never panics: every read is cursor-checked, every count is
//! validated against the bytes actually present before anything is
//! allocated. The serving-path lint proves this transitively (this file
//! is a `[serving]` root in `dsh-lint.toml`).

use std::io::{Read, Write};

/// Hard ceiling on a frame payload, requests and responses alike
/// (16 MiB). Large enough for a [`MAX_BATCH_OPS`]-insert batch of
/// modest-dimension points; small enough that a corrupt length prefix
/// cannot make either side allocate unbounded memory.
pub const MAX_FRAME: u32 = 16 << 20;

/// Most operations (inserts + removes) accepted in one wire batch.
/// One wire batch is one group commit — one epoch — so this also bounds
/// writer lock hold time per request.
pub const MAX_BATCH_OPS: u32 = 1 << 20;

/// Most queries accepted in one `QueryBatch` request.
pub const MAX_QUERY_BATCH: u32 = 1 << 16;

/// Wire value meaning "no retrieval limit" in query requests.
pub const NO_LIMIT: u64 = u64::MAX;

/// Request opcodes (first payload byte of a request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Describe the serving index: row shape, shards, repetitions, size.
    Info = 0x01,
    /// Insert a batch of rows as one group commit; returns assigned ids.
    InsertBatch = 0x02,
    /// Remove a batch of ids as one group commit; returns liveness flags.
    RemoveBatch = 0x03,
    /// Retrieve candidates for one query row against a fresh snapshot.
    Query = 0x04,
    /// Retrieve candidates for many query rows against one snapshot.
    QueryBatch = 0x05,
    /// Seal the delta segment (freeze it for compaction).
    Seal = 0x06,
    /// Compact sealed segments into one.
    Compact = 0x07,
    /// Stop accepting connections and shut the server down.
    Shutdown = 0x08,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Info),
            0x02 => Some(Opcode::InsertBatch),
            0x03 => Some(Opcode::RemoveBatch),
            0x04 => Some(Opcode::Query),
            0x05 => Some(Opcode::QueryBatch),
            0x06 => Some(Opcode::Seal),
            0x07 => Some(Opcode::Compact),
            0x08 => Some(Opcode::Shutdown),
            _ => None,
        }
    }
}

/// Response status (first payload byte of a response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; the body is the opcode-specific result.
    Ok = 0,
    /// The request body did not decode; the connection is torn down.
    Malformed = 1,
    /// Unknown opcode byte; the connection is torn down.
    UnknownOpcode = 2,
    /// Length prefix above [`MAX_FRAME`]; the connection is torn down.
    FrameTooLarge = 3,
    /// A remove referenced an id that was never assigned; the write was
    /// rejected whole, the connection stays open.
    UnknownId = 4,
    /// The insert would exceed the u32 id capacity; the write was
    /// rejected whole, the connection stays open.
    Capacity = 5,
    /// More ops than [`MAX_BATCH_OPS`] (or queries than
    /// [`MAX_QUERY_BATCH`]) in one request; rejected whole, the
    /// connection stays open.
    BatchTooLarge = 6,
}

impl Status {
    /// Decode a status byte.
    pub fn from_u8(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Malformed),
            2 => Some(Status::UnknownOpcode),
            3 => Some(Status::FrameTooLarge),
            4 => Some(Status::UnknownId),
            5 => Some(Status::Capacity),
            6 => Some(Status::BatchTooLarge),
            _ => None,
        }
    }

    /// True when the server tears the connection down after responding:
    /// the client violated the protocol, so the stream's framing can no
    /// longer be trusted.
    pub fn tears_down(self) -> bool {
        matches!(
            self,
            Status::Malformed | Status::UnknownOpcode | Status::FrameTooLarge
        )
    }
}

/// A point-row element that travels as 8 little-endian bytes: `u64`
/// bit-blocks (Hamming stores) or `f64` components (dense stores).
pub trait WireElem: Copy + Send + Sync + 'static {
    /// The 8 wire bytes, as a `u64` bit pattern.
    fn to_wire(self) -> u64;
    /// Rebuild the element from its wire bit pattern.
    fn from_wire(bits: u64) -> Self;
}

impl WireElem for u64 {
    fn to_wire(self) -> u64 {
        self
    }
    fn from_wire(bits: u64) -> u64 {
        bits
    }
}

impl WireElem for f64 {
    fn to_wire(self) -> u64 {
        self.to_bits()
    }
    fn from_wire(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
}

// ---------------------------------------------------------------------------
// Checked cursor
// ---------------------------------------------------------------------------

/// A bounds-checked read cursor over a frame payload. Every accessor
/// returns `None` past the end instead of panicking — the decode path
/// must survive any byte sequence a client can send.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when every byte has been consumed.
    pub fn done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = self.take(1)?;
        Some(b[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().ok()?;
        Some(u32::from_le_bytes(arr))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Read `n` 8-byte elements into `out`. Checks that all `8 * n`
    /// bytes are present **before** reserving, so a corrupt count can
    /// never drive allocation past the actual frame size.
    pub fn elems<E: WireElem>(&mut self, n: usize, out: &mut Vec<E>) -> Option<()> {
        if self.remaining() / 8 < n {
            return None;
        }
        out.reserve(n);
        for _ in 0..n {
            out.push(E::from_wire(self.u64()?));
        }
        Some(())
    }
}

/// Append a `u32` in wire (little-endian) order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in wire (little-endian) order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload too large")
    })?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame payload too large",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame payload into `buf` (blocking; the caller owns timeout
/// configuration). `Ok(None)` means the peer closed the stream cleanly
/// *between* frames; a close mid-frame is an `UnexpectedEof` error.
/// A length prefix above [`MAX_FRAME`] is reported without reading the
/// payload, so the caller can respond and tear down.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> std::io::Result<Option<FrameIn>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(std::io::ErrorKind::UnexpectedEof.into())
            };
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Ok(Some(FrameIn::TooLarge(len)));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(Some(FrameIn::Payload))
}

/// Outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameIn {
    /// A complete payload was read into the caller's buffer.
    Payload,
    /// The length prefix exceeded [`MAX_FRAME`]; nothing further was
    /// read from the stream.
    TooLarge(u32),
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded request, with rows held flat (`count × row_elems`
/// elements, row-major).
#[derive(Debug, Clone, PartialEq)]
pub enum Request<E: WireElem> {
    /// [`Opcode::Info`].
    Info,
    /// [`Opcode::InsertBatch`]: `count` rows, flat.
    InsertBatch {
        /// Number of rows.
        count: usize,
        /// `count * row_elems` elements, row-major.
        rows: Vec<E>,
    },
    /// [`Opcode::RemoveBatch`].
    RemoveBatch {
        /// The global ids to remove, in order.
        ids: Vec<u64>,
    },
    /// [`Opcode::Query`].
    Query {
        /// The query row.
        row: Vec<E>,
        /// Retrieval limit (`None` = exhaustive).
        limit: Option<usize>,
    },
    /// [`Opcode::QueryBatch`]: `count` query rows against one snapshot.
    QueryBatch {
        /// Number of query rows.
        count: usize,
        /// `count * row_elems` elements, row-major.
        rows: Vec<E>,
        /// Retrieval limit applied to every query (`None` = exhaustive).
        limit: Option<usize>,
    },
    /// [`Opcode::Seal`].
    Seal,
    /// [`Opcode::Compact`].
    Compact,
    /// [`Opcode::Shutdown`].
    Shutdown,
}

/// Why a request payload was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Body bytes did not match the opcode's grammar (wrong length,
    /// wrong row shape, trailing bytes, truncated counts).
    Malformed(&'static str),
    /// The first byte is not a known [`Opcode`].
    UnknownOpcode(u8),
    /// The op or query count exceeds the per-request ceiling.
    BatchTooLarge(u64),
}

impl DecodeError {
    /// The response status this decode failure maps to.
    pub fn status(&self) -> Status {
        match self {
            DecodeError::Malformed(_) => Status::Malformed,
            DecodeError::UnknownOpcode(_) => Status::UnknownOpcode,
            DecodeError::BatchTooLarge(_) => Status::BatchTooLarge,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Malformed(what) => write!(f, "malformed request: {what}"),
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            DecodeError::BatchTooLarge(n) => write!(
                f,
                "batch of {n} ops exceeds the per-request ceiling ({MAX_BATCH_OPS})"
            ),
        }
    }
}

fn decode_rows<E: WireElem>(
    c: &mut Cursor<'_>,
    row_elems: usize,
    count: usize,
) -> Result<Vec<E>, DecodeError> {
    let total = count
        .checked_mul(row_elems)
        .ok_or(DecodeError::Malformed("row count overflows"))?;
    let mut rows = Vec::new();
    c.elems(total, &mut rows)
        .ok_or(DecodeError::Malformed("truncated rows"))?;
    Ok(rows)
}

fn decode_limit(raw: u64) -> Option<usize> {
    if raw == NO_LIMIT {
        None
    } else {
        // A limit beyond usize::MAX (32-bit hosts) is indistinguishable
        // from unlimited anyway.
        usize::try_from(raw).ok().or(Some(usize::MAX))
    }
}

/// Decode a request payload. `row_elems` is the serving index's row
/// shape (elements per point row); any row of a different shape is
/// [`DecodeError::Malformed`]. Never panics, for any input bytes.
pub fn decode_request<E: WireElem>(
    payload: &[u8],
    row_elems: usize,
) -> Result<Request<E>, DecodeError> {
    let mut c = Cursor::new(payload);
    let op = c.u8().ok_or(DecodeError::Malformed("empty payload"))?;
    let op = Opcode::from_u8(op).ok_or(DecodeError::UnknownOpcode(op))?;
    let req = match op {
        Opcode::Info => Request::Info,
        Opcode::InsertBatch => {
            let shape = c.u32().ok_or(DecodeError::Malformed("missing row shape"))?;
            if shape as usize != row_elems {
                return Err(DecodeError::Malformed("row shape mismatch"));
            }
            let count = c.u32().ok_or(DecodeError::Malformed("missing row count"))?;
            if count > MAX_BATCH_OPS {
                return Err(DecodeError::BatchTooLarge(u64::from(count)));
            }
            let rows = decode_rows(&mut c, row_elems, count as usize)?;
            Request::InsertBatch {
                count: count as usize,
                rows,
            }
        }
        Opcode::RemoveBatch => {
            let count = c.u32().ok_or(DecodeError::Malformed("missing id count"))?;
            if count > MAX_BATCH_OPS {
                return Err(DecodeError::BatchTooLarge(u64::from(count)));
            }
            let mut ids = Vec::new();
            c.elems::<u64>(count as usize, &mut ids)
                .ok_or(DecodeError::Malformed("truncated ids"))?;
            Request::RemoveBatch { ids }
        }
        Opcode::Query => {
            let shape = c.u32().ok_or(DecodeError::Malformed("missing row shape"))?;
            if shape as usize != row_elems {
                return Err(DecodeError::Malformed("row shape mismatch"));
            }
            let raw = c
                .u64()
                .ok_or(DecodeError::Malformed("missing retrieval limit"))?;
            let row = decode_rows(&mut c, row_elems, 1)?;
            Request::Query {
                row,
                limit: decode_limit(raw),
            }
        }
        Opcode::QueryBatch => {
            let shape = c.u32().ok_or(DecodeError::Malformed("missing row shape"))?;
            if shape as usize != row_elems {
                return Err(DecodeError::Malformed("row shape mismatch"));
            }
            let raw = c
                .u64()
                .ok_or(DecodeError::Malformed("missing retrieval limit"))?;
            let count = c
                .u32()
                .ok_or(DecodeError::Malformed("missing query count"))?;
            if count > MAX_QUERY_BATCH {
                return Err(DecodeError::BatchTooLarge(u64::from(count)));
            }
            let rows = decode_rows(&mut c, row_elems, count as usize)?;
            Request::QueryBatch {
                count: count as usize,
                rows,
                limit: decode_limit(raw),
            }
        }
        Opcode::Seal => Request::Seal,
        Opcode::Compact => Request::Compact,
        Opcode::Shutdown => Request::Shutdown,
    };
    if !c.done() {
        return Err(DecodeError::Malformed("trailing bytes"));
    }
    Ok(req)
}

fn limit_to_wire(limit: Option<usize>) -> u64 {
    match limit {
        None => NO_LIMIT,
        Some(l) => u64::try_from(l).unwrap_or(NO_LIMIT),
    }
}

/// Encode an [`Opcode::Info`] request payload.
pub fn encode_info() -> Vec<u8> {
    vec![Opcode::Info as u8]
}

/// Encode an [`Opcode::InsertBatch`] request payload from flat
/// row-major rows of shape `row_elems`.
pub fn encode_insert_batch<E: WireElem>(row_elems: usize, rows: &[E]) -> Vec<u8> {
    let count = rows.len().checked_div(row_elems).unwrap_or(0);
    let mut p = Vec::with_capacity(9 + rows.len() * 8);
    p.push(Opcode::InsertBatch as u8);
    put_u32(&mut p, row_elems as u32);
    put_u32(&mut p, count as u32);
    for e in rows {
        put_u64(&mut p, e.to_wire());
    }
    p
}

/// Encode an [`Opcode::RemoveBatch`] request payload.
pub fn encode_remove_batch(ids: &[u64]) -> Vec<u8> {
    let mut p = Vec::with_capacity(5 + ids.len() * 8);
    p.push(Opcode::RemoveBatch as u8);
    put_u32(&mut p, ids.len() as u32);
    for id in ids {
        put_u64(&mut p, *id);
    }
    p
}

/// Encode an [`Opcode::Query`] request payload.
pub fn encode_query<E: WireElem>(row: &[E], limit: Option<usize>) -> Vec<u8> {
    let mut p = Vec::with_capacity(13 + row.len() * 8);
    p.push(Opcode::Query as u8);
    put_u32(&mut p, row.len() as u32);
    put_u64(&mut p, limit_to_wire(limit));
    for e in row {
        put_u64(&mut p, e.to_wire());
    }
    p
}

/// Encode an [`Opcode::QueryBatch`] request payload from flat
/// row-major rows of shape `row_elems`.
pub fn encode_query_batch<E: WireElem>(
    row_elems: usize,
    rows: &[E],
    limit: Option<usize>,
) -> Vec<u8> {
    let count = rows.len().checked_div(row_elems).unwrap_or(0);
    let mut p = Vec::with_capacity(17 + rows.len() * 8);
    p.push(Opcode::QueryBatch as u8);
    put_u32(&mut p, row_elems as u32);
    put_u64(&mut p, limit_to_wire(limit));
    put_u32(&mut p, count as u32);
    for e in rows {
        put_u64(&mut p, e.to_wire());
    }
    p
}

/// Encode an [`Opcode::Seal`], [`Opcode::Compact`], or
/// [`Opcode::Shutdown`] request payload (all are bodyless).
pub fn encode_bodyless(op: Opcode) -> Vec<u8> {
    vec![op as u8]
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The `Info` response body: the facts a client needs to talk to (and
/// replay against) the serving index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Elements per point row (the `row_elems` every request must match).
    pub row_elems: u32,
    /// Number of shards.
    pub num_shards: u32,
    /// Number of hash repetitions `L`.
    pub repetitions: u32,
    /// Live points.
    pub len: u64,
    /// Id bound (next id to be assigned).
    pub id_bound: u64,
    /// Current published epoch.
    pub epoch: u64,
}

/// Per-query result: the snapshot epoch it was answered at, the full
/// query statistics, and the candidate ids in index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireQueryResult {
    /// Epoch of the snapshot that answered this query.
    pub epoch: u64,
    /// `[tables_probed, candidates_retrieved, distinct_candidates,
    /// duplicates, distance_computations]`.
    pub stats: [u64; 5],
    /// Candidate ids, ascending.
    pub ids: Vec<u64>,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Info` succeeded.
    Info(ServerInfo),
    /// `InsertBatch` succeeded: the epoch published for the batch (0 for
    /// an empty batch) and the assigned ids, in request order.
    Inserted {
        /// Epoch after the commit.
        epoch: u64,
        /// Assigned global ids.
        ids: Vec<u64>,
    },
    /// `RemoveBatch` succeeded: per-id liveness at removal time
    /// (`false` = already dead).
    Removed {
        /// Epoch after the commit.
        epoch: u64,
        /// Per-id outcome, in request order.
        removed: Vec<bool>,
    },
    /// `Query` succeeded.
    Query(WireQueryResult),
    /// `QueryBatch` succeeded; every result carries the same epoch (one
    /// snapshot answered the whole batch).
    QueryBatch(Vec<WireQueryResult>),
    /// `Seal` / `Compact` / `Shutdown` succeeded at this epoch.
    Done {
        /// Which bodyless operation completed.
        op: Opcode,
        /// Epoch after the operation.
        epoch: u64,
    },
    /// The request was rejected.
    Error {
        /// Why.
        status: Status,
        /// Opcode the rejection answers (`None` when the opcode itself
        /// was unreadable).
        op: Option<Opcode>,
        /// Human-readable diagnostic.
        message: String,
    },
}

/// Encode an error response payload.
pub fn encode_error(status: Status, op: Option<Opcode>, message: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + message.len());
    p.push(status as u8);
    p.push(op.map_or(0, |o| o as u8));
    p.extend_from_slice(message.as_bytes());
    p
}

/// Encode an `Info` response payload.
pub fn encode_info_response(info: &ServerInfo) -> Vec<u8> {
    let mut p = Vec::with_capacity(38);
    p.push(Status::Ok as u8);
    p.push(Opcode::Info as u8);
    put_u32(&mut p, info.row_elems);
    put_u32(&mut p, info.num_shards);
    put_u32(&mut p, info.repetitions);
    put_u64(&mut p, info.len);
    put_u64(&mut p, info.id_bound);
    put_u64(&mut p, info.epoch);
    p
}

/// Encode an `InsertBatch` success payload.
pub fn encode_inserted(epoch: u64, ids: &[u64]) -> Vec<u8> {
    let mut p = Vec::with_capacity(14 + ids.len() * 8);
    p.push(Status::Ok as u8);
    p.push(Opcode::InsertBatch as u8);
    put_u64(&mut p, epoch);
    put_u32(&mut p, ids.len() as u32);
    for id in ids {
        put_u64(&mut p, *id);
    }
    p
}

/// Encode a `RemoveBatch` success payload.
pub fn encode_removed(epoch: u64, removed: &[bool]) -> Vec<u8> {
    let mut p = Vec::with_capacity(14 + removed.len());
    p.push(Status::Ok as u8);
    p.push(Opcode::RemoveBatch as u8);
    put_u64(&mut p, epoch);
    put_u32(&mut p, removed.len() as u32);
    p.extend(removed.iter().map(|&r| u8::from(r)));
    p
}

fn put_query_result(p: &mut Vec<u8>, r: &WireQueryResult) {
    put_u64(p, r.epoch);
    for s in r.stats {
        put_u64(p, s);
    }
    put_u32(p, r.ids.len() as u32);
    for id in &r.ids {
        put_u64(p, *id);
    }
}

/// Encode a `Query` success payload.
pub fn encode_query_response(r: &WireQueryResult) -> Vec<u8> {
    let mut p = Vec::with_capacity(54 + r.ids.len() * 8);
    p.push(Status::Ok as u8);
    p.push(Opcode::Query as u8);
    put_query_result(&mut p, r);
    p
}

/// Encode a `QueryBatch` success payload.
pub fn encode_query_batch_response(results: &[WireQueryResult]) -> Vec<u8> {
    let mut p = Vec::new();
    p.push(Status::Ok as u8);
    p.push(Opcode::QueryBatch as u8);
    put_u32(&mut p, results.len() as u32);
    for r in results {
        put_query_result(&mut p, r);
    }
    p
}

/// Encode a bodyless-operation (`Seal`/`Compact`/`Shutdown`) success
/// payload.
pub fn encode_done(op: Opcode, epoch: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(10);
    p.push(Status::Ok as u8);
    p.push(op as u8);
    put_u64(&mut p, epoch);
    p
}

fn read_query_result(c: &mut Cursor<'_>) -> Option<WireQueryResult> {
    let epoch = c.u64()?;
    let mut stats = [0u64; 5];
    for s in &mut stats {
        *s = c.u64()?;
    }
    let n = c.u32()? as usize;
    let mut ids = Vec::new();
    c.elems::<u64>(n, &mut ids)?;
    Some(WireQueryResult { epoch, stats, ids })
}

/// Decode a response payload. Returns `None` when the payload does not
/// parse (a broken or impostor server); never panics.
pub fn decode_response(payload: &[u8]) -> Option<Response> {
    let mut c = Cursor::new(payload);
    let status = Status::from_u8(c.u8()?)?;
    let op_byte = c.u8()?;
    if status != Status::Ok {
        let message = String::from_utf8_lossy(payload.get(2..)?).into_owned();
        return Some(Response::Error {
            status,
            op: Opcode::from_u8(op_byte),
            message,
        });
    }
    let op = Opcode::from_u8(op_byte)?;
    let resp = match op {
        Opcode::Info => Response::Info(ServerInfo {
            row_elems: c.u32()?,
            num_shards: c.u32()?,
            repetitions: c.u32()?,
            len: c.u64()?,
            id_bound: c.u64()?,
            epoch: c.u64()?,
        }),
        Opcode::InsertBatch => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            let mut ids = Vec::new();
            c.elems::<u64>(n, &mut ids)?;
            Response::Inserted { epoch, ids }
        }
        Opcode::RemoveBatch => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            if c.remaining() < n {
                return None;
            }
            let mut removed = Vec::with_capacity(n);
            for _ in 0..n {
                removed.push(c.u8()? != 0);
            }
            Response::Removed { epoch, removed }
        }
        Opcode::Query => Response::Query(read_query_result(&mut c)?),
        Opcode::QueryBatch => {
            let n = c.u32()? as usize;
            let mut results = Vec::new();
            for _ in 0..n {
                results.push(read_query_result(&mut c)?);
            }
            Response::QueryBatch(results)
        }
        Opcode::Seal | Opcode::Compact | Opcode::Shutdown => Response::Done {
            op,
            epoch: c.u64()?,
        },
    };
    if !c.done() {
        return None;
    }
    Some(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let rows: Vec<u64> = (0..6).collect();
        let cases: Vec<(Vec<u8>, Request<u64>)> = vec![
            (encode_info(), Request::Info),
            (
                encode_insert_batch(2, &rows),
                Request::InsertBatch {
                    count: 3,
                    rows: rows.clone(),
                },
            ),
            (
                encode_remove_batch(&[7, 9]),
                Request::RemoveBatch { ids: vec![7, 9] },
            ),
            (
                encode_query(&rows[..2], Some(100)),
                Request::Query {
                    row: rows[..2].to_vec(),
                    limit: Some(100),
                },
            ),
            (
                encode_query(&rows[..2], None),
                Request::Query {
                    row: rows[..2].to_vec(),
                    limit: None,
                },
            ),
            (
                encode_query_batch(2, &rows, None),
                Request::QueryBatch {
                    count: 3,
                    rows: rows.clone(),
                    limit: None,
                },
            ),
            (encode_bodyless(Opcode::Seal), Request::Seal),
            (encode_bodyless(Opcode::Compact), Request::Compact),
            (encode_bodyless(Opcode::Shutdown), Request::Shutdown),
        ];
        for (payload, expect) in cases {
            assert_eq!(decode_request::<u64>(&payload, 2), Ok(expect));
        }
    }

    #[test]
    fn dense_rows_round_trip_bit_exactly() {
        let rows: Vec<f64> = vec![0.5, -1.25, f64::MIN_POSITIVE, -0.0];
        let payload = encode_insert_batch(4, &rows);
        match decode_request::<f64>(&payload, 4) {
            Ok(Request::InsertBatch { count, rows: got }) => {
                assert_eq!(count, 1);
                let want: Vec<u64> = rows.iter().map(|r| r.to_bits()).collect();
                let got: Vec<u64> = got.iter().map(|r| r.to_bits()).collect();
                assert_eq!(got, want);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let info = ServerInfo {
            row_elems: 2,
            num_shards: 4,
            repetitions: 8,
            len: 100,
            id_bound: 120,
            epoch: 77,
        };
        let q = WireQueryResult {
            epoch: 9,
            stats: [1, 2, 3, 4, 5],
            ids: vec![0, 5, 11],
        };
        let cases: Vec<(Vec<u8>, Response)> = vec![
            (encode_info_response(&info), Response::Info(info)),
            (
                encode_inserted(3, &[10, 11]),
                Response::Inserted {
                    epoch: 3,
                    ids: vec![10, 11],
                },
            ),
            (
                encode_removed(4, &[true, false]),
                Response::Removed {
                    epoch: 4,
                    removed: vec![true, false],
                },
            ),
            (encode_query_response(&q), Response::Query(q.clone())),
            (
                encode_query_batch_response(&[q.clone(), q.clone()]),
                Response::QueryBatch(vec![q.clone(), q]),
            ),
            (
                encode_done(Opcode::Compact, 12),
                Response::Done {
                    op: Opcode::Compact,
                    epoch: 12,
                },
            ),
            (
                encode_error(Status::UnknownId, Some(Opcode::RemoveBatch), "id 9 unknown"),
                Response::Error {
                    status: Status::UnknownId,
                    op: Some(Opcode::RemoveBatch),
                    message: "id 9 unknown".to_string(),
                },
            ),
        ];
        for (payload, expect) in cases {
            assert_eq!(decode_response(&payload), Some(expect));
        }
    }

    #[test]
    fn decode_rejects_any_truncation_without_panicking() {
        let rows: Vec<u64> = (0..4).collect();
        let full = encode_insert_batch(2, &rows);
        for cut in 0..full.len() {
            let got = decode_request::<u64>(&full[..cut], 2);
            assert!(got.is_err(), "prefix of {cut} bytes decoded: {got:?}");
        }
        let resp = encode_inserted(1, &[5, 6]);
        for cut in 0..resp.len() {
            assert_eq!(decode_response(&resp[..cut]), None);
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_shapes() {
        let mut p = encode_info();
        p.push(0);
        assert_eq!(
            decode_request::<u64>(&p, 2),
            Err(DecodeError::Malformed("trailing bytes"))
        );
        // Row shape mismatch: encoded for 3-elem rows, server expects 2.
        let rows: Vec<u64> = (0..3).collect();
        let p = encode_insert_batch(3, &rows);
        assert_eq!(
            decode_request::<u64>(&p, 2),
            Err(DecodeError::Malformed("row shape mismatch"))
        );
        assert_eq!(
            decode_request::<u64>(&[], 2),
            Err(DecodeError::Malformed("empty payload"))
        );
        assert_eq!(
            decode_request::<u64>(&[0xAB], 2),
            Err(DecodeError::UnknownOpcode(0xAB))
        );
    }

    #[test]
    fn corrupt_counts_cannot_drive_allocation() {
        // A count prefix claiming 4B rows with a 16-byte body must be
        // rejected before any 4B-element reserve happens.
        let mut p = vec![Opcode::InsertBatch as u8];
        put_u32(&mut p, 2); // row shape
        put_u32(&mut p, MAX_BATCH_OPS); // claimed row count (allowed maximum)
        put_u64(&mut p, 1);
        put_u64(&mut p, 2);
        assert_eq!(
            decode_request::<u64>(&p, 2),
            Err(DecodeError::Malformed("truncated rows"))
        );
        // Above the ceiling: rejected as too large, also without reading.
        let mut p = vec![Opcode::RemoveBatch as u8];
        put_u32(&mut p, MAX_BATCH_OPS + 1);
        assert_eq!(
            decode_request::<u64>(&p, 2),
            Err(DecodeError::BatchTooLarge(u64::from(MAX_BATCH_OPS) + 1))
        );
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"hello").unwrap();
        write_frame(&mut stream, b"").unwrap();
        let mut r = &stream[..];
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Ok(Some(FrameIn::Payload))
        ));
        assert_eq!(buf, b"hello");
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Ok(Some(FrameIn::Payload))
        ));
        assert_eq!(buf, b"");
        assert!(matches!(read_frame(&mut r, &mut buf), Ok(None)));

        // An oversized length prefix is reported without reading payload.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r, &mut buf),
            Ok(Some(FrameIn::TooLarge(_)))
        ));

        // A stream cut mid-frame is an UnexpectedEof, not a panic.
        let mut cut = Vec::new();
        write_frame(&mut cut, b"abcdef").unwrap();
        cut.truncate(7);
        let mut r = &cut[..];
        let err = read_frame(&mut r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        // ... and a cut inside the header likewise.
        let mut r = &cut[..2];
        let err = read_frame(&mut r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
