//! End-to-end wire tests: a real server on an ephemeral loopback port,
//! real sockets, and an in-process replica index for answer parity.
//!
//! The replica is built with the same family, seed, and shard count as
//! the served index and driven through the same logical operations, so
//! every wire answer (ids **and** full query stats) must match it bit
//! for bit — the serving layer adds transport, not semantics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use dsh_core::points::{BitStore, BitVector};
use dsh_hamming::BitSampling;
use dsh_index::{ShardedIndex, WriteOutcome};
use dsh_math::rng::seeded;
use dsh_server::protocol::{
    encode_bodyless, encode_insert_batch, encode_query, put_u32, Opcode, Status, MAX_BATCH_OPS,
    MAX_FRAME,
};
use dsh_server::server::{spawn, ServerConfig, ServerHandle};
use dsh_server::Client;

const DIM: usize = 64; // one u64 block per row on the wire

fn build_index(seed: u64, l: usize, shards: usize) -> ShardedIndex<BitStore> {
    ShardedIndex::build(
        &BitSampling::new(DIM),
        BitStore::with_dim(DIM),
        l,
        shards,
        &mut seeded(seed),
    )
}

fn spawn_server(seed: u64, l: usize, shards: usize) -> ServerHandle<BitStore> {
    spawn(
        "127.0.0.1:0",
        build_index(seed, l, shards),
        ServerConfig::new(1),
    )
    .unwrap()
}

fn random_rows(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = seeded(seed);
    (0..n)
        .map(|_| {
            let v = BitVector::random(&mut rng, DIM);
            v.as_blocks()[0]
        })
        .collect()
}

#[test]
fn wire_answers_match_an_in_process_replica() {
    let server = spawn_server(0xA11CE, 8, 4);
    let mut client = Client::connect(server.addr()).unwrap();

    let info = client.info().unwrap();
    assert_eq!(info.row_elems, 1);
    assert_eq!(info.num_shards, 4);
    assert_eq!(info.repetitions, 8);
    assert_eq!((info.len, info.id_bound, info.epoch), (0, 0, 0));

    let mut replica = build_index(0xA11CE, 8, 4);
    let rows = random_rows(7, 40);

    // One wire batch = one group commit = one epoch.
    let (epoch, ids) = client.insert_batch(1, &rows[..24]).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(ids, (0..24).collect::<Vec<u64>>());
    let (epoch, ids) = client.insert_batch(1, &rows[24..]).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(ids, (24..40).collect::<Vec<u64>>());
    // Mirror the wire batches as the same group commits, so the
    // replica's epoch trajectory matches too.
    for range in [&rows[..24], &rows[24..]] {
        let mut batch = replica.new_batch();
        for row in range.chunks(1) {
            batch.insert(row);
        }
        replica.apply_batch(&batch).unwrap();
    }

    let (epoch, removed) = client.remove_batch(&[3, 3, 17]).unwrap();
    assert_eq!(epoch, 3);
    assert_eq!(removed, vec![true, false, true]);
    let mut batch = replica.new_batch();
    for id in [3, 3, 17] {
        batch.remove(id);
    }
    let outcomes = replica.apply_batch(&batch).unwrap();
    assert_eq!(
        outcomes,
        vec![
            WriteOutcome::Removed(true),
            WriteOutcome::Removed(false),
            WriteOutcome::Removed(true),
        ]
    );

    // Queries answer identically to the replica: ids and all five stats,
    // with and without a retrieval limit, across seal and compact.
    let queries = random_rows(1234, 12);
    let check_parity = |client: &mut Client, replica: &ShardedIndex<BitStore>| {
        for q in queries.chunks(1) {
            for limit in [None, Some(5)] {
                let wire = client.query(q, limit).unwrap();
                let (ids, stats) = replica.candidates(q, limit);
                let want: Vec<u64> = ids.iter().map(|&i| i as u64).collect();
                assert_eq!(wire.ids, want);
                assert_eq!(
                    wire.stats,
                    [
                        stats.tables_probed as u64,
                        stats.candidates_retrieved as u64,
                        stats.distinct_candidates as u64,
                        stats.duplicates as u64,
                        stats.distance_computations as u64,
                    ]
                );
                assert_eq!(wire.epoch, replica.epoch());
            }
        }
    };
    check_parity(&mut client, &replica);

    assert_eq!(client.seal().unwrap(), 4);
    replica.seal();
    check_parity(&mut client, &replica);

    assert_eq!(client.compact().unwrap(), 5);
    replica.compact();
    check_parity(&mut client, &replica);

    // QueryBatch: one snapshot, same answers as query-at-a-time.
    let batched = client.query_batch(1, &queries, Some(7)).unwrap();
    assert_eq!(batched.len(), 12);
    for (q, wire) in queries.chunks(1).zip(&batched) {
        let (ids, _) = replica.candidates(q, Some(7));
        let want: Vec<u64> = ids.iter().map(|&i| i as u64).collect();
        assert_eq!(wire.ids, want);
        assert_eq!(wire.epoch, replica.epoch());
    }

    // The index handed back at shutdown is the final served state.
    client.shutdown().unwrap();
    let served = server.join().unwrap();
    assert_eq!(served.epoch(), replica.epoch());
    assert_eq!(served.len(), replica.len());
    assert_eq!(served.id_bound(), replica.id_bound());
}

#[test]
fn semantic_rejections_keep_the_connection_and_index_intact() {
    let server = spawn_server(0xBEE, 4, 2);
    let mut client = Client::connect(server.addr()).unwrap();
    let rows = random_rows(2, 4);
    client.insert_batch(1, &rows).unwrap();

    // Unknown id: rejected whole — the valid removes in the same batch
    // must not be applied, and no epoch is published.
    let err = client.remove_batch(&[0, 99]).unwrap_err();
    assert!(err.to_string().contains("status 4"), "{err}");
    // Same connection keeps working; id 0 is still live (no partial
    // application), so removing it now reports true.
    let (epoch, removed) = client.remove_batch(&[0]).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(removed, vec![true]);

    // An id beyond u32 (and usize on any host) is a clean UnknownId too.
    let err = client.remove_batch(&[u64::MAX]).unwrap_err();
    assert!(err.to_string().contains("status 4"), "{err}");

    // Over-the-ceiling batch counts are rejected before decoding rows.
    let mut payload = vec![Opcode::RemoveBatch as u8];
    put_u32(&mut payload, MAX_BATCH_OPS + 1);
    let (status, msg) = client.call_expecting_error(&payload).unwrap();
    assert_eq!(status, Status::BatchTooLarge);
    assert!(msg.contains("ceiling"), "{msg}");

    // Still serving on the same connection after all three rejections.
    let info = client.info().unwrap();
    assert_eq!(info.len, 3);
    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn protocol_violations_answer_then_tear_down() {
    let server = spawn_server(0xD0C, 4, 2);

    // Unknown opcode.
    let mut client = Client::connect(server.addr()).unwrap();
    let (status, msg) = client.call_expecting_error(&[0xEE]).unwrap();
    assert_eq!(status, Status::UnknownOpcode);
    assert!(msg.contains("0xee"), "{msg}");
    assert!(client.info().is_err(), "connection must be torn down");

    // Malformed body: an insert batch whose rows are truncated.
    let mut client = Client::connect(server.addr()).unwrap();
    let full = encode_insert_batch(1, &random_rows(5, 3));
    let (status, msg) = client
        .call_expecting_error(&full[..full.len() - 4])
        .unwrap();
    assert_eq!(status, Status::Malformed);
    assert!(msg.contains("truncated"), "{msg}");
    assert!(client.info().is_err());

    // Row shape mismatch (client built for a different dimension).
    let mut client = Client::connect(server.addr()).unwrap();
    let wrong = encode_query(&[1u64, 2u64][..], None);
    let (status, msg) = client.call_expecting_error(&wrong).unwrap();
    assert_eq!(status, Status::Malformed);
    assert!(msg.contains("shape"), "{msg}");

    // Oversized length prefix: rejected from the header alone.
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    match client.read_response().unwrap() {
        dsh_server::Response::Error { status, .. } => {
            assert_eq!(status, Status::FrameTooLarge);
        }
        other => panic!("unexpected: {other:?}"),
    }
    assert!(client.info().is_err());

    // After every teardown the server still accepts fresh connections.
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.info().unwrap().epoch, 0);
    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn mid_write_disconnects_never_wedge_the_server() {
    let server = spawn_server(0x5EED, 4, 2);

    // Drop a connection halfway through a frame header...
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(&[0x10, 0x00]).unwrap();
    drop(client);
    // ...and halfway through a payload.
    let mut client = Client::connect(server.addr()).unwrap();
    let payload = encode_insert_batch(1, &random_rows(3, 4));
    let frame_len = (payload.len() as u32).to_le_bytes();
    client.send_raw(&frame_len).unwrap();
    client.send_raw(&payload[..5]).unwrap();
    drop(client);

    // The server must still answer — and the aborted insert must not
    // have been applied.
    let mut client = Client::connect(server.addr()).unwrap();
    let info = client.info().unwrap();
    assert_eq!((info.len, info.epoch), (0, 0));
    client.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn no_op_wire_batches_publish_no_epoch() {
    let server = spawn_server(0x11, 4, 2);
    let mut client = Client::connect(server.addr()).unwrap();

    let (epoch, ids) = client.insert_batch::<u64>(1, &[]).unwrap();
    assert_eq!((epoch, ids.len()), (0, 0));
    let rows = random_rows(1, 2);
    client.insert_batch(1, &rows).unwrap();
    client.remove_batch(&[0]).unwrap();
    // A pure double-remove changes nothing: same epoch as before.
    let (epoch, removed) = client.remove_batch(&[0]).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(removed, vec![false]);

    client.shutdown().unwrap();
    let served = server.join().unwrap();
    assert_eq!(served.epoch(), 2);
}

/// The serving-path soak: concurrent wire clients query while a wire
/// writer inserts, removes, seals, and compacts. Every response's
/// `(epoch, ids)` pair is checked afterwards against an in-process
/// replay of the write log truncated at that epoch — the wire answer
/// must equal what the index held at the epoch it claims to have
/// answered at (the `SoakOp` discipline of `tests/shard_concurrency.rs`,
/// extended over TCP).
#[test]
fn concurrent_clients_vs_writer_soak() {
    const L: usize = 6;
    const SHARDS: usize = 3;
    const SEED: u64 = 0x50AC;
    const BATCHES: usize = 30;
    const READERS: usize = 3;

    #[derive(Clone)]
    enum WireOp {
        Insert(Vec<u64>), // flat rows
        Remove(Vec<u64>),
        Seal,
        Compact,
    }

    // Scripted write log. Every batch is effectual (each publishes one
    // epoch) so `epoch == number of applied log entries`.
    let mut rng = seeded(SEED ^ 1);
    let mut log: Vec<WireOp> = Vec::new();
    let mut next_id = 0u64;
    let mut live: Vec<u64> = Vec::new();
    for i in 0..BATCHES {
        match i % 5 {
            3 if !live.is_empty() => {
                // Removes of known-live ids (always effectual).
                let k = 1 + i % 3;
                let victims: Vec<u64> = (0..k)
                    .map(|_| live.remove(rng.random_range(0..live.len())))
                    .collect();
                log.push(WireOp::Remove(victims));
            }
            4 if i % 2 == 0 => log.push(WireOp::Seal),
            4 => log.push(WireOp::Compact),
            _ => {
                let n = 4 + i % 5;
                let rows = random_rows(SEED ^ (i as u64 + 2), n);
                live.extend(next_id..next_id + n as u64);
                next_id += n as u64;
                log.push(WireOp::Insert(rows));
            }
        }
    }
    // Seal/compact publish an epoch only when something changed; keep
    // the script honest by construction: they always follow inserts.

    let server = spawn_server(SEED, L, SHARDS);
    let addr = server.addr();
    let query_row = random_rows(SEED ^ 0xFFFF, 1);
    let done = AtomicBool::new(false);

    // (epoch, ids) observations from every reader.
    let observations: Vec<(u64, Vec<u64>)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let done = &done;
                let query_row = &query_row;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut seen: Vec<(u64, Vec<u64>)> = Vec::new();
                    let mut last_epoch = 0;
                    while !done.load(Ordering::Acquire) {
                        let r = client.query(&query_row[..], None).unwrap();
                        // Snapshots are published in order: epochs seen
                        // by one connection never go backwards.
                        assert!(r.epoch >= last_epoch, "epoch went backwards");
                        last_epoch = r.epoch;
                        seen.push((r.epoch, r.ids));
                    }
                    seen
                })
            })
            .collect();

        let mut writer = Client::connect(addr).unwrap();
        for (i, op) in log.iter().enumerate() {
            let expect = (i + 1) as u64;
            let epoch = match op {
                WireOp::Insert(rows) => writer.insert_batch(1, rows).unwrap().0,
                WireOp::Remove(ids) => writer.remove_batch(ids).unwrap().0,
                WireOp::Seal => writer.seal().unwrap(),
                WireOp::Compact => writer.compact().unwrap(),
            };
            assert_eq!(epoch, expect, "log entry {i} published unexpectedly");
            std::thread::sleep(Duration::from_millis(1));
        }
        done.store(true, Ordering::Release);
        let mut all = Vec::new();
        for r in readers {
            all.extend(r.join().unwrap());
        }
        writer.shutdown().unwrap();
        all
    });
    server.join().unwrap();

    // Replay: the expected answer at every epoch.
    let mut replica = build_index(SEED, L, SHARDS);
    let mut expected: Vec<Vec<u64>> = Vec::with_capacity(log.len() + 1);
    let ids_at = |idx: &ShardedIndex<BitStore>| -> Vec<u64> {
        idx.candidates(&query_row[..], None)
            .0
            .iter()
            .map(|&i| i as u64)
            .collect()
    };
    expected.push(ids_at(&replica));
    for op in &log {
        match op {
            WireOp::Insert(rows) => {
                let mut batch = replica.new_batch();
                for row in rows.chunks(1) {
                    batch.insert(row);
                }
                let outcomes = replica.apply_batch(&batch).unwrap();
                assert!(outcomes
                    .iter()
                    .all(|o| matches!(o, WriteOutcome::Inserted(_))));
            }
            WireOp::Remove(ids) => {
                let mut batch = replica.new_batch();
                for &id in ids {
                    batch.remove(id as usize);
                }
                replica.apply_batch(&batch).unwrap();
            }
            WireOp::Seal => replica.seal(),
            WireOp::Compact => replica.compact(),
        }
        expected.push(ids_at(&replica));
    }
    assert_eq!(replica.epoch(), log.len() as u64);

    assert!(
        observations.len() >= READERS,
        "soak produced no observations"
    );
    let mut checked_epochs = std::collections::BTreeSet::new();
    for (epoch, ids) in &observations {
        let want = &expected[*epoch as usize];
        assert_eq!(
            ids, want,
            "wire answer at epoch {epoch} diverged from replay"
        );
        checked_epochs.insert(*epoch);
    }
    // The soak must actually have raced reads against writes: answers
    // from more than one epoch, including at least one mid-stream.
    assert!(
        checked_epochs.len() > 1,
        "every observation saw the same epoch; soak raced nothing"
    );
}

#[test]
fn shutdown_request_drains_other_connections() {
    let server = spawn_server(0xF00, 4, 2);
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    a.insert_batch(1, &random_rows(9, 3)).unwrap();
    b.shutdown().unwrap();
    let served = server.join().unwrap();
    assert_eq!(served.len(), 3);
    // The other connection is closed (or errors) rather than hanging.
    let result = a.info();
    assert!(
        result.is_err(),
        "connection a survived shutdown: {result:?}"
    );
    // Shutdown requests encoded but never answered would hang forever;
    // reaching this line is the real assertion.
    let _ = encode_bodyless(Opcode::Shutdown);
}
