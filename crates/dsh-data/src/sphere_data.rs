//! Unit-sphere datasets: uniform, clustered (recommender-style), and
//! planted annulus/hyperplane instances.

use dsh_core::points::{DenseStore, DenseVector};
use rand::Rng;

/// `n` uniformly random points on `S^{d-1}`.
pub fn uniform_sphere(rng: &mut dyn Rng, n: usize, d: usize) -> Vec<DenseVector> {
    (0..n).map(|_| DenseVector::random_unit(rng, d)).collect()
}

/// [`uniform_sphere`] written directly into a flat [`DenseStore`]:
/// bit-identical data to the `Vec` generator for the same RNG stream.
pub fn uniform_sphere_store(rng: &mut dyn Rng, n: usize, d: usize) -> DenseStore {
    let mut store = DenseStore::with_dim(d);
    for _ in 0..n {
        store.push(DenseVector::random_unit(rng, d).as_slice());
    }
    store
}

/// Clustered dataset mimicking topic clusters in a recommender corpus:
/// `k` random cluster centers; each point is a center perturbed by
/// Gaussian noise of scale `noise` and renormalized.
pub fn clustered_sphere(
    rng: &mut dyn Rng,
    n: usize,
    d: usize,
    k: usize,
    noise: f64,
) -> Vec<DenseVector> {
    assert!(k >= 1 && noise >= 0.0);
    let centers = uniform_sphere(rng, k, d);
    (0..n)
        .map(|i| {
            let c = &centers[i % k];
            let g = DenseVector::gaussian(rng, d).scaled(noise);
            c.add(&g).normalized()
        })
        .collect()
}

/// [`clustered_sphere`] written directly into a flat [`DenseStore`]:
/// bit-identical data to the `Vec` generator for the same RNG stream.
pub fn clustered_sphere_store(
    rng: &mut dyn Rng,
    n: usize,
    d: usize,
    k: usize,
    noise: f64,
) -> DenseStore {
    assert!(k >= 1 && noise >= 0.0);
    let centers = uniform_sphere(rng, k, d);
    let mut store = DenseStore::with_dim(d);
    for i in 0..n {
        let c = &centers[i % k];
        let g = DenseVector::gaussian(rng, d).scaled(noise);
        store.push(c.add(&g).normalized().as_slice());
    }
    store
}

/// A planted annulus-search instance on the sphere: a query point `q`, one
/// planted point with inner product exactly `alpha_planted` to `q`, and
/// `n - 1` background points drawn uniformly (which in high dimension have
/// inner product concentrated near 0).
pub struct PlantedSphereInstance {
    /// The query point.
    pub query: DenseVector,
    /// Data points; `planted_index` is the planted one.
    pub points: Vec<DenseVector>,
    /// Index of the planted point in `points`.
    pub planted_index: usize,
}

/// Build a planted instance (see [`PlantedSphereInstance`]).
pub fn planted_sphere_instance(
    rng: &mut dyn Rng,
    n: usize,
    d: usize,
    alpha_planted: f64,
) -> PlantedSphereInstance {
    assert!(n >= 1);
    let query = DenseVector::random_unit(rng, d);
    let planted = plant_at_alpha(rng, &query, alpha_planted);
    let mut points = uniform_sphere(rng, n - 1, d);
    let planted_index = dsh_math::rng::index(rng, n);
    points.insert(planted_index, planted);
    PlantedSphereInstance {
        query,
        points,
        planted_index,
    }
}

/// A point with inner product exactly `alpha` to `q`.
pub fn plant_at_alpha(rng: &mut dyn Rng, q: &DenseVector, alpha: f64) -> DenseVector {
    assert!((-1.0..=1.0).contains(&alpha));
    let w = loop {
        let g = DenseVector::gaussian(rng, q.dim());
        let orth = g.sub(&q.scaled(g.dot(q)));
        if orth.norm() > 1e-9 {
            break orth.normalized();
        }
    };
    q.scaled(alpha).add(&w.scaled((1.0 - alpha * alpha).sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn uniform_points_are_unit() {
        let pts = uniform_sphere(&mut seeded(201), 20, 10);
        assert_eq!(pts.len(), 20);
        for p in &pts {
            assert!((p.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn clusters_are_tight() {
        let mut rng = seeded(202);
        let k = 4;
        let pts = clustered_sphere(&mut rng, 40, 30, k, 0.05);
        // Points in the same cluster (i ≡ j mod k) are much closer than
        // points in different clusters on average. Averaging keeps the
        // test robust to individual noise draws.
        let (mut same, mut same_n) = (0.0, 0);
        let (mut cross, mut cross_n) = (0.0, 0);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let dot = pts[i].dot(&pts[j]);
                if i % k == j % k {
                    same += dot;
                    same_n += 1;
                } else {
                    cross += dot;
                    cross_n += 1;
                }
            }
        }
        let same = same / same_n as f64;
        let cross = cross / cross_n as f64;
        assert!(same > 0.85, "same-cluster mean dot {same}");
        assert!(
            same > cross + 0.5,
            "same-cluster mean {same} not separated from cross-cluster mean {cross}"
        );
    }

    #[test]
    fn store_generators_match_vec_generators() {
        let store = uniform_sphere_store(&mut seeded(205), 12, 9);
        let owned = uniform_sphere(&mut seeded(205), 12, 9);
        assert_eq!(store, DenseStore::from(owned));
        let store = clustered_sphere_store(&mut seeded(206), 18, 7, 3, 0.1);
        let owned = clustered_sphere(&mut seeded(206), 18, 7, 3, 0.1);
        assert_eq!(store, DenseStore::from(owned));
    }

    #[test]
    fn planted_instance_has_requested_alpha() {
        let mut rng = seeded(203);
        let inst = planted_sphere_instance(&mut rng, 50, 40, 0.6);
        assert_eq!(inst.points.len(), 50);
        let a = inst.query.dot(&inst.points[inst.planted_index]);
        assert!((a - 0.6).abs() < 1e-10, "alpha {a}");
        // Background points concentrate near alpha = 0 in d = 40.
        let max_bg = inst
            .points
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != inst.planted_index)
            .map(|(_, p)| inst.query.dot(p).abs())
            .fold(0.0f64, f64::max);
        assert!(max_bg < 0.55, "background alpha {max_bg}");
    }

    #[test]
    fn plant_at_extremes() {
        let mut rng = seeded(204);
        let q = DenseVector::random_unit(&mut rng, 8);
        let same = plant_at_alpha(&mut rng, &q, 1.0);
        assert!((q.dot(&same) - 1.0).abs() < 1e-10);
        let anti = plant_at_alpha(&mut rng, &q, -1.0);
        assert!((q.dot(&anti) + 1.0).abs() < 1e-10);
    }
}
