//! Synthetic workload generators for the experiment suite.
//!
//! The paper's theorems are distributional statements; these generators
//! produce exactly the point distributions they quantify — uniform and
//! clustered unit vectors (the recommender-system motivation of §1),
//! alpha-correlated Hamming points (Definition 3.1), and planted
//! annulus/hyperplane instances for the §6 applications.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod euclidean_data;
pub mod hamming_data;
pub mod sphere_data;
