//! Hamming-cube datasets: uniform points, alpha-correlated pairs
//! (Definition 3.1), and planted fixed-distance instances.

use dsh_core::points::{BitStore, BitVector};
use rand::Rng;

/// `n` uniformly random points of `{0,1}^d`.
pub fn uniform_hamming(rng: &mut dyn Rng, n: usize, d: usize) -> Vec<BitVector> {
    (0..n).map(|_| BitVector::random(rng, d)).collect()
}

/// [`uniform_hamming`] written directly into a flat [`BitStore`]: no
/// per-point allocation, and bit-identical data to the `Vec` generator
/// for the same RNG stream (the stores consume randomness the same way).
pub fn uniform_hamming_store(rng: &mut dyn Rng, n: usize, d: usize) -> BitStore {
    let mut store = BitStore::with_dim(d);
    for _ in 0..n {
        store.push_random(rng);
    }
    store
}

/// A randomly alpha-correlated pair (Definition 3.1): `x` uniform, each
/// `y_i = x_i` with probability `(1 + alpha)/2` independently.
pub fn correlated_pair(rng: &mut dyn Rng, d: usize, alpha: f64) -> (BitVector, BitVector) {
    assert!((-1.0..=1.0).contains(&alpha));
    let x = BitVector::random(rng, d);
    let mut y = x.clone();
    let flip = (1.0 - alpha) / 2.0;
    for i in 0..d {
        if rng.random_bool(flip) {
            y.flip(i);
        }
    }
    (x, y)
}

/// A point at Hamming distance exactly `k` from `x` (random positions).
pub fn point_at_distance(rng: &mut dyn Rng, x: &BitVector, k: usize) -> BitVector {
    let d = x.len();
    assert!(k <= d);
    // Reservoir-free sampling of k distinct positions: Fisher-Yates over a
    // position array.
    let mut positions: Vec<usize> = (0..d).collect();
    for i in 0..k {
        let j = rng.random_range(i..d);
        positions.swap(i, j);
    }
    let mut y = x.clone();
    for &p in &positions[..k] {
        y.flip(p);
    }
    y
}

/// A planted instance in Hamming space: query `q`, one planted point at
/// distance exactly `r_planted`, and `n - 1` uniform background points
/// (at distance concentrated around `d/2`).
pub struct PlantedHammingInstance {
    /// The query point.
    pub query: BitVector,
    /// Data points; `planted_index` is the planted one.
    pub points: Vec<BitVector>,
    /// Index of the planted point.
    pub planted_index: usize,
}

/// Build a planted Hamming instance.
pub fn planted_hamming_instance(
    rng: &mut dyn Rng,
    n: usize,
    d: usize,
    r_planted: usize,
) -> PlantedHammingInstance {
    assert!(n >= 1);
    let query = BitVector::random(rng, d);
    let planted = point_at_distance(rng, &query, r_planted);
    let mut points = uniform_hamming(rng, n - 1, d);
    let planted_index = dsh_math::rng::index(rng, n);
    points.insert(planted_index, planted);
    PlantedHammingInstance {
        query,
        points,
        planted_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn correlated_pair_distance_concentrates() {
        let mut rng = seeded(211);
        let d = 10_000;
        for &alpha in &[-0.5, 0.0, 0.7] {
            let (x, y) = correlated_pair(&mut rng, d, alpha);
            let t = x.relative_hamming(&y);
            let want = (1.0 - alpha) / 2.0;
            assert!((t - want).abs() < 0.02, "alpha {alpha}: t {t}");
        }
    }

    #[test]
    fn correlated_extremes() {
        let mut rng = seeded(212);
        let (x, y) = correlated_pair(&mut rng, 64, 1.0);
        assert_eq!(x, y);
        let (x, y) = correlated_pair(&mut rng, 64, -1.0);
        assert_eq!(x.hamming(&y), 64);
    }

    #[test]
    fn point_at_exact_distance() {
        let mut rng = seeded(213);
        let x = BitVector::random(&mut rng, 100);
        for &k in &[0usize, 1, 37, 100] {
            let y = point_at_distance(&mut rng, &x, k);
            assert_eq!(x.hamming(&y), k as u64);
        }
    }

    #[test]
    fn store_generator_matches_vec_generator() {
        use dsh_core::points::BitStore;
        for d in [1usize, 64, 100, 130] {
            let store = uniform_hamming_store(&mut seeded(215), 25, d);
            let owned = uniform_hamming(&mut seeded(215), 25, d);
            assert_eq!(store, BitStore::from(owned), "d = {d}");
        }
    }

    #[test]
    fn planted_instance_structure() {
        let mut rng = seeded(214);
        let inst = planted_hamming_instance(&mut rng, 30, 256, 10);
        assert_eq!(inst.points.len(), 30);
        assert_eq!(inst.query.hamming(&inst.points[inst.planted_index]), 10);
        // Background concentrates near d/2 = 128.
        for (i, p) in inst.points.iter().enumerate() {
            if i != inst.planted_index {
                let dist = inst.query.hamming(p);
                assert!((80..=176).contains(&dist), "background at {dist}");
            }
        }
    }
}
