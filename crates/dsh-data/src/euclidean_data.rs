//! Euclidean datasets: Gaussian clouds and planted fixed-distance
//! instances for the §4.2 experiments.

use dsh_core::points::DenseVector;
use rand::Rng;

/// `n` points from a standard Gaussian cloud in `R^d`, scaled by `sigma`.
pub fn gaussian_cloud(rng: &mut dyn Rng, n: usize, d: usize, sigma: f64) -> Vec<DenseVector> {
    assert!(sigma > 0.0);
    (0..n)
        .map(|_| DenseVector::gaussian(rng, d).scaled(sigma))
        .collect()
}

/// A point at Euclidean distance exactly `delta` from `x`, in a uniformly
/// random direction.
pub fn point_at_distance(rng: &mut dyn Rng, x: &DenseVector, delta: f64) -> DenseVector {
    assert!(delta >= 0.0);
    let dir = DenseVector::random_unit(rng, x.dim());
    x.add(&dir.scaled(delta))
}

/// A planted Euclidean instance: query `q`, one planted point at distance
/// exactly `r`, and `n - 1` background points at distances at least
/// `far_min` (re-sampled from a Gaussian cloud until far enough).
pub struct PlantedEuclideanInstance {
    /// The query point.
    pub query: DenseVector,
    /// Data points; `planted_index` is the planted one.
    pub points: Vec<DenseVector>,
    /// Index of the planted point.
    pub planted_index: usize,
}

/// Build a planted Euclidean instance.
pub fn planted_euclidean_instance(
    rng: &mut dyn Rng,
    n: usize,
    d: usize,
    r: f64,
    far_min: f64,
) -> PlantedEuclideanInstance {
    assert!(n >= 1 && far_min >= 0.0);
    let query = DenseVector::gaussian(rng, d);
    let planted = point_at_distance(rng, &query, r);
    let mut points = Vec::with_capacity(n);
    while points.len() < n - 1 {
        let p = DenseVector::gaussian(rng, d).scaled(2.0 * far_min / (d as f64).sqrt() + 1.0);
        if query.euclidean(&p) >= far_min {
            points.push(p);
        }
    }
    let planted_index = dsh_math::rng::index(rng, n);
    points.insert(planted_index, planted);
    PlantedEuclideanInstance {
        query,
        points,
        planted_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_math::rng::seeded;

    #[test]
    fn cloud_has_requested_scale() {
        let mut rng = seeded(221);
        let pts = gaussian_cloud(&mut rng, 200, 10, 2.0);
        let mean_sq: f64 = pts.iter().map(|p| p.norm().powi(2)).sum::<f64>() / pts.len() as f64;
        // E||x||^2 = sigma^2 d = 40.
        assert!((mean_sq - 40.0).abs() < 4.0, "mean sq {mean_sq}");
    }

    #[test]
    fn point_at_exact_distance() {
        let mut rng = seeded(222);
        let x = DenseVector::gaussian(&mut rng, 12);
        for &delta in &[0.0, 0.5, 3.0] {
            let y = point_at_distance(&mut rng, &x, delta);
            assert!((x.euclidean(&y) - delta).abs() < 1e-10);
        }
    }

    #[test]
    fn planted_instance_separation() {
        let mut rng = seeded(223);
        let inst = planted_euclidean_instance(&mut rng, 25, 16, 1.0, 4.0);
        assert_eq!(inst.points.len(), 25);
        assert!((inst.query.euclidean(&inst.points[inst.planted_index]) - 1.0).abs() < 1e-10);
        for (i, p) in inst.points.iter().enumerate() {
            if i != inst.planted_index {
                assert!(inst.query.euclidean(p) >= 4.0);
            }
        }
    }
}
