//! Bit-exactness parity sweeps for the runtime-dispatched SIMD kernels.
//!
//! The dispatch contract (see `dsh_core::kernels`) is that every tier —
//! scalar, SSE2, AVX2 — produces **bit-identical** results, because the
//! vector kernels reuse the scalar path's 4-accumulator lane structure
//! and reduction order. These tests enumerate every tier the current CPU
//! supports via [`dsh_core::kernels::implementations`] and compare each
//! against the scalar oracle across awkward shapes: lengths 0..=130 (sub-
//! lane sizes and odd tails), element-unaligned slice offsets (vector
//! loads must not assume 32-byte alignment), duplicate/out-of-order id
//! lists for the `_many` batch variants, and `BitStore` rows whose final
//! block is tail-masked.
//!
//! The last test is end-to-end: a full recall-harness run (hamming ANN
//! over a planted instance plus a dense verification sweep) is digested
//! to a single FNV hash, then the test re-executes itself in a child
//! process with `DSH_FORCE_SCALAR=1` and asserts the child — pinned to
//! the scalar tier — reproduces the digest bit-for-bit. Dispatch is
//! resolved once per process, so the subprocess is the only way to
//! compare both paths in one test run.

use dsh_core::kernels::{self, Kernels};
use dsh_core::points::{BitStore, BitVector, DenseStore};
use dsh_hamming::BitSampling;
use dsh_index::NearNeighborIndex;
use dsh_math::rng::seeded;
use rand::rngs::StdRng;
use rand::Rng as _;

/// Upper bound of the length sweep: past two full 64-byte cache lines of
/// f64 lanes, so every tail residue 0..4 appears both below and above
/// the unroll width.
const MAX_LEN: usize = 130;

fn random_f64s(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
}

fn random_u64s(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.next_u64()).collect()
}

/// FNV-1a over the little-endian bytes of `x`, folded into `acc`.
fn fnv(acc: u64, x: u64) -> u64 {
    x.to_le_bytes().iter().fold(acc, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Every non-scalar tier the CPU supports, with the scalar oracle first
/// so a broken `implementations()` would fail loudly here.
fn tiers() -> Vec<&'static Kernels> {
    let all = kernels::implementations();
    assert_eq!(all[0].name, "scalar", "scalar oracle must be listed first");
    all
}

#[test]
fn pairwise_f64_kernels_bit_match_scalar_across_lengths_and_offsets() {
    let mut rng = seeded(0x51_D01);
    // One oversized buffer per side; slices are carved at varying offsets
    // so vector loads see every 32-byte misalignment class.
    let a = random_f64s(&mut rng, MAX_LEN + 8);
    let b = random_f64s(&mut rng, MAX_LEN + 8);
    for tier in tiers() {
        for len in 0..=MAX_LEN {
            for off in 0..4 {
                let (x, y) = (&a[off..off + len], &b[off..off + len]);
                assert_eq!(
                    (tier.dot)(x, y).to_bits(),
                    kernels::scalar::dot(x, y).to_bits(),
                    "dot: tier={} len={len} off={off}",
                    tier.name
                );
                assert_eq!(
                    (tier.euclidean)(x, y).to_bits(),
                    kernels::scalar::euclidean(x, y).to_bits(),
                    "euclidean: tier={} len={len} off={off}",
                    tier.name
                );
            }
        }
    }
}

#[test]
fn pairwise_hamming_kernels_match_scalar_across_lengths_and_offsets() {
    let mut rng = seeded(0x51_D02);
    let a = random_u64s(&mut rng, MAX_LEN + 8);
    let b = random_u64s(&mut rng, MAX_LEN + 8);
    for tier in tiers() {
        for len in 0..=MAX_LEN {
            for off in 0..4 {
                let (x, y) = (&a[off..off + len], &b[off..off + len]);
                assert_eq!(
                    (tier.hamming)(x, y),
                    kernels::scalar::hamming(x, y),
                    "hamming: tier={} len={len} off={off}",
                    tier.name
                );
            }
        }
    }
}

#[test]
fn batch_f64_kernels_bit_match_scalar_with_duplicate_unordered_ids() {
    let mut rng = seeded(0x51_D03);
    for dim in [1usize, 3, 4, 7, 8, 31, 64, 96, 130] {
        let n = 37;
        let flat = random_f64s(&mut rng, n * dim);
        let q = random_f64s(&mut rng, dim);
        // Out of order, with duplicates and repeated boundary rows — the
        // internal prefetch-ahead must not perturb results.
        let mut ids: Vec<usize> = (0..n).map(|j| (j * 17 + 5) % n).collect();
        ids.extend_from_slice(&[0, n - 1, n - 1, 0, n / 2]);
        let (mut want, mut got) = (Vec::new(), Vec::new());
        for tier in tiers() {
            // The raw kernels append; clear between calls like the store
            // facades do.
            want.clear();
            got.clear();
            (kernels::scalar::dot_many)(&flat, dim, &ids, &q, &mut want);
            (tier.dot_many)(&flat, dim, &ids, &q, &mut got);
            let bits = |v: &Vec<f64>| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
            assert_eq!(
                bits(&got),
                bits(&want),
                "dot_many: tier={} dim={dim}",
                tier.name
            );
            want.clear();
            got.clear();
            (kernels::scalar::euclidean_many)(&flat, dim, &ids, &q, &mut want);
            (tier.euclidean_many)(&flat, dim, &ids, &q, &mut got);
            assert_eq!(
                bits(&got),
                bits(&want),
                "euclidean_many: tier={} dim={dim}",
                tier.name
            );
        }
    }
}

#[test]
fn batch_hamming_matches_scalar_on_tail_masked_bitstore_rows() {
    let mut rng = seeded(0x51_D04);
    // Dimensions straddling the 64-bit block boundary: the final block of
    // each row carries masked-off dead bits the kernels must still read
    // (they are zeroed by construction, so XOR+popcount stays exact).
    for d in [1usize, 63, 64, 65, 127, 128, 130] {
        let mut store = BitStore::with_dim(d);
        let n = 29;
        for _ in 0..n {
            store.push(&BitVector::random(&mut rng, d));
        }
        let q = BitVector::random(&mut rng, d);
        let mut ids: Vec<usize> = (0..n).map(|j| (j * 11 + 3) % n).collect();
        ids.extend_from_slice(&[n - 1, 0, n - 1]);
        let (mut want, mut got) = (Vec::new(), Vec::new());
        for tier in tiers() {
            want.clear();
            got.clear();
            (kernels::scalar::hamming_many)(
                store.as_flat(),
                store.blocks_per_row(),
                &ids,
                q.as_blocks(),
                &mut want,
            );
            (tier.hamming_many)(
                store.as_flat(),
                store.blocks_per_row(),
                &ids,
                q.as_blocks(),
                &mut got,
            );
            assert_eq!(got, want, "hamming_many: tier={} d={d}", tier.name);
            // And through the store facade, which routes via the active
            // dispatch table.
            store.hamming_many(&ids, q.as_blocks(), &mut got);
            assert_eq!(got, want, "BitStore::hamming_many: d={d}");
        }
    }
}

/// One deterministic recall-harness run, reduced to an FNV digest: a
/// hamming ANN over a planted instance (exercising the CSR bucket walk,
/// the stamp prefetch, and `hamming_many` verification) plus a dense
/// `dot_many`/`euclidean_many` sweep (exercising the f64 kernels and the
/// row-gather prefetch). Every seed is fixed, so two processes disagree
/// only if their kernels disagree.
fn recall_harness_digest() -> u64 {
    let mut h = FNV_SEED;

    // Hamming ANN recall sweep.
    let d = 128;
    let mut rng = seeded(0x51_D05);
    let inst = dsh_data::hamming_data::planted_hamming_instance(&mut rng, 200, d, 6);
    let idx = NearNeighborIndex::build(
        &BitSampling::new(d),
        dsh_index::measures::relative_hamming(d),
        0.25,
        inst.points,
        0.95,
        0.75,
        2.0,
        &mut rng,
    );
    let (hit, _) = idx.query(&inst.query);
    h = fnv(h, hit.map_or(u64::MAX, |i| i as u64));
    for _ in 0..16 {
        let q = BitVector::random(&mut rng, d);
        let (hit, stats) = idx.query(&q);
        h = fnv(h, hit.map_or(u64::MAX, |i| i as u64));
        h = fnv(h, stats.distinct_candidates as u64);
        h = fnv(h, stats.distance_computations as u64);
    }

    // Dense verification sweep over a store facade.
    let dim = 96;
    let n = 64;
    let mut store = DenseStore::with_dim(dim);
    for _ in 0..n {
        store.push(&random_f64s(&mut rng, dim));
    }
    let q = random_f64s(&mut rng, dim);
    let ids: Vec<usize> = (0..n).map(|j| (j * 7 + 2) % n).collect();
    let mut out = Vec::new();
    store.dot_many(&ids, &q, &mut out);
    h = out.iter().fold(h, |h, x| fnv(h, x.to_bits()));
    store.euclidean_many(&ids, &q, &mut out);
    h = out.iter().fold(h, |h, x| fnv(h, x.to_bits()));
    h
}

const CHILD_MARKER: &str = "KERNEL_PARITY_CHILD";

#[test]
fn end_to_end_recall_digest_is_dispatch_invariant() {
    if std::env::var_os(CHILD_MARKER).is_some() {
        // Child mode: report the forced-scalar digest on stdout and stop.
        println!(
            "PARITY_DIGEST={:016x} KERNEL={}",
            recall_harness_digest(),
            kernels::active().name
        );
        return;
    }

    let native = recall_harness_digest();
    let exe = std::env::current_exe().expect("own test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "end_to_end_recall_digest_is_dispatch_invariant",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(CHILD_MARKER, "1")
        .env("DSH_FORCE_SCALAR", "1")
        .output()
        .expect("spawning forced-scalar child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "child failed:\n{stdout}");
    // The libtest harness prints `test <name> ... ` without a newline
    // before the test's own output, so the digest is mid-line: seek the
    // marker rather than scanning line starts.
    let at = stdout
        .find("PARITY_DIGEST=")
        .unwrap_or_else(|| panic!("no digest line in child output:\n{stdout}"));
    let report = stdout[at..].lines().next().expect("digest line");
    let (digest_part, kernel_part) = report
        .split_once(" KERNEL=")
        .expect("digest line carries the active kernel name");
    let child_digest = u64::from_str_radix(digest_part.trim_start_matches("PARITY_DIGEST="), 16)
        .expect("digest parses as hex");
    assert_eq!(
        kernel_part, "scalar",
        "DSH_FORCE_SCALAR=1 child must dispatch to the scalar tier"
    );
    assert_eq!(
        child_digest,
        native,
        "recall-harness digest differs between {} and scalar dispatch",
        kernels::active().name
    );
}
