//! Exact linear-scan baseline.
//!
//! Every experiment compares the DSH structures against the trivial
//! solution: scan all `n` points, computing the measure exactly. The scan
//! counts its distance computations so query-time comparisons are
//! apples-to-apples (the paper's structures win when `n^rho << n`).

use crate::annulus::Measure;
use crate::batch::{ensure_known, WriteError};
use crate::dynamic::Tombstones;
use dsh_core::points::{AppendStore, AsRow, PointStore};

/// Exact scan over any point store (flat stores stream their rows at
/// memory bandwidth; `Vec<P>` remains supported).
///
/// The scan doubles as the exact baseline for the *dynamic* index path:
/// over an [`AppendStore`] it supports [`LinearScan::insert`], and
/// removal tombstones an id so every scan skips it — mirroring
/// [`crate::DynamicIndex`]'s id semantics (ids are stable handles, rows
/// are append-only).
pub struct LinearScan<S: PointStore> {
    points: S,
    measure: Measure<S::Row>,
    tombstones: Tombstones,
}

impl<S: PointStore> LinearScan<S> {
    /// Build from points and a measure.
    pub fn new(points: S, measure: Measure<S::Row>) -> Self {
        LinearScan {
            points,
            measure,
            tombstones: Tombstones::new(),
        }
    }

    /// Number of live points (inserted or initial, not removed).
    pub fn len(&self) -> usize {
        self.points.len() - self.tombstones.dead()
    }

    /// True when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the largest id ever assigned (removed ids keep their
    /// slot).
    pub fn id_bound(&self) -> usize {
        self.points.len()
    }

    /// Whether `id` refers to a live point.
    pub fn is_live(&self, id: usize) -> bool {
        id < self.points.len() && !self.tombstones.is_dead(id)
    }

    /// Remove point `id` from every future scan (tombstone; the row
    /// itself is retained). Returns `Ok(false)` when already removed,
    /// and [`WriteError::UnknownId`] for an id never assigned — the same
    /// recoverable surface as [`crate::DynamicIndex::remove`], so the
    /// baseline stays a drop-in replica in soak tests.
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        ensure_known(id, self.points.len())?;
        Ok(self.tombstones.kill(id))
    }

    /// First live point whose measure to `q` lies in `[lo, hi]`, with the
    /// number of measure evaluations performed (tombstoned points are
    /// skipped without an evaluation).
    pub fn find_in_interval<Q>(&self, q: &Q, lo: f64, hi: f64) -> (Option<usize>, usize)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        let mut evals = 0;
        for i in 0..self.points.len() {
            if self.tombstones.is_dead(i) {
                continue;
            }
            evals += 1;
            let v = (self.measure)(self.points.row(i), q);
            if v >= lo && v <= hi {
                return (Some(i), evals);
            }
        }
        (None, evals)
    }

    /// All live points whose measure lies in `[lo, hi]` (always one
    /// measure evaluation per live point).
    pub fn all_in_interval<Q>(&self, q: &Q, lo: f64, hi: f64) -> (Vec<usize>, usize)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        let out = (0..self.points.len())
            .filter(|&i| {
                if self.tombstones.is_dead(i) {
                    return false;
                }
                let v = (self.measure)(self.points.row(i), q);
                v >= lo && v <= hi
            })
            .collect();
        (out, self.len())
    }

    /// The point minimizing the measure (e.g. nearest neighbor for a
    /// distance measure).
    ///
    /// Comparison uses [`f64::total_cmp`], a total order in which NaN
    /// sorts above every real value: a measure that returns NaN for some
    /// pair (0/0 on degenerate data, an uninitialized coordinate) can no
    /// longer panic the scan — the argmin is the smallest non-NaN value,
    /// and NaN is returned only when every evaluation is NaN.
    pub fn argmin<Q>(&self, q: &Q) -> Option<(usize, f64)>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        (0..self.points.len())
            .filter(|&i| !self.tombstones.is_dead(i))
            .map(|i| (i, (self.measure)(self.points.row(i), q)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl<S: AppendStore> LinearScan<S> {
    /// Append a point (an owned point, a store row view, or a raw row),
    /// returning its id — the dynamic counterpart of building the scan
    /// from a full point set up front.
    pub fn insert<Q>(&mut self, p: &Q) -> usize
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let id = self.points.len();
        self.points.push_row(p.as_row());
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::BitVector;
    use dsh_data::hamming_data;
    use dsh_math::rng::seeded;

    fn scan(seed: u64, n: usize, d: usize) -> (LinearScan<Vec<BitVector>>, BitVector) {
        let mut rng = seeded(seed);
        let points = hamming_data::uniform_hamming(&mut rng, n, d);
        let q = BitVector::random(&mut rng, d);
        (
            LinearScan::new(points, crate::measures::relative_hamming(d)),
            q,
        )
    }

    #[test]
    fn finds_interval_members() {
        let (scan, q) = scan(341, 100, 128);
        let (all, evals) = scan.all_in_interval(&q, 0.4, 0.6);
        assert_eq!(evals, 100);
        // Uniform points concentrate around 0.5: most should be inside.
        assert!(all.len() > 80, "{} inside", all.len());
        let (first, early_evals) = scan.find_in_interval(&q, 0.4, 0.6);
        assert!(first.is_some());
        assert!(early_evals <= 100);
    }

    #[test]
    fn empty_interval() {
        let (scan, q) = scan(342, 50, 128);
        let (none, evals) = scan.find_in_interval(&q, 0.0, 0.01);
        assert!(none.is_none());
        assert_eq!(evals, 50);
    }

    #[test]
    fn argmin_is_true_nearest() {
        let (scan, q) = scan(343, 60, 64);
        let (i, v) = scan.argmin(&q).unwrap();
        let (all, _) = scan.all_in_interval(&q, 0.0, v);
        assert!(all.contains(&i));
        // No point is strictly closer.
        let (closer, _) = scan.all_in_interval(&q, 0.0, v - 1e-9);
        assert!(closer.is_empty());
    }

    #[test]
    fn len_and_empty() {
        let (scan, _) = scan(344, 10, 32);
        assert_eq!(scan.len(), 10);
        assert!(!scan.is_empty());
    }

    #[test]
    fn argmin_skips_nan_measures() {
        // Regression: the seed's `partial_cmp().unwrap()` panicked the
        // moment any measure evaluation produced NaN. With total-order
        // comparison, NaN sorts above every real value, so the argmin is
        // the smallest real measure.
        use dsh_core::points::DenseVector;
        let points = vec![
            DenseVector::new(vec![-1.0, 5.0]), // measure -> NaN
            DenseVector::new(vec![1.0, 3.0]),  // distance 3 to q
            DenseVector::new(vec![1.0, 1.0]),  // distance 1 to q (argmin)
            DenseVector::new(vec![-2.0, 0.0]), // measure -> NaN
        ];
        let measure: crate::annulus::Measure<[f64]> = Box::new(|x, q| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                dsh_core::points::euclidean(x, q)
            }
        });
        let scan = LinearScan::new(points, measure);
        let q = DenseVector::new(vec![1.0, 0.0]);
        let (i, v) = scan.argmin(&q).expect("non-empty scan");
        assert_eq!(i, 2);
        assert_eq!(v, 1.0);
        // All-NaN degenerate case: no panic, the NaN value is surfaced.
        let all_nan: crate::annulus::Measure<[f64]> = Box::new(|_, _| f64::NAN);
        let scan = LinearScan::new(vec![DenseVector::zeros(2)], all_nan);
        let (_, v) = scan.argmin(&q).expect("non-empty scan");
        assert!(v.is_nan());
    }

    #[test]
    fn insert_and_remove_drive_the_scan() {
        use dsh_core::points::BitStore;
        let d = 64;
        let mut rng = seeded(346);
        let points = hamming_data::uniform_hamming(&mut rng, 30, d);
        let q = BitVector::random(&mut rng, d);
        let mut grown =
            LinearScan::new(BitStore::with_dim(d), crate::measures::relative_hamming(d));
        assert!(grown.is_empty());
        let ids: Vec<usize> = points.iter().map(|p| grown.insert(p)).collect();
        assert_eq!(ids, (0..30).collect::<Vec<_>>());
        assert_eq!(grown.len(), 30);
        // Grown scan matches a scan built from the full set up front.
        let whole = LinearScan::new(points.clone(), crate::measures::relative_hamming(d));
        assert_eq!(grown.argmin(&q), whole.argmin(&q));
        assert_eq!(
            grown.all_in_interval(&q, 0.3, 0.7),
            whole.all_in_interval(&q, 0.3, 0.7)
        );
        // Removing the argmin changes the answer to the runner-up, and
        // evaluation counts drop to the live count.
        let (best, _) = grown.argmin(&q).unwrap();
        assert_eq!(grown.remove(best), Ok(true));
        assert_eq!(grown.remove(best), Ok(false));
        assert_eq!(
            grown.remove(grown.id_bound()),
            Err(WriteError::UnknownId { id: 30, bound: 30 })
        );
        assert!(!grown.is_live(best));
        assert_eq!(grown.len(), 29);
        assert_eq!(grown.id_bound(), 30);
        let (second, _) = grown.argmin(&q).unwrap();
        assert_ne!(second, best);
        let (inside, evals) = grown.all_in_interval(&q, 0.0, 1.0);
        assert_eq!(evals, 29);
        assert!(!inside.contains(&best));
        let (_, evals) = grown.find_in_interval(&q, 2.0, 3.0);
        assert_eq!(evals, 29, "tombstoned point must not be evaluated");
    }

    #[test]
    fn store_backed_scan_matches_vec_backed() {
        use dsh_core::points::BitStore;
        let mut rng = seeded(345);
        let d = 96;
        let points = hamming_data::uniform_hamming(&mut rng, 40, d);
        let q = BitVector::random(&mut rng, d);
        let vec_scan = LinearScan::new(points.clone(), crate::measures::relative_hamming(d));
        let store_scan =
            LinearScan::new(BitStore::from(points), crate::measures::relative_hamming(d));
        assert_eq!(
            vec_scan.all_in_interval(&q, 0.3, 0.7),
            store_scan.all_in_interval(&q, 0.3, 0.7)
        );
        assert_eq!(vec_scan.argmin(&q), store_scan.argmin(&q));
        assert_eq!(
            vec_scan.find_in_interval(&q, 0.0, 1.0),
            store_scan.find_in_interval(&q, 0.0, 1.0)
        );
    }
}
