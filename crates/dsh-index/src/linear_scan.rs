//! Exact linear-scan baseline.
//!
//! Every experiment compares the DSH structures against the trivial
//! solution: scan all `n` points, computing the measure exactly. The scan
//! counts its distance computations so query-time comparisons are
//! apples-to-apples (the paper's structures win when `n^rho << n`).

use crate::annulus::Measure;
use dsh_core::points::{AsRow, PointStore};

/// Exact scan over any point store (flat stores stream their rows at
/// memory bandwidth; `Vec<P>` remains supported).
pub struct LinearScan<S: PointStore> {
    points: S,
    measure: Measure<S::Row>,
}

impl<S: PointStore> LinearScan<S> {
    /// Build from points and a measure.
    pub fn new(points: S, measure: Measure<S::Row>) -> Self {
        LinearScan { points, measure }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First point whose measure to `q` lies in `[lo, hi]`, with the
    /// number of measure evaluations performed.
    pub fn find_in_interval<Q>(&self, q: &Q, lo: f64, hi: f64) -> (Option<usize>, usize)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        for i in 0..self.points.len() {
            let v = (self.measure)(self.points.row(i), q);
            if v >= lo && v <= hi {
                return (Some(i), i + 1);
            }
        }
        (None, self.points.len())
    }

    /// All points whose measure lies in `[lo, hi]` (always `n` measure
    /// evaluations).
    pub fn all_in_interval<Q>(&self, q: &Q, lo: f64, hi: f64) -> (Vec<usize>, usize)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        let out = (0..self.points.len())
            .filter(|&i| {
                let v = (self.measure)(self.points.row(i), q);
                v >= lo && v <= hi
            })
            .collect();
        (out, self.points.len())
    }

    /// The point minimizing the measure (e.g. nearest neighbor for a
    /// distance measure).
    ///
    /// Comparison uses [`f64::total_cmp`], a total order in which NaN
    /// sorts above every real value: a measure that returns NaN for some
    /// pair (0/0 on degenerate data, an uninitialized coordinate) can no
    /// longer panic the scan — the argmin is the smallest non-NaN value,
    /// and NaN is returned only when every evaluation is NaN.
    pub fn argmin<Q>(&self, q: &Q) -> Option<(usize, f64)>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        (0..self.points.len())
            .map(|i| (i, (self.measure)(self.points.row(i), q)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::BitVector;
    use dsh_data::hamming_data;
    use dsh_math::rng::seeded;

    fn scan(seed: u64, n: usize, d: usize) -> (LinearScan<Vec<BitVector>>, BitVector) {
        let mut rng = seeded(seed);
        let points = hamming_data::uniform_hamming(&mut rng, n, d);
        let q = BitVector::random(&mut rng, d);
        (
            LinearScan::new(points, crate::measures::relative_hamming(d)),
            q,
        )
    }

    #[test]
    fn finds_interval_members() {
        let (scan, q) = scan(341, 100, 128);
        let (all, evals) = scan.all_in_interval(&q, 0.4, 0.6);
        assert_eq!(evals, 100);
        // Uniform points concentrate around 0.5: most should be inside.
        assert!(all.len() > 80, "{} inside", all.len());
        let (first, early_evals) = scan.find_in_interval(&q, 0.4, 0.6);
        assert!(first.is_some());
        assert!(early_evals <= 100);
    }

    #[test]
    fn empty_interval() {
        let (scan, q) = scan(342, 50, 128);
        let (none, evals) = scan.find_in_interval(&q, 0.0, 0.01);
        assert!(none.is_none());
        assert_eq!(evals, 50);
    }

    #[test]
    fn argmin_is_true_nearest() {
        let (scan, q) = scan(343, 60, 64);
        let (i, v) = scan.argmin(&q).unwrap();
        let (all, _) = scan.all_in_interval(&q, 0.0, v);
        assert!(all.contains(&i));
        // No point is strictly closer.
        let (closer, _) = scan.all_in_interval(&q, 0.0, v - 1e-9);
        assert!(closer.is_empty());
    }

    #[test]
    fn len_and_empty() {
        let (scan, _) = scan(344, 10, 32);
        assert_eq!(scan.len(), 10);
        assert!(!scan.is_empty());
    }

    #[test]
    fn argmin_skips_nan_measures() {
        // Regression: the seed's `partial_cmp().unwrap()` panicked the
        // moment any measure evaluation produced NaN. With total-order
        // comparison, NaN sorts above every real value, so the argmin is
        // the smallest real measure.
        use dsh_core::points::DenseVector;
        let points = vec![
            DenseVector::new(vec![-1.0, 5.0]), // measure -> NaN
            DenseVector::new(vec![1.0, 3.0]),  // distance 3 to q
            DenseVector::new(vec![1.0, 1.0]),  // distance 1 to q (argmin)
            DenseVector::new(vec![-2.0, 0.0]), // measure -> NaN
        ];
        let measure: crate::annulus::Measure<[f64]> = Box::new(|x, q| {
            if x[0] < 0.0 {
                f64::NAN
            } else {
                dsh_core::points::euclidean(x, q)
            }
        });
        let scan = LinearScan::new(points, measure);
        let q = DenseVector::new(vec![1.0, 0.0]);
        let (i, v) = scan.argmin(&q).expect("non-empty scan");
        assert_eq!(i, 2);
        assert_eq!(v, 1.0);
        // All-NaN degenerate case: no panic, the NaN value is surfaced.
        let all_nan: crate::annulus::Measure<[f64]> = Box::new(|_, _| f64::NAN);
        let scan = LinearScan::new(vec![DenseVector::zeros(2)], all_nan);
        let (_, v) = scan.argmin(&q).expect("non-empty scan");
        assert!(v.is_nan());
    }

    #[test]
    fn store_backed_scan_matches_vec_backed() {
        use dsh_core::points::BitStore;
        let mut rng = seeded(345);
        let d = 96;
        let points = hamming_data::uniform_hamming(&mut rng, 40, d);
        let q = BitVector::random(&mut rng, d);
        let vec_scan = LinearScan::new(points.clone(), crate::measures::relative_hamming(d));
        let store_scan =
            LinearScan::new(BitStore::from(points), crate::measures::relative_hamming(d));
        assert_eq!(
            vec_scan.all_in_interval(&q, 0.3, 0.7),
            store_scan.all_in_interval(&q, 0.3, 0.7)
        );
        assert_eq!(vec_scan.argmin(&q), store_scan.argmin(&q));
        assert_eq!(
            vec_scan.find_in_interval(&q, 0.0, 1.0),
            store_scan.find_in_interval(&q, 0.0, 1.0)
        );
    }
}
