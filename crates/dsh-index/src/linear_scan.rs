//! Exact linear-scan baseline.
//!
//! Every experiment compares the DSH structures against the trivial
//! solution: scan all `n` points, computing the measure exactly. The scan
//! counts its distance computations so query-time comparisons are
//! apples-to-apples (the paper's structures win when `n^rho << n`).

use crate::annulus::Measure;

/// Exact scan over an owned point set.
pub struct LinearScan<P> {
    points: Vec<P>,
    measure: Measure<P>,
}

impl<P> LinearScan<P> {
    /// Build from points and a measure.
    pub fn new(points: Vec<P>, measure: Measure<P>) -> Self {
        LinearScan { points, measure }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First point whose measure to `q` lies in `[lo, hi]`, with the
    /// number of measure evaluations performed.
    pub fn find_in_interval(&self, q: &P, lo: f64, hi: f64) -> (Option<usize>, usize) {
        for (i, p) in self.points.iter().enumerate() {
            let v = (self.measure)(p, q);
            if v >= lo && v <= hi {
                return (Some(i), i + 1);
            }
        }
        (None, self.points.len())
    }

    /// All points whose measure lies in `[lo, hi]` (always `n` measure
    /// evaluations).
    pub fn all_in_interval(&self, q: &P, lo: f64, hi: f64) -> (Vec<usize>, usize) {
        let out = self
            .points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let v = (self.measure)(p, q);
                v >= lo && v <= hi
            })
            .map(|(i, _)| i)
            .collect();
        (out, self.points.len())
    }

    /// The point minimizing the measure (e.g. nearest neighbor for a
    /// distance measure).
    pub fn argmin(&self, q: &P) -> Option<(usize, f64)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, (self.measure)(p, q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::BitVector;
    use dsh_data::hamming_data;
    use dsh_math::rng::seeded;

    fn scan(seed: u64, n: usize, d: usize) -> (LinearScan<BitVector>, BitVector) {
        let mut rng = seeded(seed);
        let points = hamming_data::uniform_hamming(&mut rng, n, d);
        let q = BitVector::random(&mut rng, d);
        (
            LinearScan::new(points, Box::new(|x, y| x.relative_hamming(y))),
            q,
        )
    }

    #[test]
    fn finds_interval_members() {
        let (scan, q) = scan(341, 100, 128);
        let (all, evals) = scan.all_in_interval(&q, 0.4, 0.6);
        assert_eq!(evals, 100);
        // Uniform points concentrate around 0.5: most should be inside.
        assert!(all.len() > 80, "{} inside", all.len());
        let (first, early_evals) = scan.find_in_interval(&q, 0.4, 0.6);
        assert!(first.is_some());
        assert!(early_evals <= 100);
    }

    #[test]
    fn empty_interval() {
        let (scan, q) = scan(342, 50, 128);
        let (none, evals) = scan.find_in_interval(&q, 0.0, 0.01);
        assert!(none.is_none());
        assert_eq!(evals, 50);
    }

    #[test]
    fn argmin_is_true_nearest() {
        let (scan, q) = scan(343, 60, 64);
        let (i, v) = scan.argmin(&q).unwrap();
        let (all, _) = scan.all_in_interval(&q, 0.0, v);
        assert!(all.contains(&i));
        // No point is strictly closer.
        let (closer, _) = scan.all_in_interval(&q, 0.0, v - 1e-9);
        assert!(closer.is_empty());
    }

    #[test]
    fn len_and_empty() {
        let (scan, _) = scan(344, 10, 32);
        assert_eq!(scan.len(), 10);
        assert!(!scan.is_empty());
    }
}
