//! Search data structures built on distance-sensitive hash families
//! (paper §6.1–§6.3).
//!
//! * [`table`] — the `L`-repetition asymmetric hash table underlying
//!   every structure: points inserted under `h`, queries probed under `g`;
//! * [`annulus`] — the Theorem 6.1 data structure for approximate annulus
//!   search with any unimodal CPF, including the `8L` early-termination
//!   rule from its proof;
//! * [`hyperplane`] — hyperplane queries (§6.1) as annulus search around
//!   inner product 0;
//! * [`range_reporting`] — approximate spherical range reporting with
//!   step-function CPFs (Theorem 6.5) and output-sensitivity accounting;
//! * [`linear_scan`] — the exact baseline every experiment compares
//!   against (including the dynamic path: it supports insert/remove);
//! * [`dynamic`] — the mutable segmented index: sealed CSR segments plus
//!   a `HashMap` delta segment and tombstones, with online
//!   insert/remove and re-hash-free compaction;
//! * [`batch`] — group-commit write batches: ordered inserts and removes
//!   validated up front and applied (and published) as one unit, closing
//!   the per-write publication tax of the sharded serving layer;
//! * [`shard`] — the concurrent serving layer: points partitioned across
//!   shards of [`DynamicIndex`]es behind epoch-stamped `Arc`-swap
//!   snapshots, so readers answer — bit-identically to the unsharded
//!   index — while writers insert, remove, seal, and compact;
//! * [`parallel`] — the scoped-thread fan-out used for parallel table
//!   builds and batched queries.
//!
//! Every structure stores its buckets in a flat CSR layout (see [`table`]),
//! builds its `L` repetitions across worker threads, and offers a
//! `query_batch` variant that amortizes scratch buffers and fans queries
//! out across threads. Batched results are always identical to a
//! query-at-a-time loop, for every thread count.
//!
//! Every front-end is generic over a [`table::CandidateBackend`] — the
//! static [`HashTableIndex`] by default, or the segmented
//! [`DynamicIndex`] (via the `build_dynamic` constructors) when points
//! must be inserted and retired online. A dynamic index grown by inserts
//! and then compacted answers queries bit-identically to a static build
//! over the same final point set.
//!
//! Points live in a [`dsh_core::points::PointStore`]: the flat
//! [`dsh_core::points::BitStore`] / [`dsh_core::points::DenseStore`]
//! (contiguous rows — hashing and candidate verification at memory
//! bandwidth) or a plain `Vec` of owned points. Indexes built over either
//! backend from the same RNG stream are query-for-query identical;
//! candidate verification goes through row-based [`annulus::Measure`]s
//! (see [`measures`] for the stock kernels).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ann;
pub mod annulus;
pub mod batch;
pub mod dynamic;
pub mod hyperplane;
pub mod linear_scan;
pub mod measures;
pub mod parallel;
pub mod range_reporting;
pub mod shard;
pub mod sphere_annulus;
pub mod table;

pub use ann::{ann_params, AnnParams, NearNeighborIndex, MAX_REPETITIONS};
pub use annulus::AnnulusIndex;
pub use batch::{BatchError, WriteBatch, WriteError, WriteOutcome, MAX_POINTS};
pub use dynamic::DynamicIndex;
pub use hyperplane::HyperplaneIndex;
pub use linear_scan::LinearScan;
pub use range_reporting::RangeReportingIndex;
pub use shard::{ReaderHandle, ShardedIndex, Snapshot};
pub use sphere_annulus::{AnnulusSpec, SphereAnnulusIndex};
pub use table::{CandidateBackend, HashTableIndex, QueryScratch, QueryStats};
