//! Approximate spherical range reporting (Theorem 6.5).
//!
//! Report (a superset-free approximation of) all points within distance
//! `r` of the query. A plain LSH index is wasteful here: very close points
//! collide in almost every repetition and are retrieved over and over.
//! A *step-function* CPF — flat on `[0, r]`, rapidly decaying after —
//! bounds the duplication factor by `f_max / f_min` over the flat region
//! (Theorem 6.5's `O(d n^rho + d |S| f_max / f_min)` query time).

use crate::annulus::Measure;
use crate::batch::WriteError;
use crate::dynamic::DynamicIndex;
use crate::parallel;
use crate::shard::ShardedIndex;
use crate::table::{CandidateBackend, HashTableIndex, QueryStats};
use dsh_core::family::DshFamily;
use dsh_core::points::{AppendStore, AsRow, PointStore};
use rand::Rng;

/// Range-reporting index: returns points with `dist <= r_plus`, and each
/// point with `dist <= r` is reported with probability at least
/// `1 - (1 - f_min)^L` (>= 1/2 for `L >= 1/f_min`).
///
/// Generic over the candidate backend `B`: the static
/// [`HashTableIndex`] (the default) or the segmented [`DynamicIndex`]
/// (via [`RangeReportingIndex::build_dynamic`]) for online
/// insert/remove.
pub struct RangeReportingIndex<S: PointStore, B: CandidateBackend<Row = S::Row> = HashTableIndex<S>>
{
    index: B,
    measure: Measure<S::Row>,
    r: f64,
    r_plus: f64,
}

impl<S: PointStore> RangeReportingIndex<S> {
    /// Build with `l` repetitions; `measure` must be the *distance* the
    /// radii refer to.
    ///
    /// Validates its inputs up front: `l >= 1`, a non-empty point set, and
    /// finite, ordered, non-negative radii.
    pub fn build(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        r: f64,
        r_plus: f64,
        points: S,
        l: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            l >= 1,
            "RangeReportingIndex: need at least one repetition (l >= 1)"
        );
        assert!(
            !points.is_empty(),
            "RangeReportingIndex: cannot build over an empty point set"
        );
        assert!(
            r.is_finite() && r_plus.is_finite() && r >= 0.0,
            "RangeReportingIndex: radii r = {r}, r_plus = {r_plus} must be finite and non-negative"
        );
        assert!(r <= r_plus, "need r <= r_plus");
        RangeReportingIndex {
            index: HashTableIndex::build(family, points, l, rng),
            measure,
            r,
            r_plus,
        }
    }
}

impl<S: AppendStore> RangeReportingIndex<S, DynamicIndex<S>> {
    /// Build over a [`DynamicIndex`] backend: same parameters as
    /// [`RangeReportingIndex::build`], but the point set may start empty
    /// and the returned index supports [`RangeReportingIndex::insert`] /
    /// [`RangeReportingIndex::remove`] /
    /// [`RangeReportingIndex::compact`]. Grown-then-compacted indexes
    /// report identically to a static build over the same final point
    /// set.
    pub fn build_dynamic(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        r: f64,
        r_plus: f64,
        points: S,
        l: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            r.is_finite() && r_plus.is_finite() && r >= 0.0,
            "RangeReportingIndex: radii r = {r}, r_plus = {r_plus} must be finite and non-negative"
        );
        assert!(r <= r_plus, "need r <= r_plus");
        RangeReportingIndex {
            index: DynamicIndex::build(family, points, l, rng),
            measure,
            r,
            r_plus,
        }
    }

    /// Insert a point into the backing [`DynamicIndex`], returning its id
    /// (a full id space rejects with the backend's [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.index.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.index.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.index.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.index.remove_batch(ids)
    }

    /// Freeze the delta segment; see [`DynamicIndex::seal`].
    pub fn seal(&mut self) {
        self.index.seal();
    }

    /// Merge all segments, dropping tombstones; see
    /// [`DynamicIndex::compact`].
    pub fn compact(&mut self) {
        self.index.compact();
    }
}

impl<S: AppendStore + Clone> RangeReportingIndex<S, ShardedIndex<S>> {
    /// Build over a [`ShardedIndex`] backend: same parameters as
    /// [`RangeReportingIndex::build_dynamic`] plus the shard count.
    /// Queries fan out across shards and report bit-identically to the
    /// [`DynamicIndex`]-backed build.
    #[allow(clippy::too_many_arguments)] // mirrors the theorem's parameter list
    pub fn build_sharded(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        r: f64,
        r_plus: f64,
        points: S,
        l: usize,
        num_shards: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            r.is_finite() && r_plus.is_finite() && r >= 0.0,
            "RangeReportingIndex: radii r = {r}, r_plus = {r_plus} must be finite and non-negative"
        );
        assert!(r <= r_plus, "need r <= r_plus");
        RangeReportingIndex {
            index: ShardedIndex::build(family, points, l, num_shards, rng),
            measure,
            r,
            r_plus,
        }
    }

    /// Insert a point into the backing [`ShardedIndex`], returning its
    /// global id (a full id space rejects with the backend's
    /// [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.index.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.index.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.index.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.index.remove_batch(ids)
    }

    /// Freeze every shard's delta segment; see [`ShardedIndex::seal`].
    pub fn seal(&mut self) {
        self.index.seal();
    }

    /// Compact every shard, dropping tombstones; see
    /// [`ShardedIndex::compact`].
    pub fn compact(&mut self) {
        self.index.compact();
    }
}

impl<S: PointStore, B: CandidateBackend<Row = S::Row>> RangeReportingIndex<S, B> {
    /// Inner radius `r` (the recall target).
    pub fn radius(&self) -> f64 {
        self.r
    }

    /// The candidate backend (e.g. to inspect a [`DynamicIndex`]'s
    /// segment layout or live count).
    pub fn backend(&self) -> &B {
        &self.index
    }

    /// Mutable access to the candidate backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.index
    }

    /// Outer radius `r_plus` (the reporting slack).
    pub fn outer_radius(&self) -> f64 {
        self.r_plus
    }

    /// Number of repetitions.
    pub fn repetitions(&self) -> usize {
        self.index.repetitions()
    }

    /// Report all retrieved candidates within `r_plus`. The stats expose
    /// the duplicate count, whose ratio to the output size is the
    /// output-sensitivity overhead bounded by `f_max / f_min`.
    pub fn query<Q>(&self, q: &Q) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        let (cands, mut stats) = self
            .index
            .candidates_row(q, None, &mut self.index.new_scratch());
        let out = self.verify(&cands, q, &mut stats);
        (out, stats)
    }

    /// Run [`RangeReportingIndex::query`] for a batch of queries, fanned
    /// out across worker threads with one reusable scratch buffer per
    /// worker. Results line up with `queries` and are identical to a
    /// query-at-a-time loop.
    pub fn query_batch<QS>(&self, queries: &QS) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.query_batch_with_threads(queries, parallel::available_threads())
    }

    /// [`RangeReportingIndex::query_batch`] with an explicit worker-thread
    /// count (the output does not depend on it; the count is capped so
    /// each worker serves several queries per scratch buffer).
    pub fn query_batch_with_threads<QS>(
        &self,
        queries: &QS,
        threads: usize,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        let threads =
            parallel::capped_threads(queries.len(), threads, crate::table::MIN_QUERIES_PER_WORKER);
        parallel::map_index_chunks(queries.len(), threads, |range| {
            let mut scratch = self.index.new_scratch();
            range
                .map(|i| {
                    let q = queries.row(i);
                    let (cands, mut stats) = self.index.candidates_row(q, None, &mut scratch);
                    let out = self.verify(&cands, q, &mut stats);
                    (out, stats)
                })
                .collect()
        })
    }

    fn verify(&self, cands: &[usize], q: &S::Row, stats: &mut QueryStats) -> Vec<usize> {
        let mut out = Vec::new();
        for (j, &i) in cands.iter().enumerate() {
            // Gather the row a few candidates ahead so its cache misses
            // overlap this candidate's distance computation.
            if let Some(&ahead) = cands.get(j + crate::table::ROW_AHEAD) {
                self.index.prefetch_point(ahead);
            }
            stats.distance_computations += 1;
            if (self.measure)(self.index.point(i), q) <= self.r_plus {
                out.push(i);
            }
        }
        out
    }

    /// Recall against a ground-truth set of indices within distance `r`
    /// (fraction of them reported).
    pub fn recall<Q>(&self, q: &Q, truth: &[usize]) -> f64
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        if truth.is_empty() {
            return 1.0;
        }
        let (found, _) = self.query(q);
        let hits = truth.iter().filter(|i| found.contains(i)).count();
        hits as f64 / truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::combinators::{Concat, Power};
    use dsh_core::points::BitVector;
    use dsh_core::BoxedDshFamily;
    use dsh_data::hamming_data;
    use dsh_hamming::{AntiBitSampling, BitSampling};
    use dsh_math::rng::seeded;

    /// A dataset with `close` points at relative distance ~0.05 and
    /// `far` points near 0.5.
    fn instance(
        seed: u64,
        d: usize,
        close: usize,
        far: usize,
    ) -> (BitVector, Vec<BitVector>, Vec<usize>) {
        let mut rng = seeded(seed);
        let q = BitVector::random(&mut rng, d);
        let mut points = Vec::new();
        let mut truth = Vec::new();
        for i in 0..close {
            points.push(hamming_data::point_at_distance(&mut rng, &q, d / 20));
            truth.push(i);
        }
        points.extend(hamming_data::uniform_hamming(&mut rng, far, d));
        (q, points, truth)
    }

    #[test]
    fn reports_close_points_with_high_recall() {
        let d = 200;
        let (q, points, truth) = instance(331, d, 20, 200);
        // Step-ish CPF: bit-sampling powered to push far points below 1/n
        // while close points stay likely.
        let k = 12usize;
        let fam = Power::new(BitSampling::new(d), k);
        let f_close = 0.95f64.powi(k as i32);
        let l = (3.0 / f_close).ceil() as usize;
        let mut rng = seeded(332);
        let measure = crate::measures::relative_hamming(d);
        let idx = RangeReportingIndex::build(&fam, measure, 0.05, 0.2, points, l, &mut rng);
        let rec = idx.recall(&q, &truth);
        assert!(rec > 0.9, "recall {rec}");
        // Nothing reported beyond r_plus.
        let (found, _) = idx.query(&q);
        for i in found {
            let t = dsh_core::points::hamming(idx.index.point(i), q.as_blocks()) as f64 / d as f64;
            assert!(t <= 0.2);
        }
    }

    #[test]
    fn step_cpf_reduces_duplicates() {
        // Compare duplicate ratios: plain powered bit-sampling (CPF ~ 1
        // at distance 0 -> every repetition re-finds very close points)
        // versus a flattened step-like CPF built by mixing in anti
        // bit-sampling, which caps f_max.
        let d = 200;
        let (q, points, _) = instance(333, d, 30, 100);

        let k = 10usize;
        let plain = Power::new(BitSampling::new(d), k);
        let f_r_plain = 0.95f64.powi(k as i32);
        let l_plain = (2.0 / f_r_plain).ceil() as usize;

        // Step-ish: concatenate with one anti bit-sampling; CPF
        // (1-t)^k * t has f(0) = 0 yet f(0.05) comparable — flat-ish over
        // the close range relative to its max.
        let step = Concat::new(vec![
            Box::new(Power::new(BitSampling::new(d), k)) as BoxedDshFamily<[u64]>,
            Box::new(AntiBitSampling::new(d)),
        ]);
        let f_r_step = 0.95f64.powi(k as i32) * 0.05;
        let l_step = (2.0 / f_r_step).ceil() as usize;

        let mut rng = seeded(334);
        let m1 = crate::measures::relative_hamming(d);
        let m2 = crate::measures::relative_hamming(d);
        let idx_plain =
            RangeReportingIndex::build(&plain, m1, 0.05, 0.2, points.clone(), l_plain, &mut rng);
        let idx_step = RangeReportingIndex::build(&step, m2, 0.05, 0.2, points, l_step, &mut rng);

        let (out_p, st_p) = idx_plain.query(&q);
        let (out_s, st_s) = idx_step.query(&q);
        assert!(!out_p.is_empty() && !out_s.is_empty());
        // Duplicates per reported point: for the plain family the closest
        // points collide in ~every one of the L_plain tables. Normalize by
        // L to compare fairly across different repetition counts.
        let dup_rate_plain =
            st_p.duplicates as f64 / (out_p.len() as f64 * idx_plain.repetitions() as f64);
        let dup_rate_step =
            st_s.duplicates as f64 / (out_s.len() as f64 * idx_step.repetitions() as f64);
        assert!(
            dup_rate_step < dup_rate_plain,
            "step {dup_rate_step} !< plain {dup_rate_plain}"
        );
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let d = 128;
        let mut rng = seeded(336);
        let q = BitVector::random(&mut rng, d);
        let mut points: Vec<BitVector> = (0..15)
            .map(|_| hamming_data::point_at_distance(&mut rng, &q, 5))
            .collect();
        points.extend(hamming_data::uniform_hamming(&mut rng, 100, d));
        let queries: Vec<BitVector> = std::iter::once(q)
            .chain((0..15).map(|_| BitVector::random(&mut rng, d)))
            .collect();
        let fam = Power::new(BitSampling::new(d), 8);
        let measure = crate::measures::relative_hamming(d);
        let idx = RangeReportingIndex::build(&fam, measure, 0.05, 0.2, points, 40, &mut rng);
        let sequential: Vec<_> = queries.iter().map(|q| idx.query(q)).collect();
        for threads in [1usize, 4, 9] {
            assert_eq!(
                sequential,
                idx.query_batch_with_threads(&queries, threads),
                "threads = {threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn build_rejects_zero_repetitions() {
        let measure = crate::measures::relative_hamming(16);
        let _ = RangeReportingIndex::build(
            &BitSampling::new(16),
            measure,
            0.1,
            0.2,
            vec![BitVector::zeros(16)],
            0,
            &mut seeded(1),
        );
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn build_rejects_empty_points() {
        let measure = crate::measures::relative_hamming(16);
        let _ = RangeReportingIndex::build(
            &BitSampling::new(16),
            measure,
            0.1,
            0.2,
            Vec::<BitVector>::new(),
            4,
            &mut seeded(2),
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn build_rejects_non_finite_radius() {
        let measure = crate::measures::relative_hamming(16);
        let _ = RangeReportingIndex::build(
            &BitSampling::new(16),
            measure,
            0.1,
            f64::INFINITY,
            vec![BitVector::zeros(16)],
            4,
            &mut seeded(3),
        );
    }

    #[test]
    fn empty_truth_recall_is_one() {
        let d = 64;
        let mut rng = seeded(335);
        let points = hamming_data::uniform_hamming(&mut rng, 20, d);
        let q = BitVector::random(&mut rng, d);
        let measure = crate::measures::relative_hamming(d);
        let idx = RangeReportingIndex::build(
            &BitSampling::new(d),
            measure,
            0.01,
            0.05,
            points,
            5,
            &mut rng,
        );
        assert_eq!(idx.recall(&q, &[]), 1.0);
        assert_eq!(idx.radius(), 0.01);
        assert_eq!(idx.outer_radius(), 0.05);
    }
}
