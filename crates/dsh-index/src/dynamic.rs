//! Mutable segmented index: online insert/delete over the CSR substrate.
//!
//! Every structure in [`crate::table`] is build-once: serving a live
//! workload means ingesting and retiring points without paying a full
//! `O(n · L · k)` re-hash per change. [`DynamicIndex`] is the standard
//! production answer — an LSM-style segmented layout over the existing
//! flat storage:
//!
//! * a list of **sealed segments**, each holding one immutable flat CSR
//!   bucket table per repetition (the same layout, builder, and probe
//!   path as the static [`crate::HashTableIndex`]);
//! * one mutable **delta segment**: per-table `HashMap<u64, Vec<u32>>`
//!   buckets that absorb inserts at `L` hash evaluations per point;
//! * a **tombstone** bitset marking removed ids, consulted during
//!   candidate collection and dropped at compaction.
//!
//! All segments share one `L`-tuple of sampled `(h, g)` pairs and one
//! appendable [`AppendStore`] of rows; point ids are global, stable
//! handles (`insert` returns the id, `remove` takes it) that survive
//! every [`DynamicIndex::seal`] and [`DynamicIndex::compact`].
//!
//! # Compaction without re-hashing
//!
//! [`DynamicIndex::compact`] merges all sealed segments and the delta
//! into one fresh sealed segment, dropping tombstoned ids. The key trick:
//! a segment's CSR directory already stores every id's hash key, so the
//! merge recovers `(key, id)` pairs by walking directories (and the delta
//! maps) instead of re-evaluating `L` width-`k` hash functions per row —
//! compaction is a sort-and-sweep over existing keys, parallelized across
//! the `L` tables like the static build.
//!
//! # Parity with the static build
//!
//! Sampling consumes the caller's RNG exactly like
//! [`crate::HashTableIndex::build`], the initial bulk build fans out over
//! the same parallel per-table builder, and compaction's sorted
//! `(key, id)` sweep produces the same grouped-bucket layout the static
//! sort produces. Consequence (pinned by `tests/dynamic_parity.rs`): an
//! index grown by inserts and then compacted answers every query — ids,
//! order, and [`QueryStats`] — bit-identically to a static index built
//! from the same final point set, on every store backend and thread
//! count.

use crate::batch::{
    ensure_capacity, ensure_known, BatchError, BatchOp, WriteBatch, WriteError, WriteOutcome,
    MAX_POINTS,
};
use crate::parallel;
use crate::table::{
    CandidateBackend, CsrBuckets, QueryScratch, QueryStats, MIN_QUERIES_PER_WORKER,
};
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::{AppendStore, AsRow, PointStore};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// One immutable segment: a CSR bucket table per repetition, all covering
/// the same id set. Shared behind [`Arc`] so that cloning an index for an
/// immutable snapshot (the sharded serving layer's publication step)
/// bumps a reference count instead of copying bucket arrays.
struct SealedSegment {
    tables: Vec<CsrBuckets>,
}

/// The mutable write head: `HashMap` buckets per repetition, absorbing
/// inserts until the segment is sealed or compacted away.
#[derive(Clone)]
struct DeltaSegment {
    tables: Vec<HashMap<u64, Vec<u32>>>,
    rows: usize,
}

impl DeltaSegment {
    fn new(l: usize) -> Self {
        DeltaSegment {
            tables: (0..l).map(|_| HashMap::new()).collect(),
            rows: 0,
        }
    }

    fn clear(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
        self.rows = 0;
    }
}

/// Bitset over global point ids marking removed points (shared with the
/// dynamic [`crate::LinearScan`] baseline).
#[derive(Clone)]
pub(crate) struct Tombstones {
    bits: Vec<u64>,
    dead: usize,
}

impl Tombstones {
    pub(crate) fn new() -> Self {
        Tombstones {
            bits: Vec::new(),
            dead: 0,
        }
    }

    #[inline]
    pub(crate) fn is_dead(&self, id: usize) -> bool {
        self.bits
            .get(id / 64)
            .is_some_and(|b| (b >> (id % 64)) & 1 == 1)
    }

    /// Number of dead ids.
    pub(crate) fn dead(&self) -> usize {
        self.dead
    }

    /// Mark `id` dead; returns `false` when it already was.
    pub(crate) fn kill(&mut self, id: usize) -> bool {
        if self.is_dead(id) {
            return false;
        }
        let block = id / 64;
        if self.bits.len() <= block {
            self.bits.resize(block + 1, 0);
        }
        self.bits[block] |= 1u64 << (id % 64);
        self.dead += 1;
        true
    }
}

/// A mutable `L`-repetition DSH index: sealed CSR segments + a `HashMap`
/// delta segment + tombstones, over one appendable point store.
///
/// Supports [`DynamicIndex::insert`] (append a row, `L` hash
/// evaluations), [`DynamicIndex::remove`] (tombstone a global id),
/// [`DynamicIndex::seal`] (freeze the delta into a sealed CSR segment)
/// and [`DynamicIndex::compact`] (merge everything live into one fresh
/// segment without re-hashing). Queries fan out across all segments per
/// table, deduplicate through the generation-stamped [`QueryScratch`],
/// and skip tombstoned ids.
///
/// ```
/// use dsh_core::points::{BitStore, BitVector};
/// use dsh_hamming::BitSampling;
/// use dsh_index::DynamicIndex;
/// use dsh_math::rng::seeded;
///
/// let d = 64;
/// let mut rng = seeded(7);
/// // Start empty and grow online (a non-empty store bulk-builds the
/// // first sealed segment in parallel, exactly like the static index).
/// let mut idx = DynamicIndex::build(&BitSampling::new(d), BitStore::with_dim(d), 8, &mut rng);
/// let q = BitVector::random(&mut rng, d);
/// let id = idx.insert(&q).unwrap();
/// assert!(idx.candidates(&q, None).0.contains(&id));
///
/// idx.remove(id).unwrap();
/// assert!(!idx.candidates(&q, None).0.contains(&id));
///
/// idx.compact(); // drop tombstoned ids from the bucket layout
/// assert_eq!(idx.len(), 0);
/// ```
pub struct DynamicIndex<S: AppendStore> {
    pairs: Vec<HasherPair<S::Row>>,
    sealed: Vec<Arc<SealedSegment>>,
    delta: DeltaSegment,
    store: S,
    tombstones: Tombstones,
}

// Manual impl: the builtin derive would also demand `S::Row: Clone`,
// which unsized rows like `[u64]` cannot satisfy; cloning the pairs only
// bumps `Arc`s.
impl<S: AppendStore + Clone> Clone for DynamicIndex<S> {
    fn clone(&self) -> Self {
        DynamicIndex {
            pairs: self.pairs.clone(),
            sealed: self.sealed.clone(),
            delta: self.delta.clone(),
            store: self.store.clone(),
            tombstones: self.tombstones.clone(),
        }
    }
}

impl<S: AppendStore> DynamicIndex<S> {
    /// Build with `l` independently sampled `(h, g)` pairs over an initial
    /// point set (which may be empty — the "start from nothing" case).
    /// Non-empty initial points become the first sealed segment, built in
    /// parallel exactly like [`crate::HashTableIndex::build`]; the RNG
    /// stream consumed is identical, so a dynamic and a static index built
    /// from the same seed share their hash functions.
    pub fn build(
        family: &(impl DshFamily<S::Row> + ?Sized),
        points: S,
        l: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        Self::build_with_threads(family, points, l, rng, parallel::available_threads())
    }

    /// [`DynamicIndex::build`] with an explicit worker-thread count (the
    /// built index does not depend on it).
    pub fn build_with_threads(
        family: &(impl DshFamily<S::Row> + ?Sized),
        points: S,
        l: usize,
        rng: &mut dyn Rng,
        threads: usize,
    ) -> Self {
        // lint: allow(panic) — build-time parameter validation, not on the query path
        assert!(l >= 1, "need at least one repetition");
        let pairs: Vec<HasherPair<S::Row>> = (0..l).map(|_| family.sample(rng)).collect();
        Self::with_pairs(pairs, points, threads)
    }

    /// Build over already-sampled `(h, g)` pairs — the seam the sharded
    /// serving layer uses to give every shard the *same* hash functions
    /// (one sequential sampling pass, `N` shard indexes), which is what
    /// makes a sharded index bit-compatible with an unsharded one.
    pub(crate) fn with_pairs(pairs: Vec<HasherPair<S::Row>>, points: S, threads: usize) -> Self {
        // lint: allow(panic) — build-time parameter validation, not on the query path
        assert!(!pairs.is_empty(), "need at least one repetition");
        // lint: allow(panic) — build-time capacity check, not on the query path
        assert!(
            points.len() <= MAX_POINTS,
            "point count exceeds the u32 point-id capacity"
        );
        let sealed = if points.is_empty() {
            Vec::new()
        } else {
            let points_ref = &points;
            let tables = parallel::map_items(&pairs, threads, |_, pair| {
                let hashes: Vec<u64> = (0..points_ref.len())
                    .map(|i| pair.data.hash(points_ref.row(i)))
                    .collect();
                CsrBuckets::build(&hashes)
            });
            vec![Arc::new(SealedSegment { tables })]
        };
        DynamicIndex {
            delta: DeltaSegment::new(pairs.len()),
            pairs,
            sealed,
            store: points,
            tombstones: Tombstones::new(),
        }
    }

    /// Number of repetitions `L`.
    pub fn repetitions(&self) -> usize {
        self.pairs.len()
    }

    /// Number of **live** points (inserted and not removed).
    pub fn len(&self) -> usize {
        self.store.len() - self.tombstones.dead()
    }

    /// True when no live points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the largest id ever assigned (the id-space size; removed
    /// ids keep their slot, so this only grows).
    pub fn id_bound(&self) -> usize {
        self.store.len()
    }

    /// Whether `id` has been inserted and not removed.
    pub fn is_live(&self, id: usize) -> bool {
        id < self.store.len() && !self.tombstones.is_dead(id)
    }

    /// Iterate over the live ids in increasing order.
    pub fn live_ids(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.store.len()).filter(|&i| !self.tombstones.is_dead(i))
    }

    /// Number of sealed segments currently probed per table.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Number of points sitting in the mutable delta segment.
    pub fn delta_rows(&self) -> usize {
        self.delta.rows
    }

    /// Number of removed (tombstoned) ids not yet dropped by compaction
    /// of every segment that referenced them.
    pub fn removed(&self) -> usize {
        self.tombstones.dead()
    }

    /// Borrow the row of point `id` (rows remain addressable after
    /// removal; the store is append-only).
    pub fn point(&self, id: usize) -> &S::Row {
        self.store.row(id)
    }

    /// The underlying point store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// A query scratch buffer sized for this index's **current** id
    /// space. Inserting grows the id space, so a scratch taken before an
    /// insert is rejected (loudly) by the query paths afterwards.
    pub fn new_scratch(&self) -> QueryScratch {
        QueryScratch::new(self.store.len())
    }

    /// Insert a point (an owned point, a store row view, or a raw row),
    /// returning its global id. Costs one row append plus `L` hash
    /// evaluations into the delta segment's `HashMap` buckets. Rejects
    /// with [`WriteError::CapacityExceeded`] when the id space is full
    /// (`id_bound == MAX_POINTS`), leaving the index untouched.
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        ensure_capacity(self.store.len(), 1)?;
        Ok(self.insert_row(p.as_row()))
    }

    /// Row-level [`DynamicIndex::insert`] — the seam the batched write
    /// paths (and the sharded layer) use to insert pre-validated rows
    /// borrowed from another store without an `AsRow` detour. Callers
    /// must have checked capacity (see `ensure_capacity`).
    pub(crate) fn insert_row(&mut self, row: &S::Row) -> usize {
        let id = self.store.len();
        debug_assert!(id < MAX_POINTS, "caller skipped the capacity check");
        self.store.push_row(row);
        let row = self.store.row(id);
        for (pair, table) in self.pairs.iter().zip(&mut self.delta.tables) {
            table
                .entry(pair.data.hash(row))
                .or_default()
                .push(id as u32);
        }
        self.delta.rows += 1;
        id
    }

    /// Remove point `id`: sets its tombstone bit, so candidate collection
    /// skips it immediately; the bucket entries (and the stored row) are
    /// reclaimed by the next [`DynamicIndex::compact`]. Returns
    /// `Ok(false)` when `id` was already removed, and rejects an id that
    /// was never assigned with [`WriteError::UnknownId`] — the same
    /// surface the group-commit path reports per batch.
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        ensure_known(id, self.store.len())?;
        Ok(self.tombstones.kill(id))
    }

    /// [`DynamicIndex::remove`] for ids the caller has already bounds
    /// checked — the seam the sharded layer uses after validating whole
    /// batches against its global id space.
    pub(crate) fn remove_unchecked(&mut self, id: usize) -> bool {
        debug_assert!(id < self.store.len(), "caller skipped the id check");
        self.tombstones.kill(id)
    }

    /// An empty [`WriteBatch`] staging rows of this index's shape, for
    /// [`DynamicIndex::apply_batch`].
    pub fn new_batch(&self) -> WriteBatch<S> {
        WriteBatch::new(self.store.empty_like())
    }

    /// Apply a staged batch of inserts and removes in order. The whole
    /// batch is validated first: an out-of-range remove anywhere in it
    /// (against the id bound as it would stand at that op) rejects the
    /// batch with a descriptive [`BatchError`] and leaves the index
    /// untouched — no partial application. On success the outcomes line
    /// up with the batch's ops and equal what per-op calls would have
    /// returned; the resulting index is bit-identical to the per-op
    /// replay.
    pub fn apply_batch<BS>(
        &mut self,
        batch: &WriteBatch<BS>,
    ) -> Result<Vec<WriteOutcome>, BatchError>
    where
        BS: AppendStore<Row = S::Row>,
    {
        batch.validate(self.store.len())?;
        self.store.reserve_rows(batch.inserts());
        let mut outcomes = Vec::with_capacity(batch.len());
        for op in batch.ops() {
            match *op {
                BatchOp::Insert(slot) => {
                    outcomes.push(WriteOutcome::Inserted(self.insert_row(batch.row(slot))));
                }
                BatchOp::Remove(id) => {
                    outcomes.push(WriteOutcome::Removed(self.tombstones.kill(id as usize)));
                }
            }
        }
        Ok(outcomes)
    }

    /// Insert every row of `points` in order, returning the assigned
    /// ids — the batched convenience form of [`DynamicIndex::insert`]
    /// (one up-front capacity check and store reservation). A batch
    /// that would overflow the id space is rejected whole with
    /// [`WriteError::CapacityExceeded`]; nothing is applied.
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        ensure_capacity(self.store.len(), points.len())?;
        self.store.reserve_rows(points.len());
        Ok((0..points.len())
            .map(|i| self.insert_row(points.row(i)))
            .collect())
    }

    /// Remove every id in `ids` in order, returning the per-id results
    /// ([`DynamicIndex::remove`] semantics, including `false` for
    /// already-removed ids). The whole batch is validated first: any
    /// never-assigned id rejects it with [`WriteError::UnknownId`] and
    /// nothing is applied.
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        let bound = self.store.len();
        for &id in ids {
            ensure_known(id, bound)?;
        }
        Ok(ids.iter().map(|&id| self.tombstones.kill(id)).collect())
    }

    /// Freeze the delta segment into a new sealed CSR segment (tombstoned
    /// ids are dropped on the way). Sealing bounds the `HashMap` probe
    /// cost of a hot write head without paying a full merge; a no-op when
    /// the delta holds no live ids. The per-table sort-and-sweeps fan out
    /// across [`parallel::available_threads`] workers, like
    /// [`DynamicIndex::compact`].
    pub fn seal(&mut self) {
        self.seal_with_threads(parallel::available_threads());
    }

    /// [`DynamicIndex::seal`] with an explicit worker-thread count (the
    /// resulting layout does not depend on it).
    pub fn seal_with_threads(&mut self, threads: usize) {
        if self.delta.rows == 0 {
            return;
        }
        let tombstones = &self.tombstones;
        let tables: Vec<CsrBuckets> = parallel::map_items(&self.delta.tables, threads, |_, m| {
            let pairs: Vec<(u64, u32)> = m
                .iter()
                .flat_map(|(&key, ids)| {
                    ids.iter()
                        .filter(|&&i| !tombstones.is_dead(i as usize))
                        .map(move |&i| (key, i))
                })
                .collect();
            CsrBuckets::build_from_pairs(pairs)
        });
        if tables.first().map_or(0, CsrBuckets::num_ids) > 0 {
            self.sealed.push(Arc::new(SealedSegment { tables }));
        }
        self.delta.clear();
    }

    /// Merge every sealed segment and the delta into one fresh sealed
    /// segment, dropping tombstoned ids from the bucket layout.
    ///
    /// No hash function is re-evaluated: each table's `(key, id)` pairs
    /// are recovered from the existing segment directories and delta maps,
    /// then rebuilt with the same sort-and-sweep the static builder uses,
    /// fanned out across [`parallel::available_threads`] workers (one
    /// table per work item). Afterwards the index probes one segment per
    /// table — the exact layout a static build over the live point set
    /// would produce.
    pub fn compact(&mut self) {
        self.compact_with_threads(parallel::available_threads());
    }

    /// [`DynamicIndex::compact`] with an explicit worker-thread count
    /// (the resulting layout does not depend on it).
    pub fn compact_with_threads(&mut self, threads: usize) {
        // Nothing sealed and nothing buffered: the merge would rebuild
        // the empty layout it started from. Skip the worker fan-out (and
        // let the sharded layer skip its publication) instead.
        if self.sealed.is_empty() && self.delta.rows == 0 {
            return;
        }
        let table_ids: Vec<usize> = (0..self.pairs.len()).collect();
        let sealed = &self.sealed;
        let delta = &self.delta;
        let tombstones = &self.tombstones;
        let tables: Vec<CsrBuckets> = parallel::map_items(&table_ids, threads, |_, &j| {
            let mut pairs: Vec<(u64, u32)> = Vec::new();
            for seg in sealed {
                for (key, ids) in seg.tables[j].entries() {
                    pairs.extend(
                        ids.iter()
                            .filter(|&&i| !tombstones.is_dead(i as usize))
                            .map(|&i| (key, i)),
                    );
                }
            }
            for (&key, ids) in &delta.tables[j] {
                pairs.extend(
                    ids.iter()
                        .filter(|&&i| !tombstones.is_dead(i as usize))
                        .map(|&i| (key, i)),
                );
            }
            CsrBuckets::build_from_pairs(pairs)
        });
        self.sealed = if tables.first().map_or(0, CsrBuckets::num_ids) == 0 {
            Vec::new()
        } else {
            vec![Arc::new(SealedSegment { tables })]
        };
        self.delta.clear();
    }

    // -----------------------------------------------------------------
    // Crate-internal seams for the sharded serving layer (`crate::shard`):
    // the sharded query path probes each shard's physical buckets itself
    // so it can merge entries across shards in ascending-global-id order
    // (reproducing the unsharded bucket exactly).
    // -----------------------------------------------------------------

    /// The sampled `(h, g)` pairs, in repetition order.
    pub(crate) fn pairs(&self) -> &[HasherPair<S::Row>] {
        &self.pairs
    }

    /// The bucket of sealed segment `seg`, table `j`, under `key`.
    pub(crate) fn sealed_bucket(&self, seg: usize, j: usize, key: u64) -> &[u32] {
        self.sealed[seg].tables[j].bucket(key)
    }

    /// The delta-segment bucket of table `j` under `key`.
    pub(crate) fn delta_bucket(&self, j: usize, key: u64) -> &[u32] {
        self.delta.tables[j].get(&key).map_or(&[], Vec::as_slice)
    }

    /// Whether the delta segment holds at least one live (non-tombstoned)
    /// row — i.e. whether [`DynamicIndex::seal`] would publish a segment.
    pub(crate) fn delta_has_live_rows(&self) -> bool {
        let bound = self.store.len();
        (bound - self.delta.rows..bound).any(|id| !self.tombstones.is_dead(id))
    }

    /// Mutable access to the backing store (the sharded layer freezes a
    /// `ChunkedStore` tail after sealing, so snapshots stay cheap).
    pub(crate) fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Retrieve query candidates, fanning each of the `L` tables out
    /// across every segment (sealed in creation order, then the delta),
    /// stopping once `retrieval_limit` raw entries have been pulled.
    /// Returns distinct live candidate ids in retrieval order; tombstoned
    /// entries are skipped without counting against the limit.
    pub fn candidates<Q>(&self, q: &Q, retrieval_limit: Option<usize>) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.candidates_with(q, retrieval_limit, &mut self.new_scratch())
    }

    /// [`DynamicIndex::candidates`] against a caller-provided scratch
    /// buffer (from [`DynamicIndex::new_scratch`], taken after the last
    /// insert).
    pub fn candidates_with<Q>(
        &self,
        q: &Q,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.candidates_row(q.as_row(), retrieval_limit, scratch)
    }

    pub(crate) fn candidates_row(
        &self,
        q: &S::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats) {
        // lint: allow(panic) — contract: scratch must come from this index's new_scratch
        assert_eq!(
            scratch.len(),
            self.store.len(),
            "scratch buffer sized for a different index"
        );
        let generation = scratch.begin();
        let limit = retrieval_limit.unwrap_or(usize::MAX);
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        'tables: for (j, pair) in self.pairs.iter().enumerate() {
            let key = pair.query.hash(q);
            for seg in &self.sealed {
                let part = self.consume_bucket(
                    seg.tables[j].bucket(key),
                    limit - stats.candidates_retrieved,
                    scratch,
                    generation,
                    &mut out,
                );
                stats.merge(&part);
                if stats.candidates_retrieved >= limit {
                    break 'tables;
                }
            }
            if self.delta.rows > 0 {
                let part = self.consume_bucket(
                    self.delta_bucket(j, key),
                    limit - stats.candidates_retrieved,
                    scratch,
                    generation,
                    &mut out,
                );
                stats.merge(&part);
                if stats.candidates_retrieved >= limit {
                    break 'tables;
                }
            }
        }
        stats.distinct_candidates = out.len();
        (out, stats)
    }

    /// Pull up to `remaining` live entries from one physical bucket,
    /// returning the per-probe partial stats (merged by the caller — see
    /// [`QueryStats::merge`] for why `distinct_candidates` is left to the
    /// end of the whole query).
    // lint: hot
    fn consume_bucket(
        &self,
        bucket: &[u32],
        remaining: usize,
        scratch: &mut QueryScratch,
        generation: u8,
        out: &mut Vec<usize>,
    ) -> QueryStats {
        let mut part = QueryStats {
            tables_probed: 1,
            ..QueryStats::default()
        };
        for (j, &i) in bucket.iter().enumerate() {
            if part.candidates_retrieved >= remaining {
                break;
            }
            if let Some(&ahead) = bucket.get(j + crate::table::STAMP_AHEAD) {
                scratch.prefetch(ahead as usize);
            }
            let i = i as usize;
            if self.tombstones.is_dead(i) {
                continue;
            }
            if scratch.visit(i, generation) {
                out.push(i);
            } else {
                part.duplicates += 1;
            }
            part.candidates_retrieved += 1;
        }
        part
    }

    /// Run [`DynamicIndex::candidates`] for a batch of queries, fanned
    /// out across [`parallel::available_threads`] workers with one scratch
    /// buffer per worker. Results line up with `queries` and are identical
    /// to a query-at-a-time loop.
    pub fn candidates_batch<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.candidates_batch_with_threads(queries, retrieval_limit, parallel::available_threads())
    }

    /// [`DynamicIndex::candidates_batch`] with an explicit worker-thread
    /// count (the output does not depend on it).
    pub fn candidates_batch_with_threads<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
        threads: usize,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        let threads = parallel::capped_threads(queries.len(), threads, MIN_QUERIES_PER_WORKER);
        parallel::map_index_chunks(queries.len(), threads, |range| {
            let mut scratch = self.new_scratch();
            range
                .map(|i| self.candidates_row(queries.row(i), retrieval_limit, &mut scratch))
                .collect()
        })
    }
}

impl<S: AppendStore> CandidateBackend for DynamicIndex<S> {
    type Row = S::Row;

    fn repetitions(&self) -> usize {
        DynamicIndex::repetitions(self)
    }

    fn indexed_len(&self) -> usize {
        self.id_bound()
    }

    fn point(&self, i: usize) -> &S::Row {
        DynamicIndex::point(self, i)
    }

    #[inline]
    fn prefetch_point(&self, i: usize) {
        self.store.prefetch_row(i);
    }

    fn new_scratch(&self) -> QueryScratch {
        DynamicIndex::new_scratch(self)
    }

    fn candidates_row(
        &self,
        q: &S::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats) {
        DynamicIndex::candidates_row(self, q, retrieval_limit, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::HashTableIndex;
    use dsh_core::points::{BitStore, BitVector};
    use dsh_hamming::BitSampling;
    use dsh_math::rng::seeded;

    fn dataset(seed: u64, d: usize, n: usize) -> Vec<BitVector> {
        let mut rng = seeded(seed);
        (0..n).map(|_| BitVector::random(&mut rng, d)).collect()
    }

    fn store_of(points: &[BitVector], d: usize) -> BitStore {
        let mut s = BitStore::with_dim(d);
        for p in points {
            s.push(p);
        }
        s
    }

    #[test]
    fn insert_then_compact_matches_static_build() {
        let d = 64;
        let points = dataset(0xD1, d, 150);
        let queries = dataset(0xD2, d, 12);
        let l = 10;
        let static_idx = HashTableIndex::build(
            &BitSampling::new(d),
            store_of(&points, d),
            l,
            &mut seeded(0xD3),
        );
        let mut dyn_idx = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            l,
            &mut seeded(0xD3),
        );
        for p in &points {
            dyn_idx.insert(p).unwrap();
        }
        dyn_idx.compact();
        assert_eq!(dyn_idx.sealed_segments(), 1);
        assert_eq!(dyn_idx.delta_rows(), 0);
        for q in &queries {
            for limit in [None, Some(7)] {
                assert_eq!(
                    static_idx.candidates(q, limit),
                    dyn_idx.candidates(q, limit),
                    "limit {limit:?}"
                );
            }
        }
    }

    #[test]
    fn initial_bulk_build_matches_static_build() {
        let d = 64;
        let points = dataset(0xD4, d, 120);
        let queries = dataset(0xD5, d, 8);
        let static_idx = HashTableIndex::build(
            &BitSampling::new(d),
            store_of(&points, d),
            6,
            &mut seeded(0xD6),
        );
        let dyn_idx = DynamicIndex::build(
            &BitSampling::new(d),
            store_of(&points, d),
            6,
            &mut seeded(0xD6),
        );
        assert_eq!(dyn_idx.sealed_segments(), 1);
        for q in &queries {
            assert_eq!(static_idx.candidates(q, None), dyn_idx.candidates(q, None));
        }
    }

    #[test]
    fn removed_points_disappear_immediately_and_stay_gone() {
        let d = 32;
        let points = dataset(0xD7, d, 40);
        let mut idx = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            8,
            &mut seeded(0xD8),
        );
        let ids: Vec<usize> = points.iter().map(|p| idx.insert(p).unwrap()).collect();
        assert_eq!(idx.len(), 40);
        // Identical point always collides under a symmetric family.
        let victim = ids[13];
        assert!(idx.candidates(&points[13], None).0.contains(&victim));
        assert!(idx.remove(victim).unwrap());
        assert!(
            !idx.remove(victim).unwrap(),
            "double remove must report Ok(false)"
        );
        assert_eq!(idx.len(), 39);
        assert!(!idx.is_live(victim));
        assert!(!idx.candidates(&points[13], None).0.contains(&victim));
        // Still gone after seal and compact, and live count is stable.
        idx.seal();
        assert!(!idx.candidates(&points[13], None).0.contains(&victim));
        idx.compact();
        assert!(!idx.candidates(&points[13], None).0.contains(&victim));
        assert_eq!(idx.len(), 39);
        assert_eq!(idx.live_ids().count(), 39);
        assert_eq!(idx.removed(), 1);
    }

    #[test]
    fn seal_creates_segments_and_queries_span_them() {
        let d = 64;
        let points = dataset(0xD9, d, 90);
        let mut idx = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            6,
            &mut seeded(0xDA),
        );
        for (i, p) in points.iter().enumerate() {
            idx.insert(p).unwrap();
            if i % 30 == 29 {
                idx.seal();
            }
        }
        assert_eq!(idx.sealed_segments(), 3);
        assert_eq!(idx.delta_rows(), 0);
        // Every identical point is found regardless of its segment.
        for (i, p) in points.iter().enumerate() {
            assert!(idx.candidates(p, None).0.contains(&i), "point {i}");
        }
    }

    #[test]
    fn candidate_set_is_segment_layout_invariant() {
        // The same live point set must yield the same distinct-candidate
        // *set* whatever the segment layout (order may differ).
        let d = 64;
        let points = dataset(0xDB, d, 80);
        let queries = dataset(0xDC, d, 10);
        let mut layouts = Vec::new();
        for seal_every in [usize::MAX, 11, 25] {
            let mut idx = DynamicIndex::build(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                7,
                &mut seeded(0xDD),
            );
            for (i, p) in points.iter().enumerate() {
                idx.insert(p).unwrap();
                if (i + 1) % seal_every == 0 {
                    idx.seal();
                }
            }
            let sets: Vec<Vec<usize>> = queries
                .iter()
                .map(|q| {
                    let mut c = idx.candidates(q, None).0;
                    c.sort_unstable();
                    c
                })
                .collect();
            layouts.push(sets);
        }
        for other in &layouts[1..] {
            assert_eq!(&layouts[0], other);
        }
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let d = 64;
        let points = dataset(0xDE, d, 100);
        let queries = dataset(0xDF, d, 21);
        let mut idx = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            9,
            &mut seeded(0xE0),
        );
        for (i, p) in points.iter().enumerate() {
            idx.insert(p).unwrap();
            if i == 49 {
                idx.seal();
            }
            if i % 7 == 3 {
                idx.remove(i).unwrap();
            }
        }
        for limit in [None, Some(13)] {
            let sequential: Vec<_> = queries.iter().map(|q| idx.candidates(q, limit)).collect();
            for threads in [1usize, 3, 8] {
                assert_eq!(
                    sequential,
                    idx.candidates_batch_with_threads(&queries, limit, threads),
                    "threads {threads}, limit {limit:?}"
                );
            }
        }
    }

    #[test]
    fn compact_is_deterministic_in_thread_count() {
        let d = 64;
        let points = dataset(0xE1, d, 70);
        let queries = dataset(0xE2, d, 9);
        let mut answers = Vec::new();
        for threads in [1usize, 2, 4, 16] {
            let mut idx = DynamicIndex::build_with_threads(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                8,
                &mut seeded(0xE3),
                threads,
            );
            for (i, p) in points.iter().enumerate() {
                idx.insert(p).unwrap();
                if i == 30 {
                    idx.seal();
                }
            }
            idx.remove(5).unwrap();
            idx.compact_with_threads(threads);
            answers.push(
                queries
                    .iter()
                    .map(|q| idx.candidates(q, None))
                    .collect::<Vec<_>>(),
            );
        }
        for other in &answers[1..] {
            assert_eq!(&answers[0], other, "thread count changed the layout");
        }
    }

    #[test]
    fn empty_index_answers_and_compacts() {
        let d = 32;
        let mut idx = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            &mut seeded(0xE4),
        );
        assert!(idx.is_empty());
        assert_eq!(idx.sealed_segments(), 0);
        let q = BitVector::random(&mut seeded(0xE5), d);
        let (cands, stats) = idx.candidates(&q, None);
        assert!(cands.is_empty());
        assert_eq!(stats, QueryStats::default());
        idx.seal();
        idx.compact();
        assert!(idx.is_empty());
        // Remove everything ever inserted: compaction drops the segment.
        let id = idx.insert(&q).unwrap();
        idx.seal();
        idx.remove(id).unwrap();
        idx.compact();
        assert_eq!(idx.sealed_segments(), 0);
        assert_eq!(idx.id_bound(), 1);
    }

    #[test]
    #[should_panic(expected = "sized for a different index")]
    fn stale_scratch_after_insert_rejected() {
        let d = 32;
        let mut idx = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            2,
            &mut seeded(0xE6),
        );
        let q = BitVector::random(&mut seeded(0xE7), d);
        let mut scratch = idx.new_scratch();
        idx.insert(&q).unwrap();
        let _ = idx.candidates_with(&q, None, &mut scratch);
    }

    #[test]
    fn remove_of_unknown_id_is_a_recoverable_error() {
        let d = 32;
        let mut idx = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            2,
            &mut seeded(0xE8),
        );
        assert_eq!(
            idx.remove(0),
            Err(WriteError::UnknownId { id: 0, bound: 0 })
        );
        // The rejected write leaves the index fully usable.
        let q = BitVector::random(&mut seeded(0xE8), d);
        let id = idx.insert(&q).unwrap();
        assert_eq!(idx.remove(id), Ok(true));
        assert_eq!(
            idx.remove(id + 1),
            Err(WriteError::UnknownId { id: 1, bound: 1 })
        );
    }

    /// A test-only store that reports an inflated length without holding
    /// rows — the only practical way to park an index at the u32 id-space
    /// boundary without materializing 4B rows. It claims emptiness so the
    /// bulk build doesn't hash its phantom rows; every row reads as one
    /// zero block (enough for a `d <= 64` bit family).
    #[derive(Clone)]
    struct FakeHugeStore {
        claimed: usize,
    }

    impl dsh_core::points::PointStore for FakeHugeStore {
        type Row = [u64];

        fn len(&self) -> usize {
            self.claimed
        }

        fn is_empty(&self) -> bool {
            true // skip the bulk build over phantom rows
        }

        fn row(&self, _i: usize) -> &[u64] {
            &[0]
        }
    }

    impl AppendStore for FakeHugeStore {
        fn push_row(&mut self, _row: &[u64]) {
            self.claimed += 1;
        }

        fn empty_like(&self) -> Self {
            FakeHugeStore { claimed: 0 }
        }
    }

    /// The unified capacity bound at the exact boundary: an index may
    /// fill the id space to `MAX_POINTS`, and the first write past it is
    /// rejected — identically for `insert` and `insert_batch`.
    #[test]
    fn capacity_boundary_is_shared_by_both_insert_entry_points() {
        let pairs = vec![BitSampling::new(64).sample(&mut seeded(0xEF))];
        // One shy of the cap: exactly one more insert fits.
        let mut idx = DynamicIndex::with_pairs(
            pairs.clone(),
            FakeHugeStore {
                claimed: MAX_POINTS - 1,
            },
            1,
        );
        let row: &[u64] = &[];
        assert_eq!(idx.insert(row), Ok(MAX_POINTS - 1));
        assert_eq!(
            idx.insert(row),
            Err(WriteError::CapacityExceeded {
                id_bound: MAX_POINTS,
                additional: 1
            })
        );
        let two = FakeHugeStore { claimed: 2 };
        assert_eq!(
            idx.insert_batch(&two),
            Err(WriteError::CapacityExceeded {
                id_bound: MAX_POINTS,
                additional: 2
            })
        );
        let empty = FakeHugeStore { claimed: 0 };
        assert_eq!(idx.insert_batch(&empty), Ok(Vec::new()));
        // insert_batch admits a batch landing exactly on the bound …
        let mut idx = DynamicIndex::with_pairs(
            pairs.clone(),
            FakeHugeStore {
                claimed: MAX_POINTS - 2,
            },
            1,
        );
        assert_eq!(
            idx.insert_batch(&two),
            Ok(vec![MAX_POINTS - 2, MAX_POINTS - 1])
        );
        // … and the bulk build accepts the same count insert_batch does.
        let idx = DynamicIndex::with_pairs(
            pairs,
            FakeHugeStore {
                claimed: MAX_POINTS,
            },
            1,
        );
        assert_eq!(idx.id_bound(), MAX_POINTS);
    }

    /// `apply_batch` equals the per-op replay bit-for-bit; an invalid
    /// batch is rejected wholly, leaving the index untouched.
    #[test]
    fn apply_batch_matches_per_op_replay() {
        let d = 64;
        let points = dataset(0xE9, d, 30);
        let queries = dataset(0xEA, d, 6);
        let mut batched = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            6,
            &mut seeded(0xEB),
        );
        let mut per_op = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            6,
            &mut seeded(0xEB),
        );
        let mut batch = batched.new_batch();
        for p in &points[..12] {
            batch.insert(p);
        }
        batch.remove(4); // id assigned within this very batch
        batch.remove(4); // double-remove: outcome false
        for p in &points[12..] {
            batch.insert(p);
        }
        let outcomes = batched.apply_batch(&batch).expect("valid batch");

        let mut want = Vec::new();
        for p in &points[..12] {
            want.push(crate::WriteOutcome::Inserted(per_op.insert(p).unwrap()));
        }
        want.push(crate::WriteOutcome::Removed(per_op.remove(4).unwrap()));
        want.push(crate::WriteOutcome::Removed(per_op.remove(4).unwrap()));
        for p in &points[12..] {
            want.push(crate::WriteOutcome::Inserted(per_op.insert(p).unwrap()));
        }
        assert_eq!(outcomes, want);
        for q in &queries {
            assert_eq!(per_op.candidates(q, None), batched.candidates(q, None));
        }

        // Rejection path: nothing — not even the leading inserts — lands.
        let bound = batched.id_bound();
        let mut bad = batched.new_batch();
        bad.insert(&points[0]);
        bad.remove(bound + 1); // one past the running bound
        let err = batched.apply_batch(&bad).unwrap_err();
        assert_eq!(
            err,
            crate::BatchError::UnknownId {
                op_index: 1,
                id: bound + 1,
                bound: bound + 1
            }
        );
        assert_eq!(batched.id_bound(), bound, "partial application leaked");
        for q in &queries {
            assert_eq!(per_op.candidates(q, None), batched.candidates(q, None));
        }
    }

    /// The batched convenience wrappers equal their per-op loops.
    #[test]
    fn insert_and_remove_batch_match_per_op_loops() {
        let d = 64;
        let points = dataset(0xEC, d, 25);
        let queries = dataset(0xED, d, 5);
        let mut batched = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            5,
            &mut seeded(0xEE),
        );
        let mut per_op = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            5,
            &mut seeded(0xEE),
        );
        let ids = batched.insert_batch(&points).unwrap();
        let want: Vec<usize> = points.iter().map(|p| per_op.insert(p).unwrap()).collect();
        assert_eq!(ids, want);
        let victims = [2usize, 11, 2, 24];
        assert_eq!(
            batched.remove_batch(&victims).unwrap(),
            victims
                .iter()
                .map(|&id| per_op.remove(id).unwrap())
                .collect::<Vec<_>>()
        );
        for q in &queries {
            assert_eq!(per_op.candidates(q, None), batched.candidates(q, None));
        }
    }
}
