//! Classic `(r1, r2)`-approximate near neighbor search — the baseline
//! application of *decreasing* CPFs (Indyk–Motwani via Har-Peled et al.,
//! paper §1.2 "ρ-values").
//!
//! Given a family with CPF `f`, `p1 = f(r1)`, `p2 = f(r2)`: concatenate
//! `k = ceil(ln n / ln(1/p2))` functions so far points collide with
//! probability `<= 1/n`, and repeat `L ~ p1^{-k...}`-ish, concretely
//! `L = ceil(factor / p1^k)`, so near points are found with constant
//! probability. The exponent is `rho_plus = ln p1 / ln p2`: `L ~ n^rho`.
//!
//! This structure exists in the library both as the standard point of
//! comparison for the DSH applications (§6) and to exercise the same
//! `HashTableIndex` substrate with a symmetric family.

use crate::annulus::Measure;
use crate::table::{HashTableIndex, QueryStats};
use dsh_core::combinators::Power;
use dsh_core::family::DshFamily;
use rand::Rng;

/// Parameters derived from the CPF values at the two radii.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnParams {
    /// Concatenation width `k`.
    pub k: usize,
    /// Repetition count `L`.
    pub l: usize,
    /// The exponent `rho_plus = ln p1 / ln p2`.
    pub rho: f64,
}

/// Compute `(k, L, rho)` for dataset size `n` from `p1 = f(r1)`,
/// `p2 = f(r2)` and a success factor (>= 1 boosts the success probability).
pub fn ann_params(n: usize, p1: f64, p2: f64, factor: f64) -> AnnParams {
    assert!(n >= 2);
    assert!(0.0 < p2 && p2 < p1 && p1 < 1.0, "need 0 < p2 < p1 < 1");
    assert!(factor >= 1.0);
    let k = ((n as f64).ln() / (1.0 / p2).ln()).ceil().max(1.0) as usize;
    let l = (factor / p1.powi(k as i32)).ceil() as usize;
    AnnParams {
        k,
        l,
        rho: p1.ln() / p2.ln(),
    }
}

/// `(r1, r2)`-near-neighbor index: if some point is within `r1` of the
/// query, returns (w.c.p.) a point within `r2`.
pub struct NearNeighborIndex<P> {
    index: HashTableIndex<P>,
    measure: Measure<P>,
    r2: f64,
    params: AnnParams,
}

impl<P: 'static> NearNeighborIndex<P> {
    /// Build over `points` with the base (width-1) family `family` and the
    /// CPF values `p1 >= f(r1)`, `p2 <= f(r2)` at the target radii.
    #[allow(clippy::too_many_arguments)] // mirrors the theorem's parameter list
    pub fn build(
        family: &(impl DshFamily<P> + ?Sized),
        measure: Measure<P>,
        r2: f64,
        points: Vec<P>,
        p1: f64,
        p2: f64,
        factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        let params = ann_params(points.len().max(2), p1, p2, factor);
        let powered = Power::new(family, params.k);
        NearNeighborIndex {
            index: HashTableIndex::build(&powered, points, params.l, rng),
            measure,
            r2,
            params,
        }
    }

    /// The derived `(k, L, rho)`.
    pub fn params(&self) -> AnnParams {
        self.params
    }

    /// Return the first retrieved candidate within distance `r2`, stopping
    /// early after `3L` retrieved entries (the standard Markov cutoff).
    pub fn query(&self, q: &P) -> (Option<usize>, QueryStats) {
        let limit = 3 * self.index.repetitions();
        let (cands, mut stats) = self.index.candidates(q, Some(limit));
        for i in cands {
            stats.distance_computations += 1;
            if (self.measure)(self.index.point(i), q) <= self.r2 {
                return (Some(i), stats);
            }
        }
        (None, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::BitVector;
    use dsh_data::hamming_data;
    use dsh_hamming::BitSampling;
    use dsh_math::rng::seeded;

    #[test]
    fn params_formulae() {
        let p = ann_params(1024, 0.9, 0.5, 1.0);
        assert_eq!(p.k, 10); // ln 1024 / ln 2
        assert_eq!(p.l, (1.0f64 / 0.9f64.powi(10)).ceil() as usize);
        assert!((p.rho - 0.9f64.ln() / 0.5f64.ln()).abs() < 1e-12);
        // rho < 1: sublinear.
        assert!(p.rho < 1.0);
    }

    #[test]
    #[should_panic(expected = "need 0 < p2 < p1 < 1")]
    fn params_reject_bad_probabilities() {
        let _ = ann_params(100, 0.5, 0.9, 1.0);
    }

    #[test]
    fn finds_planted_near_neighbor() {
        let d = 256;
        let r1_rel = 0.05;
        let r2_rel = 0.25;
        let p1 = 1.0 - r1_rel;
        let p2 = 1.0 - r2_rel;
        let mut hits = 0;
        let runs = 20;
        for run in 0..runs {
            let mut rng = seeded(0xA221 + run);
            let inst = hamming_data::planted_hamming_instance(
                &mut rng,
                300,
                d,
                (r1_rel * d as f64) as usize,
            );
            let measure: Measure<BitVector> = Box::new(|x, y| x.relative_hamming(y));
            let idx = NearNeighborIndex::build(
                &BitSampling::new(d),
                measure,
                r2_rel,
                inst.points,
                p1,
                p2,
                2.0,
                &mut rng,
            );
            if let (Some(i), _) = idx.query(&inst.query) {
                assert!(idx.index.point(i).relative_hamming(&inst.query) <= r2_rel);
                hits += 1;
            }
        }
        assert!(hits * 4 >= runs * 3, "hit rate {hits}/{runs} too low");
    }

    #[test]
    fn query_respects_early_termination() {
        let d = 32;
        // Degenerate data: all identical points far from the query.
        let mut rng = seeded(0xA229);
        let points: Vec<BitVector> = (0..500).map(|_| BitVector::zeros(d)).collect();
        let q = BitVector::ones(d);
        let measure: Measure<BitVector> = Box::new(|x, y| x.relative_hamming(y));
        let idx = NearNeighborIndex::build(
            &BitSampling::new(d),
            measure,
            0.1,
            points,
            0.9,
            0.5,
            1.0,
            &mut rng,
        );
        let (hit, stats) = idx.query(&q);
        assert!(hit.is_none());
        assert!(stats.candidates_retrieved <= 3 * idx.params().l);
    }
}
