//! Classic `(r1, r2)`-approximate near neighbor search — the baseline
//! application of *decreasing* CPFs (Indyk–Motwani via Har-Peled et al.,
//! paper §1.2 "ρ-values").
//!
//! Given a family with CPF `f`, `p1 = f(r1)`, `p2 = f(r2)`: concatenate
//! `k = ceil(ln n / ln(1/p2))` functions so far points collide with
//! probability `<= 1/n`, and repeat `L ~ p1^{-k...}`-ish, concretely
//! `L = ceil(factor / p1^k)`, so near points are found with constant
//! probability. The exponent is `rho_plus = ln p1 / ln p2`: `L ~ n^rho`.
//!
//! This structure exists in the library both as the standard point of
//! comparison for the DSH applications (§6) and to exercise the same
//! `HashTableIndex` substrate with a symmetric family.

use crate::annulus::Measure;
use crate::batch::WriteError;
use crate::dynamic::DynamicIndex;
use crate::parallel;
use crate::shard::ShardedIndex;
use crate::table::{CandidateBackend, HashTableIndex, QueryStats};
use dsh_core::combinators::Power;
use dsh_core::family::DshFamily;
use dsh_core::points::{AppendStore, AsRow, PointStore};
use rand::Rng;

/// Hard ceiling on the repetition count `L` any parameter derivation in
/// this crate may request.
///
/// The repetition formulae all have the shape `L = ceil(factor / p^k)`;
/// for tiny `p` (or large `k`) the true value can exceed every realistic
/// memory budget — and the naive floating-point evaluation can even
/// underflow `p^k` to `0` and saturate the cast. Rather than let a
/// pathological parameter choice request `usize::MAX` tables, every
/// derivation clamps to this bound (2^22 ≈ 4.2M repetitions: already far
/// past anything buildable, but finite and allocation-safe).
pub const MAX_REPETITIONS: usize = 1 << 22;

/// Repetition count `ceil(factor / p^k)`, clamped to
/// [`MAX_REPETITIONS`] and computed without intermediate underflow.
///
/// `p.powi(k)` underflows to `0.0` once `k * ln(1/p)` passes ~745, which
/// used to turn the division into `inf` and the cast into a saturated,
/// nonsensical `usize::MAX`. When the direct power leaves the normal
/// range this falls back to log-space (`exp(ln factor - k ln p)`), and
/// any non-finite or over-budget result clamps to the ceiling.
pub(crate) fn repetition_count(factor: f64, p: f64, k: usize) -> usize {
    debug_assert!(0.0 < p && p <= 1.0, "collision probability p = {p}");
    debug_assert!(factor > 0.0, "repetition factor = {factor}");
    let pk = p.powi(k as i32);
    let l = if pk.is_normal() {
        (factor / pk).ceil()
    } else {
        (factor.ln() - k as f64 * p.ln()).exp().ceil()
    };
    if l.is_finite() && l < MAX_REPETITIONS as f64 {
        (l as usize).max(1)
    } else {
        MAX_REPETITIONS
    }
}

/// Parameters derived from the CPF values at the two radii.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnParams {
    /// Concatenation width `k`.
    pub k: usize,
    /// Repetition count `L`.
    pub l: usize,
    /// The exponent `rho_plus = ln p1 / ln p2`.
    pub rho: f64,
}

/// Compute `(k, L, rho)` for dataset size `n` from `p1 = f(r1)`,
/// `p2 = f(r2)` and a success factor (>= 1 boosts the success
/// probability). `L` is computed in log-space when `p1^k` underflows and
/// is clamped to [`MAX_REPETITIONS`].
pub fn ann_params(n: usize, p1: f64, p2: f64, factor: f64) -> AnnParams {
    assert!(n >= 2);
    assert!(0.0 < p2 && p2 < p1 && p1 < 1.0, "need 0 < p2 < p1 < 1");
    assert!(factor >= 1.0);
    let k = ((n as f64).ln() / (1.0 / p2).ln()).ceil().max(1.0) as usize;
    AnnParams {
        k,
        l: repetition_count(factor, p1, k),
        rho: p1.ln() / p2.ln(),
    }
}

/// `(r1, r2)`-near-neighbor index: if some point is within `r1` of the
/// query, returns (w.c.p.) a point within `r2`.
///
/// Generic over the candidate backend `B`: the static
/// [`HashTableIndex`] (the default) or the segmented [`DynamicIndex`]
/// (via [`NearNeighborIndex::build_dynamic`]) for online insert/remove.
pub struct NearNeighborIndex<S: PointStore, B: CandidateBackend<Row = S::Row> = HashTableIndex<S>> {
    index: B,
    measure: Measure<S::Row>,
    r2: f64,
    params: AnnParams,
}

impl<S: PointStore> NearNeighborIndex<S> {
    /// Build over `points` with the base (width-1) family `family` and the
    /// CPF values `p1 >= f(r1)`, `p2 <= f(r2)` at the target radii.
    #[allow(clippy::too_many_arguments)] // mirrors the theorem's parameter list
    pub fn build(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        r2: f64,
        points: S,
        p1: f64,
        p2: f64,
        factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            !points.is_empty(),
            "NearNeighborIndex: cannot build over an empty point set"
        );
        assert!(
            r2.is_finite() && r2 >= 0.0,
            "NearNeighborIndex: target radius r2 = {r2} must be finite and non-negative"
        );
        let params = ann_params(points.len().max(2), p1, p2, factor);
        let powered = Power::new(family, params.k);
        NearNeighborIndex {
            index: HashTableIndex::build(&powered, points, params.l, rng),
            measure,
            r2,
            params,
        }
    }
}

impl<S: AppendStore> NearNeighborIndex<S, DynamicIndex<S>> {
    /// Build over a [`DynamicIndex`] backend: same parameters as
    /// [`NearNeighborIndex::build`], except the `(k, L)` derivation uses
    /// `expected_n` (the anticipated live set size — a dynamic index may
    /// start empty, so the derivation cannot read `points.len()`). The
    /// returned index supports [`NearNeighborIndex::insert`] /
    /// [`NearNeighborIndex::remove`] / [`NearNeighborIndex::compact`];
    /// grown-then-compacted indexes answer queries identically to a
    /// static build over the same final point set.
    #[allow(clippy::too_many_arguments)] // mirrors the theorem's parameter list
    pub fn build_dynamic(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        r2: f64,
        points: S,
        expected_n: usize,
        p1: f64,
        p2: f64,
        factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            r2.is_finite() && r2 >= 0.0,
            "NearNeighborIndex: target radius r2 = {r2} must be finite and non-negative"
        );
        let params = ann_params(expected_n.max(2), p1, p2, factor);
        let powered = Power::new(family, params.k);
        NearNeighborIndex {
            index: DynamicIndex::build(&powered, points, params.l, rng),
            measure,
            r2,
            params,
        }
    }

    /// Insert a point into the backing [`DynamicIndex`], returning its id
    /// (a full id space rejects with the backend's [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.index.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.index.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.index.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.index.remove_batch(ids)
    }

    /// Freeze the delta segment; see [`DynamicIndex::seal`].
    pub fn seal(&mut self) {
        self.index.seal();
    }

    /// Merge all segments, dropping tombstones; see
    /// [`DynamicIndex::compact`].
    pub fn compact(&mut self) {
        self.index.compact();
    }
}

impl<S: AppendStore + Clone> NearNeighborIndex<S, ShardedIndex<S>> {
    /// Build over a [`ShardedIndex`] backend: same parameters as
    /// [`NearNeighborIndex::build_dynamic`] plus the shard count. Queries
    /// fan out across shards and answer bit-identically to the
    /// [`DynamicIndex`]-backed build; the backend (via
    /// [`NearNeighborIndex::backend`]) additionally hands out wait-free
    /// snapshots for readers concurrent with writes.
    #[allow(clippy::too_many_arguments)] // mirrors the theorem's parameter list
    pub fn build_sharded(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        r2: f64,
        points: S,
        num_shards: usize,
        expected_n: usize,
        p1: f64,
        p2: f64,
        factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            r2.is_finite() && r2 >= 0.0,
            "NearNeighborIndex: target radius r2 = {r2} must be finite and non-negative"
        );
        let params = ann_params(expected_n.max(2), p1, p2, factor);
        let powered = Power::new(family, params.k);
        NearNeighborIndex {
            index: ShardedIndex::build(&powered, points, params.l, num_shards, rng),
            measure,
            r2,
            params,
        }
    }

    /// Insert a point into the backing [`ShardedIndex`], returning its
    /// global id (a full id space rejects with the backend's
    /// [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.index.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.index.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.index.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.index.remove_batch(ids)
    }

    /// Freeze every shard's delta segment; see [`ShardedIndex::seal`].
    pub fn seal(&mut self) {
        self.index.seal();
    }

    /// Compact every shard, dropping tombstones; see
    /// [`ShardedIndex::compact`].
    pub fn compact(&mut self) {
        self.index.compact();
    }
}

impl<S: PointStore, B: CandidateBackend<Row = S::Row>> NearNeighborIndex<S, B> {
    /// The derived `(k, L, rho)`.
    pub fn params(&self) -> AnnParams {
        self.params
    }

    /// The candidate backend (e.g. to inspect a [`DynamicIndex`]'s
    /// segment layout or live count).
    pub fn backend(&self) -> &B {
        &self.index
    }

    /// Mutable access to the candidate backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.index
    }

    /// Return the first retrieved candidate within distance `r2`, stopping
    /// early after `3L` retrieved entries (the standard Markov cutoff).
    pub fn query<Q>(&self, q: &Q) -> (Option<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        let q = q.as_row();
        let (cands, mut stats) = self.index.candidates_row(
            q,
            Some(self.retrieval_limit()),
            &mut self.index.new_scratch(),
        );
        let hit = self.verify(&cands, q, &mut stats);
        (hit, stats)
    }

    /// Run [`NearNeighborIndex::query`] for a batch of queries, fanned out
    /// across worker threads with scratch reuse. Results line up with
    /// `queries` and are identical to a query-at-a-time loop.
    pub fn query_batch<QS>(&self, queries: &QS) -> Vec<(Option<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.query_batch_with_threads(queries, parallel::available_threads())
    }

    /// [`NearNeighborIndex::query_batch`] with an explicit worker-thread
    /// count (the output does not depend on it; the count is capped so
    /// each worker serves several queries per scratch buffer).
    pub fn query_batch_with_threads<QS>(
        &self,
        queries: &QS,
        threads: usize,
    ) -> Vec<(Option<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        let limit = self.retrieval_limit();
        let threads =
            parallel::capped_threads(queries.len(), threads, crate::table::MIN_QUERIES_PER_WORKER);
        parallel::map_index_chunks(queries.len(), threads, |range| {
            let mut scratch = self.index.new_scratch();
            range
                .map(|i| {
                    let q = queries.row(i);
                    let (cands, mut stats) =
                        self.index.candidates_row(q, Some(limit), &mut scratch);
                    let hit = self.verify(&cands, q, &mut stats);
                    (hit, stats)
                })
                .collect()
        })
    }

    fn retrieval_limit(&self) -> usize {
        3 * self.index.repetitions()
    }

    fn verify(&self, cands: &[usize], q: &S::Row, stats: &mut QueryStats) -> Option<usize> {
        for (j, &i) in cands.iter().enumerate() {
            // Gather the row a few candidates ahead so its cache misses
            // overlap this candidate's distance computation.
            if let Some(&ahead) = cands.get(j + crate::table::ROW_AHEAD) {
                self.index.prefetch_point(ahead);
            }
            stats.distance_computations += 1;
            if (self.measure)(self.index.point(i), q) <= self.r2 {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::BitVector;
    use dsh_data::hamming_data;
    use dsh_hamming::BitSampling;
    use dsh_math::rng::seeded;

    #[test]
    fn params_formulae() {
        let p = ann_params(1024, 0.9, 0.5, 1.0);
        assert_eq!(p.k, 10); // ln 1024 / ln 2
        assert_eq!(p.l, (1.0f64 / 0.9f64.powi(10)).ceil() as usize);
        assert!((p.rho - 0.9f64.ln() / 0.5f64.ln()).abs() < 1e-12);
        // rho < 1: sublinear.
        assert!(p.rho < 1.0);
    }

    #[test]
    #[should_panic(expected = "need 0 < p2 < p1 < 1")]
    fn params_reject_bad_probabilities() {
        let _ = ann_params(100, 0.5, 0.9, 1.0);
    }

    #[test]
    fn repetition_count_matches_direct_formula_in_normal_range() {
        assert_eq!(repetition_count(1.0, 0.9, 10), 3); // 1/0.9^10 ~ 2.87
        assert_eq!(repetition_count(2.0, 0.5, 4), 32); // 2 * 2^4
        assert_eq!(repetition_count(1.0, 1.0, 7), 1);
        assert_eq!(
            repetition_count(1.5, 0.25, 3),
            (1.5 / 0.25f64.powi(3)).ceil() as usize
        );
    }

    #[test]
    fn repetition_count_survives_underflowing_power() {
        // 0.05^300 underflows f64 to 0: the seed code computed
        // factor / 0 = inf and saturated the cast. Now: clamped ceiling.
        assert_eq!(repetition_count(1.0, 0.05, 300), MAX_REPETITIONS);
        // Finite but astronomically large: also clamped, never usize::MAX.
        assert_eq!(repetition_count(1.0, 0.5, 200), MAX_REPETITIONS);
        // Subnormal power (0.5^1060 ~ 1e-320): log-space fallback, clamped.
        assert_eq!(repetition_count(1.0, 0.5, 1060), MAX_REPETITIONS);
    }

    #[test]
    fn repetition_count_is_at_least_one() {
        assert_eq!(repetition_count(1.0, 0.999_999, 0), 1);
        assert!(repetition_count(1.0, 0.9, 1) >= 1);
    }

    #[test]
    fn ann_params_clamps_pathological_inputs() {
        // Tiny p1 with k = 1: L = factor / p1 is finite but ~1e200; the
        // seed code saturated `as usize`. The clamp keeps it allocatable.
        let p = ann_params(1_000_000, 1e-200, 1e-220, 1.0);
        assert_eq!(p.k, 1);
        assert_eq!(p.l, MAX_REPETITIONS);
        assert!(p.rho < 1.0);
    }

    #[test]
    fn finds_planted_near_neighbor() {
        let d = 256;
        let r1_rel = 0.05;
        let r2_rel = 0.25;
        let p1 = 1.0 - r1_rel;
        let p2 = 1.0 - r2_rel;
        let mut hits = 0;
        let runs = 20;
        for run in 0..runs {
            let mut rng = seeded(0xA221 + run);
            let inst = hamming_data::planted_hamming_instance(
                &mut rng,
                300,
                d,
                (r1_rel * d as f64) as usize,
            );
            let measure = crate::measures::relative_hamming(d);
            let idx = NearNeighborIndex::build(
                &BitSampling::new(d),
                measure,
                r2_rel,
                inst.points,
                p1,
                p2,
                2.0,
                &mut rng,
            );
            if let (Some(i), _) = idx.query(&inst.query) {
                let t = dsh_core::points::hamming(idx.index.point(i), inst.query.as_blocks())
                    as f64
                    / d as f64;
                assert!(t <= r2_rel);
                hits += 1;
            }
        }
        assert!(hits * 4 >= runs * 3, "hit rate {hits}/{runs} too low");
    }

    #[test]
    fn query_respects_early_termination() {
        let d = 32;
        // Degenerate data: all identical points far from the query.
        let mut rng = seeded(0xA229);
        let points: Vec<BitVector> = (0..500).map(|_| BitVector::zeros(d)).collect();
        let q = BitVector::ones(d);
        let measure = crate::measures::relative_hamming(d);
        let idx = NearNeighborIndex::build(
            &BitSampling::new(d),
            measure,
            0.1,
            points,
            0.9,
            0.5,
            1.0,
            &mut rng,
        );
        let (hit, stats) = idx.query(&q);
        assert!(hit.is_none());
        assert!(stats.candidates_retrieved <= 3 * idx.params().l);
    }

    #[test]
    fn batch_matches_sequential() {
        let d = 128;
        let mut rng = seeded(0xA230);
        let inst = hamming_data::planted_hamming_instance(&mut rng, 200, d, 6);
        let queries: Vec<BitVector> = (0..12).map(|_| BitVector::random(&mut rng, d)).collect();
        let measure = crate::measures::relative_hamming(d);
        let idx = NearNeighborIndex::build(
            &BitSampling::new(d),
            measure,
            0.25,
            inst.points,
            0.95,
            0.75,
            2.0,
            &mut rng,
        );
        let sequential: Vec<_> = queries.iter().map(|q| idx.query(q)).collect();
        for threads in [1usize, 2, 5] {
            assert_eq!(
                sequential,
                idx.query_batch_with_threads(&queries, threads),
                "threads = {threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn build_rejects_empty_points() {
        let measure = crate::measures::relative_hamming(8);
        let _ = NearNeighborIndex::build(
            &BitSampling::new(8),
            measure,
            0.1,
            Vec::<BitVector>::new(),
            0.9,
            0.5,
            1.0,
            &mut seeded(1),
        );
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn build_rejects_non_finite_radius() {
        let measure = crate::measures::relative_hamming(8);
        let _ = NearNeighborIndex::build(
            &BitSampling::new(8),
            measure,
            f64::NAN,
            vec![BitVector::zeros(8)],
            0.9,
            0.5,
            1.0,
            &mut seeded(2),
        );
    }
}
