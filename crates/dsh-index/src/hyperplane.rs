//! Hyperplane queries (§6.1): find a data vector approximately orthogonal
//! to the query.
//!
//! On the unit sphere this is the annulus problem centered at inner
//! product 0: the unimodal filter family with `alpha_max = 0` peaks exactly
//! on the hyperplane `<x, q> = 0`, giving query exponent
//! `rho = (1 - alpha^2) / (1 + alpha^2)` for reporting guarantee
//! `|<x, q>| <= alpha` (§6.1's discussion of hyperplane queries).

use crate::ann::repetition_count;
use crate::annulus::{AnnulusIndex, AnnulusMatch, Measure};
use crate::batch::WriteError;
use crate::dynamic::DynamicIndex;
use crate::measures;
use crate::shard::ShardedIndex;
use crate::table::{CandidateBackend, HashTableIndex, QueryStats};
use dsh_core::points::{AppendStore, AsRow, PointStore};
use dsh_core::AnalyticCpf;
use dsh_sphere::UnimodalFilterDsh;
use rand::Rng;

/// Hyperplane-query index over unit vectors (any dense store backend):
/// reports a point with `|<x, q>| <= alpha_report`.
///
/// Generic over the candidate backend `B`: the static
/// [`HashTableIndex`] (the default) or the segmented [`DynamicIndex`]
/// (via [`HyperplaneIndex::build_dynamic`]) for online insert/remove.
pub struct HyperplaneIndex<
    S: PointStore<Row = [f64]>,
    B: CandidateBackend<Row = [f64]> = HashTableIndex<S>,
> {
    inner: AnnulusIndex<S, B>,
    alpha_report: f64,
}

impl<S: PointStore<Row = [f64]>> HyperplaneIndex<S> {
    /// Build over `points` (unit vectors in `R^d`) with filter scale `t`
    /// and reporting bound `alpha_report`. The repetition count is chosen
    /// as `ceil(repetition_factor / f(0))` where `f` is the family's CPF.
    pub fn build(
        points: S,
        d: usize,
        t: f64,
        alpha_report: f64,
        repetition_factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(alpha_report > 0.0 && alpha_report < 1.0);
        assert!(repetition_factor > 0.0);
        assert!(
            !points.is_empty(),
            "HyperplaneIndex: cannot build over an empty point set"
        );
        let family = UnimodalFilterDsh::new(d, 0.0, t);
        let f0 = family.cpf(0.0);
        assert!(f0 > 0.0, "degenerate CPF at the peak");
        let l = repetition_count(repetition_factor, f0.min(1.0), 1);
        let measure: Measure<[f64]> = measures::inner_product();
        let inner = AnnulusIndex::build(
            &family,
            measure,
            (-alpha_report, alpha_report),
            points,
            l,
            rng,
        );
        HyperplaneIndex {
            inner,
            alpha_report,
        }
    }
}

impl<S: AppendStore + PointStore<Row = [f64]>> HyperplaneIndex<S, DynamicIndex<S>> {
    /// Build over a [`DynamicIndex`] backend: same parameters as
    /// [`HyperplaneIndex::build`], but the point set may start empty and
    /// the returned index supports [`HyperplaneIndex::insert`] /
    /// [`HyperplaneIndex::remove`] / [`HyperplaneIndex::compact`].
    pub fn build_dynamic(
        points: S,
        d: usize,
        t: f64,
        alpha_report: f64,
        repetition_factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(alpha_report > 0.0 && alpha_report < 1.0);
        assert!(repetition_factor > 0.0);
        let family = UnimodalFilterDsh::new(d, 0.0, t);
        let f0 = family.cpf(0.0);
        assert!(f0 > 0.0, "degenerate CPF at the peak");
        let l = repetition_count(repetition_factor, f0.min(1.0), 1);
        let measure: Measure<[f64]> = measures::inner_product();
        let inner = AnnulusIndex::build_dynamic(
            &family,
            measure,
            (-alpha_report, alpha_report),
            points,
            l,
            rng,
        );
        HyperplaneIndex {
            inner,
            alpha_report,
        }
    }

    /// Insert a point into the backing [`DynamicIndex`], returning its id
    /// (a full id space rejects with the backend's [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = [f64]> + ?Sized,
    {
        self.inner.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.inner.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = [f64]> + ?Sized,
    {
        self.inner.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.inner.remove_batch(ids)
    }

    /// Freeze the delta segment; see [`DynamicIndex::seal`].
    pub fn seal(&mut self) {
        self.inner.seal();
    }

    /// Merge all segments, dropping tombstones; see
    /// [`DynamicIndex::compact`].
    pub fn compact(&mut self) {
        self.inner.compact();
    }
}

impl<S: AppendStore + PointStore<Row = [f64]> + Clone> HyperplaneIndex<S, ShardedIndex<S>> {
    /// Build over a [`ShardedIndex`] backend: same parameters as
    /// [`HyperplaneIndex::build_dynamic`] plus the shard count. Queries
    /// fan out across shards and answer bit-identically to the
    /// [`DynamicIndex`]-backed build.
    pub fn build_sharded(
        points: S,
        d: usize,
        t: f64,
        alpha_report: f64,
        repetition_factor: f64,
        num_shards: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(alpha_report > 0.0 && alpha_report < 1.0);
        assert!(repetition_factor > 0.0);
        let family = UnimodalFilterDsh::new(d, 0.0, t);
        let f0 = family.cpf(0.0);
        assert!(f0 > 0.0, "degenerate CPF at the peak");
        let l = repetition_count(repetition_factor, f0.min(1.0), 1);
        let measure: Measure<[f64]> = measures::inner_product();
        let inner = AnnulusIndex::build_sharded(
            &family,
            measure,
            (-alpha_report, alpha_report),
            points,
            l,
            num_shards,
            rng,
        );
        HyperplaneIndex {
            inner,
            alpha_report,
        }
    }

    /// Insert a point into the backing [`ShardedIndex`], returning its
    /// global id (a full id space rejects with the backend's
    /// [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = [f64]> + ?Sized,
    {
        self.inner.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.inner.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = [f64]> + ?Sized,
    {
        self.inner.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.inner.remove_batch(ids)
    }

    /// Freeze every shard's delta segment; see [`ShardedIndex::seal`].
    pub fn seal(&mut self) {
        self.inner.seal();
    }

    /// Compact every shard, dropping tombstones; see
    /// [`ShardedIndex::compact`].
    pub fn compact(&mut self) {
        self.inner.compact();
    }
}

impl<S: PointStore<Row = [f64]>, B: CandidateBackend<Row = [f64]>> HyperplaneIndex<S, B> {
    /// The reporting bound `alpha`.
    pub fn alpha_report(&self) -> f64 {
        self.alpha_report
    }

    /// The candidate backend of the underlying annulus structure.
    pub fn backend(&self) -> &B {
        self.inner.backend()
    }

    /// Mutable access to the candidate backend.
    pub fn backend_mut(&mut self) -> &mut B {
        self.inner.backend_mut()
    }

    /// Number of repetitions used.
    pub fn repetitions(&self) -> usize {
        self.inner.repetitions()
    }

    /// Report a point with `|<x, q>| <= alpha_report`, if the query finds
    /// one.
    pub fn query<Q>(&self, q: &Q) -> (Option<AnnulusMatch>, QueryStats)
    where
        Q: AsRow<Row = [f64]> + ?Sized,
    {
        self.inner.query(q)
    }

    /// Batched [`HyperplaneIndex::query`]: fans queries out across worker
    /// threads with scratch reuse; identical to a query-at-a-time loop.
    pub fn query_batch<QS>(&self, queries: &QS) -> Vec<(Option<AnnulusMatch>, QueryStats)>
    where
        QS: PointStore<Row = [f64]> + ?Sized,
    {
        self.inner.query_batch(queries)
    }
}

/// The §6.1 query exponent for guarantee `alpha`:
/// `rho = (1 - alpha^2) / (1 + alpha^2)`.
pub fn theoretical_rho(alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0);
    (1.0 - alpha * alpha) / (1.0 + alpha * alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_data::sphere_data;
    use dsh_math::rng::seeded;

    #[test]
    fn finds_planted_orthogonal_vector() {
        let d = 40;
        let mut successes = 0;
        let runs = 20;
        for run in 0..runs {
            let mut rng = seeded(321 + run);
            let inst = sphere_data::planted_sphere_instance(&mut rng, 200, d, 0.0);
            let idx = HyperplaneIndex::build(inst.points, d, 1.4, 0.4, 1.5, &mut rng);
            if let (Some(m), _) = idx.query(&inst.query) {
                assert!(m.value.abs() <= 0.4, "reported alpha {}", m.value);
                successes += 1;
            }
        }
        assert!(
            successes * 2 >= runs,
            "success {successes}/{runs} below 1/2"
        );
    }

    #[test]
    fn theoretical_rho_shape() {
        // rho -> 1 as alpha -> 0 (hard) and -> 0 as alpha -> 1 (easy).
        assert!(theoretical_rho(0.05) > 0.99);
        assert!(theoretical_rho(0.95) < 0.1);
        let r1 = theoretical_rho(0.3);
        let r2 = theoretical_rho(0.6);
        assert!(r1 > r2, "rho must decrease with the guarantee bound");
    }

    #[test]
    fn accessors() {
        let mut rng = seeded(322);
        let pts = sphere_data::uniform_sphere(&mut rng, 30, 16);
        let idx = HyperplaneIndex::build(pts, 16, 1.0, 0.5, 1.0, &mut rng);
        assert_eq!(idx.alpha_report(), 0.5);
        assert!(idx.repetitions() >= 1);
    }
}
