//! The `((alpha_-, alpha_+), (beta_-, beta_+))`-annulus search problem of
//! Definition 6.3, solved per Theorem 6.4 with the unimodal filter family.
//!
//! Given compatible intervals (both centered, in the `a(alpha)`-ratio
//! sense, on the same peak), the structure guarantees: if some data point
//! has `sim(q, y) in [alpha_-, alpha_+]`, it returns (w.c.p.) a point with
//! `sim(q, y') in [beta_-, beta_+]`, using `n^rho`-type work with
//!
//! ```text
//! rho = (c_alpha + 1/c_alpha) / (c_beta + 1/c_beta)
//! ```

use crate::ann::repetition_count;
use crate::annulus::{AnnulusIndex, AnnulusMatch, Measure};
use crate::batch::WriteError;
use crate::dynamic::DynamicIndex;
use crate::measures;
use crate::shard::ShardedIndex;
use crate::table::{CandidateBackend, HashTableIndex, QueryStats};
use dsh_core::distance::{alpha_from_ratio, alpha_ratio};
use dsh_core::points::{AppendStore, AsRow, PointStore};
use dsh_core::AnalyticCpf;
use dsh_sphere::unimodal::{annulus_rho, UnimodalFilterDsh};
use rand::Rng;

/// Specification of a Definition 6.3 instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnulusSpec {
    /// Inner (promise) interval `[alpha_-, alpha_+]`.
    pub alpha: (f64, f64),
    /// Outer (reporting) interval `[beta_-, beta_+]`.
    pub beta: (f64, f64),
}

impl AnnulusSpec {
    /// Build a spec from the promise interval, widening symmetrically (in
    /// ratio space) by factor `widen > 1` for the reporting interval —
    /// this automatically satisfies Theorem 6.4's compatibility condition
    /// `a(alpha_-) a(alpha_+) = a(beta_-) a(beta_+)`.
    pub fn widened(alpha_minus: f64, alpha_plus: f64, widen: f64) -> Self {
        assert!(alpha_minus <= alpha_plus);
        assert!(widen > 1.0);
        let beta_minus = alpha_from_ratio(alpha_ratio(alpha_minus) * widen);
        let beta_plus = alpha_from_ratio(alpha_ratio(alpha_plus) / widen);
        AnnulusSpec {
            alpha: (alpha_minus, alpha_plus),
            beta: (beta_minus, beta_plus),
        }
    }

    /// The peak inner product: the alpha with
    /// `a(alpha)^2 = a(alpha_-) a(alpha_+)`.
    pub fn peak(&self) -> f64 {
        alpha_from_ratio((alpha_ratio(self.alpha.0) * alpha_ratio(self.alpha.1)).sqrt())
    }

    /// The Theorem 6.4 query exponent.
    pub fn rho(&self) -> f64 {
        annulus_rho(self.alpha.0, self.alpha.1, self.beta.0, self.beta.1)
    }
}

/// Theorem 6.4 data structure over unit vectors (any dense store
/// backend).
///
/// Generic over the candidate backend `B`: the static
/// [`HashTableIndex`] (the default) or the segmented [`DynamicIndex`]
/// (via [`SphereAnnulusIndex::build_dynamic`]) for online
/// insert/remove.
pub struct SphereAnnulusIndex<
    S: PointStore<Row = [f64]>,
    B: CandidateBackend<Row = [f64]> = HashTableIndex<S>,
> {
    inner: AnnulusIndex<S, B>,
    spec: AnnulusSpec,
}

impl<S: PointStore<Row = [f64]>> SphereAnnulusIndex<S> {
    /// Build over `points` with filter scale `t` (larger `t` = sharper
    /// family = fewer false candidates, more repetitions) and repetition
    /// factor `>= 1`.
    pub fn build(
        points: S,
        d: usize,
        spec: AnnulusSpec,
        t: f64,
        repetition_factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(repetition_factor >= 1.0);
        assert!(
            !points.is_empty(),
            "SphereAnnulusIndex: cannot build over an empty point set"
        );
        let family = UnimodalFilterDsh::new(d, spec.peak(), t);
        // Worst promise-interval collision probability governs L.
        let f_promise = family.cpf(spec.alpha.0).min(family.cpf(spec.alpha.1));
        assert!(f_promise > 0.0, "degenerate CPF over the promise interval");
        let l = repetition_count(repetition_factor, f_promise.min(1.0), 1);
        let measure: Measure<[f64]> = measures::inner_product();
        SphereAnnulusIndex {
            inner: AnnulusIndex::build(&family, measure, spec.beta, points, l, rng),
            spec,
        }
    }
}

impl<S: AppendStore + PointStore<Row = [f64]>> SphereAnnulusIndex<S, DynamicIndex<S>> {
    /// Build over a [`DynamicIndex`] backend: same parameters as
    /// [`SphereAnnulusIndex::build`], but the point set may start empty
    /// and the returned index supports [`SphereAnnulusIndex::insert`] /
    /// [`SphereAnnulusIndex::remove`] / [`SphereAnnulusIndex::compact`].
    pub fn build_dynamic(
        points: S,
        d: usize,
        spec: AnnulusSpec,
        t: f64,
        repetition_factor: f64,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(repetition_factor >= 1.0);
        let family = UnimodalFilterDsh::new(d, spec.peak(), t);
        let f_promise = family.cpf(spec.alpha.0).min(family.cpf(spec.alpha.1));
        assert!(f_promise > 0.0, "degenerate CPF over the promise interval");
        let l = repetition_count(repetition_factor, f_promise.min(1.0), 1);
        let measure: Measure<[f64]> = measures::inner_product();
        SphereAnnulusIndex {
            inner: AnnulusIndex::build_dynamic(&family, measure, spec.beta, points, l, rng),
            spec,
        }
    }

    /// Insert a point into the backing [`DynamicIndex`], returning its id
    /// (a full id space rejects with the backend's [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = [f64]> + ?Sized,
    {
        self.inner.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.inner.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = [f64]> + ?Sized,
    {
        self.inner.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.inner.remove_batch(ids)
    }

    /// Freeze the delta segment; see [`DynamicIndex::seal`].
    pub fn seal(&mut self) {
        self.inner.seal();
    }

    /// Merge all segments, dropping tombstones; see
    /// [`DynamicIndex::compact`].
    pub fn compact(&mut self) {
        self.inner.compact();
    }
}

impl<S: AppendStore + PointStore<Row = [f64]> + Clone> SphereAnnulusIndex<S, ShardedIndex<S>> {
    /// Build over a [`ShardedIndex`] backend: same parameters as
    /// [`SphereAnnulusIndex::build_dynamic`] plus the shard count.
    /// Queries fan out across shards and answer bit-identically to the
    /// [`DynamicIndex`]-backed build.
    pub fn build_sharded(
        points: S,
        d: usize,
        spec: AnnulusSpec,
        t: f64,
        repetition_factor: f64,
        num_shards: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(repetition_factor >= 1.0);
        let family = UnimodalFilterDsh::new(d, spec.peak(), t);
        let f_promise = family.cpf(spec.alpha.0).min(family.cpf(spec.alpha.1));
        assert!(f_promise > 0.0, "degenerate CPF over the promise interval");
        let l = repetition_count(repetition_factor, f_promise.min(1.0), 1);
        let measure: Measure<[f64]> = measures::inner_product();
        SphereAnnulusIndex {
            inner: AnnulusIndex::build_sharded(
                &family, measure, spec.beta, points, l, num_shards, rng,
            ),
            spec,
        }
    }

    /// Insert a point into the backing [`ShardedIndex`], returning its
    /// global id (a full id space rejects with the backend's
    /// [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = [f64]> + ?Sized,
    {
        self.inner.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.inner.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = [f64]> + ?Sized,
    {
        self.inner.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.inner.remove_batch(ids)
    }

    /// Freeze every shard's delta segment; see [`ShardedIndex::seal`].
    pub fn seal(&mut self) {
        self.inner.seal();
    }

    /// Compact every shard, dropping tombstones; see
    /// [`ShardedIndex::compact`].
    pub fn compact(&mut self) {
        self.inner.compact();
    }
}

impl<S: PointStore<Row = [f64]>, B: CandidateBackend<Row = [f64]>> SphereAnnulusIndex<S, B> {
    /// The instance specification.
    pub fn spec(&self) -> AnnulusSpec {
        self.spec
    }

    /// The candidate backend of the underlying annulus structure.
    pub fn backend(&self) -> &B {
        self.inner.backend()
    }

    /// Mutable access to the candidate backend.
    pub fn backend_mut(&mut self) -> &mut B {
        self.inner.backend_mut()
    }

    /// Number of repetitions.
    pub fn repetitions(&self) -> usize {
        self.inner.repetitions()
    }

    /// Query per Definition 6.3: returns a point with inner product in
    /// `[beta_-, beta_+]` if one with inner product in
    /// `[alpha_-, alpha_+]` exists (success probability >= 1/2).
    pub fn query<Q>(&self, q: &Q) -> (Option<AnnulusMatch>, QueryStats)
    where
        Q: AsRow<Row = [f64]> + ?Sized,
    {
        self.inner.query(q)
    }

    /// Batched [`SphereAnnulusIndex::query`]: fans queries out across
    /// worker threads with scratch reuse; identical to a query-at-a-time
    /// loop.
    pub fn query_batch<QS>(&self, queries: &QS) -> Vec<(Option<AnnulusMatch>, QueryStats)>
    where
        QS: PointStore<Row = [f64]> + ?Sized,
    {
        self.inner.query_batch(queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_data::sphere_data;
    use dsh_math::rng::seeded;

    #[test]
    fn spec_widening_is_compatible() {
        let spec = AnnulusSpec::widened(0.4, 0.6, 2.0);
        // Compatibility: product of ratios preserved.
        let pa = alpha_ratio(spec.alpha.0) * alpha_ratio(spec.alpha.1);
        let pb = alpha_ratio(spec.beta.0) * alpha_ratio(spec.beta.1);
        assert!((pa - pb).abs() < 1e-12);
        // Beta strictly contains alpha.
        assert!(spec.beta.0 < spec.alpha.0 && spec.beta.1 > spec.alpha.1);
        // rho < 1 and peak inside the promise interval.
        assert!(spec.rho() < 1.0);
        let peak = spec.peak();
        assert!(spec.alpha.0 <= peak && peak <= spec.alpha.1);
    }

    #[test]
    fn theorem_6_4_rho_bound() {
        // rho <= 2/(c + 1/c) with c = c_beta/c_alpha.
        let spec = AnnulusSpec::widened(0.3, 0.5, 3.0);
        let c_a = dsh_sphere::unimodal::interval_c_value(spec.alpha.0, spec.alpha.1);
        let c_b = dsh_sphere::unimodal::interval_c_value(spec.beta.0, spec.beta.1);
        let c = c_b / c_a;
        assert!(spec.rho() <= 2.0 / (c + 1.0 / c) + 1e-12);
    }

    #[test]
    fn finds_planted_point_in_beta_interval() {
        let d = 64;
        let spec = AnnulusSpec::widened(0.55, 0.65, 2.5);
        let mut hits = 0;
        let runs = 10;
        for run in 0..runs {
            let mut rng = seeded(0x5A1 + run);
            let inst = sphere_data::planted_sphere_instance(&mut rng, 250, d, 0.6);
            let idx = SphereAnnulusIndex::build(inst.points, d, spec, 1.4, 1.5, &mut rng);
            if let (Some(m), _) = idx.query(&inst.query) {
                assert!(
                    m.value >= spec.beta.0 && m.value <= spec.beta.1,
                    "reported {} outside beta interval",
                    m.value
                );
                hits += 1;
            }
        }
        assert!(hits * 2 >= runs, "success {hits}/{runs}");
    }

    #[test]
    fn degenerate_point_interval() {
        // alpha_- = alpha_+ (exact similarity search inside an annulus).
        let spec = AnnulusSpec::widened(0.5, 0.5, 2.0);
        assert!((spec.peak() - 0.5).abs() < 1e-12);
        assert!(spec.rho() < 1.0);
    }
}
