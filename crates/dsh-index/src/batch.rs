//! Group-commit write batches: ordered inserts and removes applied —
//! and published — as one unit.
//!
//! The sharded serving layer pays a fixed tax per write: fork the
//! state, copy the touched shard's mutable parts, publish a fresh
//! epoch. Per-op ingest pays it once per point. A [`WriteBatch`]
//! amortizes it: the caller stages any interleaving of inserts and
//! removes, then `apply_batch` (on `DynamicIndex` or `ShardedIndex`)
//! validates the **whole** batch up front, applies every operation in
//! order, and publishes **one** epoch. Results are bit-identical to
//! replaying the same operations one at a time — same assigned ids,
//! same candidate lists, same [`crate::QueryStats`] — only the epoch
//! arithmetic (and the write cost) differs.
//!
//! Validation happens before any state is forked or mutated: an
//! out-of-range remove anywhere in the batch rejects the whole batch
//! with a descriptive [`BatchError`], never a partial application and
//! never a serving-path panic. Removes may target ids assigned by
//! earlier inserts *of the same batch* — the running id bound advances
//! through the ops exactly as a per-op replay would advance it.
//!
//! ```
//! use dsh_core::points::{BitStore, BitVector};
//! use dsh_hamming::BitSampling;
//! use dsh_index::{ShardedIndex, WriteOutcome};
//! use dsh_math::rng::seeded;
//!
//! let d = 64;
//! let mut rng = seeded(7);
//! let mut idx = ShardedIndex::build(&BitSampling::new(d), BitStore::with_dim(d), 8, 4, &mut rng);
//! let p = BitVector::random(&mut rng, d);
//!
//! let mut batch = idx.new_batch();
//! batch.insert(&p);
//! batch.remove(0); // the id the insert above will be assigned
//! let outcomes = idx.apply_batch(&batch).unwrap();
//! assert_eq!(outcomes, vec![WriteOutcome::Inserted(0), WriteOutcome::Removed(true)]);
//! assert_eq!(idx.epoch(), 1); // one publication for the whole batch
//! ```

use dsh_core::points::{AppendStore, AsRow};

/// Hard cap on the id space every bucket layout shares: slot ids are
/// `u32`, so an index (or shard family) holds at most `u32::MAX`
/// points over its lifetime — assigned ids range over
/// `0..MAX_POINTS`. One bound, used by every write entry point: a
/// write is accepted iff the id bound after it is `<= MAX_POINTS`.
pub const MAX_POINTS: usize = u32::MAX as usize;

/// Why a single write operation was rejected — the recoverable
/// counterpart of what used to be a serving-path panic. Returned by
/// the per-op `insert`/`remove` (and their `_batch` conveniences) on
/// [`crate::DynamicIndex`] and [`crate::ShardedIndex`]; group commits
/// report the same conditions per batch as [`BatchError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// A remove targeted an id that was never assigned. (A remove of a
    /// *known* id that was already removed is not an error: it returns
    /// `Ok(false)`, matching the group-commit surface.)
    UnknownId {
        /// The id the remove targeted.
        id: usize,
        /// One past the largest assigned id.
        bound: usize,
    },
    /// An insert would push the id space past [`MAX_POINTS`].
    CapacityExceeded {
        /// The id bound before the rejected write.
        id_bound: usize,
        /// How many ids the rejected write would have assigned.
        additional: usize,
    },
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WriteError::UnknownId { id, bound } => {
                write!(f, "remove of id {id} out of range (id bound: {bound})")
            }
            WriteError::CapacityExceeded {
                id_bound,
                additional,
            } => write!(
                f,
                "insert of {additional} point(s) at id bound {id_bound} exceeds \
                 the u32 point-id capacity ({MAX_POINTS})"
            ),
        }
    }
}

impl std::error::Error for WriteError {}

/// Accept a write assigning `additional` fresh ids on top of
/// `id_bound` iff the resulting bound stays within [`MAX_POINTS`].
pub(crate) fn ensure_capacity(id_bound: usize, additional: usize) -> Result<(), WriteError> {
    match id_bound.checked_add(additional) {
        Some(total) if total <= MAX_POINTS => Ok(()),
        _ => Err(WriteError::CapacityExceeded {
            id_bound,
            additional,
        }),
    }
}

/// Accept a remove of `id` iff it was ever assigned (`id < bound`).
pub(crate) fn ensure_known(id: usize, bound: usize) -> Result<(), WriteError> {
    if id < bound {
        Ok(())
    } else {
        Err(WriteError::UnknownId { id, bound })
    }
}

/// One staged operation of a [`WriteBatch`]: an insert (indexing the
/// batch's staged row buffer) or a remove of a global id.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BatchOp {
    /// Insert staged row `.0` (an index into the batch's row store).
    Insert(u32),
    /// Remove global id `.0`.
    Remove(u64),
}

/// What one batched operation did, in op order — exactly what the
/// corresponding per-op call would have returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// An insert, with the global id it was assigned.
    Inserted(usize),
    /// A remove; `false` when the id was already removed (matching the
    /// per-op `remove` return).
    Removed(bool),
}

/// Why a whole [`WriteBatch`] was rejected — before anything was
/// forked, mutated, or published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// A remove targeted an id outside the id space as it would stand
    /// at that point of the batch (the per-op path panics here; the
    /// batch path must reject without partial application).
    UnknownId {
        /// Position of the offending operation within the batch.
        op_index: usize,
        /// The id the remove targeted.
        id: usize,
        /// The id bound in force at that operation (one past the
        /// largest assigned id, counting the batch's earlier inserts).
        bound: usize,
    },
    /// An insert would push the id space past the `u32` slot-id
    /// capacity every bucket layout shares.
    CapacityExceeded {
        /// Position of the offending insert within the batch.
        op_index: usize,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BatchError::UnknownId {
                op_index,
                id,
                bound,
            } => write!(
                f,
                "batch op {op_index}: remove of id {id} out of range (id bound at that op: {bound})"
            ),
            BatchError::CapacityExceeded { op_index } => write!(
                f,
                "batch op {op_index}: insert exceeds the u32 point-id capacity"
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// An ordered sequence of inserts and removes, staged for one group
/// commit. Inserted rows are buffered in an [`AppendStore`] of the
/// target index's row shape (obtain an empty batch from the index's
/// `new_batch`); apply with `apply_batch` on [`crate::DynamicIndex`]
/// or [`crate::ShardedIndex`]. See the module docs for semantics.
pub struct WriteBatch<BS: AppendStore> {
    rows: BS,
    ops: Vec<BatchOp>,
    /// Op index of the first insert staged past [`MAX_POINTS`], if any.
    /// Staging must stay panic-free (it runs on the serving path), so an
    /// over-capacity insert poisons the batch here instead of asserting;
    /// `validate` rejects the whole batch with the recorded index.
    overflowed: Option<usize>,
}

impl<BS: AppendStore> WriteBatch<BS> {
    /// Start an empty batch staging rows in `rows` (which fixes the row
    /// shape and must be empty).
    pub fn new(rows: BS) -> Self {
        // lint: allow(panic) — constructor contract (empty staging store); violations are build bugs, not data-dependent
        assert!(rows.is_empty(), "WriteBatch::new takes an empty store");
        WriteBatch {
            rows,
            ops: Vec::new(),
            overflowed: None,
        }
    }

    /// Stage an insert. The global id it will receive depends on the
    /// index the batch is applied to (and on the batch's earlier
    /// inserts); it is reported by the corresponding
    /// [`WriteOutcome::Inserted`].
    ///
    /// Staging more than [`MAX_POINTS`] inserts poisons the batch: the
    /// over-capacity insert (and everything staged after it) is dropped,
    /// and applying the batch reports
    /// [`BatchError::CapacityExceeded`] at that op index. Such a batch
    /// could never be applied anyway — the id space itself is capped at
    /// [`MAX_POINTS`] — so the failure is deferred to `validate` rather
    /// than panicking mid-staging on the serving path.
    pub fn insert<Q>(&mut self, p: &Q)
    where
        Q: AsRow<Row = BS::Row> + ?Sized,
    {
        if self.overflowed.is_some() {
            return;
        }
        let slot = self.rows.len();
        if slot >= MAX_POINTS {
            self.overflowed = Some(self.ops.len());
            return;
        }
        self.rows.push_row(p.as_row());
        self.ops.push(BatchOp::Insert(slot as u32));
    }

    /// Stage a remove of global id `id`. The id must be in range when
    /// the batch is applied (earlier inserts of this batch count);
    /// otherwise the whole batch is rejected with
    /// [`BatchError::UnknownId`].
    pub fn remove(&mut self, id: usize) {
        if self.overflowed.is_some() {
            return;
        }
        self.ops.push(BatchOp::Remove(id as u64));
    }

    /// Number of staged operations (inserts plus removes).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of staged inserts.
    pub fn inserts(&self) -> usize {
        self.rows.len()
    }

    /// The staged operations, in order.
    pub(crate) fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Borrow staged row `slot`.
    pub(crate) fn row(&self, slot: u32) -> &BS::Row {
        self.rows.row(slot as usize)
    }

    /// Check every operation against the id space of an index whose
    /// current id bound is `id_bound`, advancing the bound through the
    /// batch's inserts exactly as application would. `Err` means the
    /// batch must not be applied at all.
    pub(crate) fn validate(&self, id_bound: usize) -> Result<(), BatchError> {
        if let Some(op_index) = self.overflowed {
            return Err(BatchError::CapacityExceeded { op_index });
        }
        let mut bound = id_bound;
        for (op_index, op) in self.ops.iter().enumerate() {
            match *op {
                BatchOp::Insert(_) => {
                    if ensure_capacity(bound, 1).is_err() {
                        return Err(BatchError::CapacityExceeded { op_index });
                    }
                    bound += 1;
                }
                BatchOp::Remove(id) => {
                    let id = id as usize;
                    if id >= bound {
                        return Err(BatchError::UnknownId {
                            op_index,
                            id,
                            bound,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::{BitStore, BitVector};
    use dsh_math::rng::seeded;

    #[test]
    fn staging_tracks_ops_and_rows() {
        let d = 64;
        let mut batch = WriteBatch::new(BitStore::with_dim(d));
        assert!(batch.is_empty());
        let p = BitVector::random(&mut seeded(1), d);
        batch.insert(&p);
        batch.remove(0);
        batch.insert(&p);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.inserts(), 2);
        assert_eq!(batch.row(0), p.as_blocks());
    }

    #[test]
    fn validate_advances_the_bound_through_inserts() {
        let d = 32;
        let mut batch = WriteBatch::new(BitStore::with_dim(d));
        let p = BitVector::zeros(d);
        batch.insert(&p); // would get id 5 on a bound-5 index
        batch.remove(5); // valid: removes the id just inserted
        assert_eq!(batch.validate(5), Ok(()));
        // On an empty index the same batch's remove targets id 5 with
        // only id 0 assigned: rejected, with the running bound reported.
        assert_eq!(
            batch.validate(0),
            Err(BatchError::UnknownId {
                op_index: 1,
                id: 5,
                bound: 1
            })
        );
    }

    #[test]
    fn validate_rejects_before_bound_not_after() {
        let d = 32;
        let mut batch = WriteBatch::new(BitStore::with_dim(d));
        batch.remove(9);
        assert!(matches!(
            batch.validate(9),
            Err(BatchError::UnknownId {
                op_index: 0,
                id: 9,
                bound: 9
            })
        ));
        assert_eq!(batch.validate(10), Ok(()));
    }

    #[test]
    fn errors_render_descriptively() {
        let e = BatchError::UnknownId {
            op_index: 3,
            id: 41,
            bound: 40,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("op 3") && msg.contains("41") && msg.contains("40"),
            "{msg}"
        );
        let msg = BatchError::CapacityExceeded { op_index: 7 }.to_string();
        assert!(msg.contains("op 7") && msg.contains("capacity"), "{msg}");
    }

    #[test]
    fn capacity_bound_is_inclusive_of_max_points() {
        // The one bound every entry point shares: a write is fine iff
        // the id bound after it is <= MAX_POINTS. Filling the id space
        // exactly is allowed; one past it is not.
        assert_eq!(ensure_capacity(0, MAX_POINTS), Ok(()));
        assert_eq!(ensure_capacity(MAX_POINTS - 1, 1), Ok(()));
        assert_eq!(ensure_capacity(MAX_POINTS, 0), Ok(()));
        assert_eq!(
            ensure_capacity(MAX_POINTS, 1),
            Err(WriteError::CapacityExceeded {
                id_bound: MAX_POINTS,
                additional: 1
            })
        );
        assert_eq!(
            ensure_capacity(1, MAX_POINTS),
            Err(WriteError::CapacityExceeded {
                id_bound: 1,
                additional: MAX_POINTS
            })
        );
        // Overflowing usize arithmetic must reject, not wrap.
        assert!(ensure_capacity(usize::MAX, 2).is_err());
    }

    #[test]
    fn batch_validate_agrees_with_ensure_capacity_at_the_boundary() {
        let d = 32;
        let mut batch = WriteBatch::new(BitStore::with_dim(d));
        batch.insert(&BitVector::zeros(d));
        // One insert on a bound one shy of the cap lands exactly on it.
        assert_eq!(batch.validate(MAX_POINTS - 1), Ok(()));
        // On a full index the same insert is rejected.
        assert_eq!(
            batch.validate(MAX_POINTS),
            Err(BatchError::CapacityExceeded { op_index: 0 })
        );
    }

    #[test]
    fn unknown_id_check_is_strict() {
        assert_eq!(ensure_known(4, 5), Ok(()));
        assert_eq!(
            ensure_known(5, 5),
            Err(WriteError::UnknownId { id: 5, bound: 5 })
        );
    }

    #[test]
    fn write_errors_render_descriptively() {
        let msg = WriteError::UnknownId { id: 41, bound: 40 }.to_string();
        assert!(msg.contains("41") && msg.contains("40"), "{msg}");
        let msg = WriteError::CapacityExceeded {
            id_bound: 7,
            additional: 2,
        }
        .to_string();
        assert!(
            msg.contains("7") && msg.contains("2") && msg.contains("capacity"),
            "{msg}"
        );
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn new_rejects_nonempty_staging_store() {
        let d = 32;
        let mut rows = BitStore::with_dim(d);
        rows.push(&BitVector::zeros(d));
        let _ = WriteBatch::new(rows);
    }
}
