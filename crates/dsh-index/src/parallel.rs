//! Minimal scoped-thread fan-out for the index layer.
//!
//! The workspace vendors only `rand` and `criterion`, so there is no rayon.
//! This module provides the one fan-out shape the index substrate needs —
//! an order-preserving map over a slice, chunked across worker threads —
//! on plain [`std::thread::scope`].
//!
//! Work is split into at most `threads` contiguous chunks; one scoped
//! thread runs per extra chunk while the first chunk runs on the calling
//! thread. Results are concatenated in input order, so the output is a
//! pure function of the input: **identical for every `threads >= 1`**.
//! That property is what lets table builds and batched queries stay
//! deterministic regardless of the machine's core count (and is covered
//! by the thread-count determinism tests in `tests/index_substrate.rs`).

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the OS-reported
/// [`std::thread::available_parallelism`], falling back to 1 when the
/// platform cannot report it.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Cap a worker count so each worker gets at least `min_per_worker`
/// items. Cheap per-item work (e.g. one query against a shared index)
/// does not amortize a thread spawn plus a fresh O(n) scratch buffer over
/// a single item — callers with light items pass a floor; callers whose
/// items are heavy (a whole table build) use their thread count directly.
pub fn capped_threads(items: usize, threads: usize, min_per_worker: usize) -> usize {
    debug_assert!(min_per_worker >= 1);
    threads.min(items.div_ceil(min_per_worker)).max(1)
}

/// Map `f` over contiguous index ranges of `0..n` using up to `threads`
/// scoped threads — the storage-agnostic fan-out shape: callers index
/// into whatever row-addressable structure they hold (a slice, a
/// [`dsh_core::points::PointStore`]) instead of the fan-out requiring a
/// materialized `&[T]`.
///
/// `f` receives a half-open index range and must return exactly one
/// output per index, in index order; results are concatenated in input
/// order, so the output is identical for every `threads >= 1`.
///
/// Panics if `threads == 0` or if `f` returns a result of the wrong
/// length for some range.
pub fn map_index_chunks<U, F>(n: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<U> + Sync,
{
    // lint: allow(panic) — documented contract: threads == 0 is a caller bug
    assert!(threads >= 1, "need at least one worker thread");
    if n == 0 {
        return Vec::new();
    }
    let chunk_size = n.div_ceil(threads.min(n));
    if chunk_size >= n {
        let out = f(0..n);
        // lint: allow(panic) — documented contract: f must return one output per index
        assert_eq!(out.len(), n, "chunk result length mismatch");
        return out;
    }

    let starts: Vec<usize> = (0..n).step_by(chunk_size).collect();
    let mut per_chunk: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = starts
            .iter()
            .skip(1)
            .map(|&start| scope.spawn(move || f(start..(start + chunk_size).min(n))))
            .collect();
        per_chunk.push(f(0..chunk_size));
        for h in handles {
            // lint: allow(panic) — propagating a worker's panic to the caller, not originating one
            per_chunk.push(h.join().expect("index worker thread panicked"));
        }
    });

    let mut out = Vec::with_capacity(n);
    for (c, (&start, result)) in starts.iter().zip(per_chunk).enumerate() {
        // lint: allow(panic) — documented contract: f must return one output per index
        assert_eq!(
            result.len(),
            (start + chunk_size).min(n) - start,
            "chunk {c} result length mismatch"
        );
        out.extend(result);
    }
    out
}

/// Map `f` over contiguous chunks of `items` using up to `threads` scoped
/// threads.
///
/// `f` receives the absolute index of its chunk's first element plus the
/// chunk itself, and must return exactly one output per input, in input
/// order — the chunk shape exists so callers can amortize per-worker
/// state (e.g. a query scratch buffer) across a whole chunk.
///
/// Panics if `threads == 0` or if `f` returns a result of the wrong
/// length for some chunk.
pub fn map_chunks<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> Vec<U> + Sync,
{
    map_index_chunks(items.len(), threads, |range| f(range.start, &items[range]))
}

/// Item-wise convenience over [`map_chunks`]: `f` receives each item's
/// absolute index and the item. Output order matches input order for every
/// thread count.
pub fn map_items<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    map_chunks(items, threads, |start, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(i, t)| f(start + i, t))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_items_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            let got = map_items(&items, threads, |i, &x| {
                assert_eq!(i as u64, x, "absolute index must match");
                x * x
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_covers_all_items_exactly_once() {
        let items: Vec<usize> = (0..50).collect();
        let got = map_chunks(&items, 7, |start, chunk| {
            chunk.iter().enumerate().map(|(i, _)| start + i).collect()
        });
        assert_eq!(got, items);
    }

    #[test]
    fn map_index_chunks_covers_every_index_in_order() {
        for n in [0usize, 1, 7, 50, 97] {
            for threads in [1usize, 2, 3, 8, 200] {
                let got = map_index_chunks(n, threads, std::iter::Iterator::collect);
                let want: Vec<usize> = (0..n).collect();
                assert_eq!(got, want, "n = {n}, threads = {threads}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let got = map_items(&items, 4, |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_rejected() {
        let _ = map_items(&[1u32], 0, |_, &x| x);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn capped_threads_enforces_per_worker_floor() {
        assert_eq!(capped_threads(64, 64, 8), 8);
        assert_eq!(capped_threads(7, 64, 8), 1);
        assert_eq!(capped_threads(1000, 4, 8), 4);
        assert_eq!(capped_threads(0, 4, 8), 1);
        assert_eq!(capped_threads(16, 2, 1), 2);
    }
}
