//! Sharded concurrent serving layer: snapshot reads under live writes.
//!
//! Every index in this crate so far is owned by one thread. A serving
//! system needs the opposite: queries answered *while* inserts, removals,
//! and compactions happen. [`ShardedIndex`] provides that on top of the
//! existing substrate:
//!
//! * points are partitioned across `N` **shards** by the stable mapping
//!   `shard = id % N` (ids are assigned in insertion order, exactly like
//!   the unsharded [`DynamicIndex`]); each shard is a `DynamicIndex` over
//!   a snapshot-friendly [`ChunkedStore`];
//! * the whole index state is an **immutable value** behind an [`Arc`].
//!   Writers (`&mut self`) build the next state by copy-on-write — only
//!   the written shard's small mutable parts (delta segment, store tail,
//!   tombstones) are copied; sealed segments and frozen store chunks are
//!   shared by reference count — and publish it with one `Arc` swap into
//!   an epoch-stamped cell;
//! * readers never block: [`ShardedIndex::reader`] (or a cloneable
//!   [`ReaderHandle`], for reader threads that outlive the writer borrow)
//!   hands out an immutable [`Snapshot`] that keeps answering from its
//!   frozen state no matter what writers do afterwards. [`Snapshot`]
//!   acquisition is a reference-count bump behind a briefly-held lock —
//!   it stays O(1) even while a compaction is running, because
//!   [`ShardedIndex::compact`] builds the new segment set on scoped
//!   worker threads *off* the publication path and swaps it in atomically
//!   at the end.
//!
//! # Exactness
//!
//! A sharded index is not an approximation of the unsharded one — it is
//! bit-identical to it (ids, order, full [`QueryStats`]), for every shard
//! count and at *any* insert/remove/seal/compact interleaving point.
//! Three properties make that work:
//!
//! 1. all shards share one `L`-tuple of `(h, g)` pairs, sampled
//!    sequentially from the caller's RNG exactly like
//!    [`DynamicIndex::build`] samples its own;
//! 2. the query path merges each logical bucket's per-shard entries in
//!    ascending **global id** order. Per-shard buckets hold ascending
//!    local ids, and `global = local * N + shard` is monotone per shard,
//!    so the k-way merge reproduces the unsharded CSR bucket exactly —
//!    including where a retrieval limit truncates;
//! 3. a **logical segment map** aligns shard segments with the segments
//!    an unsharded index driven through the same schedule would hold
//!    (a shard whose delta had no live rows at `seal` time contributes no
//!    physical segment, but the logical segment still exists if any shard
//!    sealed one), so `tables_probed` counts logical probes and matches
//!    the unsharded accounting.
//!
//! `distinct_candidates` is computed once per query from the deduplicated
//! output, per the [`QueryStats::merge`] rule. The parity sweep in
//! `tests/shard_parity.rs` pins all of this; `tests/shard_concurrency.rs`
//! is the concurrency soak (snapshots held across concurrent writes keep
//! answering from their frozen state).

use crate::batch::{
    ensure_capacity, ensure_known, BatchError, BatchOp, WriteBatch, WriteError, WriteOutcome,
    MAX_POINTS,
};
use crate::dynamic::DynamicIndex;
use crate::parallel;
use crate::table::{CandidateBackend, QueryScratch, QueryStats, MIN_QUERIES_PER_WORKER};
use dsh_core::family::{DshFamily, HasherPair};
use dsh_core::points::{AppendStore, AsRow, ChunkedStore, PointStore};
use rand::Rng;
use std::sync::{Arc, RwLock};

/// The immutable state one epoch of a [`ShardedIndex`] publishes: the
/// shard indexes plus the logical-segment alignment map.
struct ShardedState<S: AppendStore + Clone> {
    shards: Vec<Arc<DynamicIndex<ChunkedStore<S>>>>,
    /// One entry per **logical** sealed segment (the segment an unsharded
    /// index driven through the same schedule would hold), mapping each
    /// shard to its physical segment index — `None` when that shard
    /// contributed no live rows at the corresponding seal.
    segments: Vec<Vec<Option<usize>>>,
    /// One past the largest global id ever assigned.
    total_rows: usize,
    /// Number of state publications since the build (each write bumps it).
    epoch: u64,
}

impl<S: AppendStore + Clone> Clone for ShardedState<S> {
    fn clone(&self) -> Self {
        ShardedState {
            shards: self.shards.clone(),
            segments: self.segments.clone(),
            total_rows: self.total_rows,
            epoch: self.epoch,
        }
    }
}

impl<S: AppendStore + Clone> ShardedState<S> {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn repetitions(&self) -> usize {
        self.shards[0].repetitions()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|sh| sh.len()).sum()
    }

    fn removed(&self) -> usize {
        self.shards.iter().map(|sh| sh.removed()).sum()
    }

    fn delta_rows(&self) -> usize {
        self.shards.iter().map(|sh| sh.delta_rows()).sum()
    }

    fn is_live(&self, id: usize) -> bool {
        id < self.total_rows && self.shards[id % self.num_shards()].is_live(id / self.num_shards())
    }

    fn point(&self, id: usize) -> &S::Row {
        self.shards[id % self.num_shards()].point(id / self.num_shards())
    }

    fn prefetch_point(&self, id: usize) {
        if id < self.total_rows {
            CandidateBackend::prefetch_point(
                &*self.shards[id % self.num_shards()],
                id / self.num_shards(),
            );
        }
    }

    fn new_scratch(&self) -> QueryScratch {
        QueryScratch::new(self.total_rows)
    }

    /// The sharded mirror of `DynamicIndex::candidates_row`: identical
    /// probe order (tables outermost, then logical segments in creation
    /// order, then the delta), identical per-entry accounting, with each
    /// logical bucket's entries drawn from the shard buckets in ascending
    /// global-id order.
    fn candidates_row(
        &self,
        q: &S::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats) {
        // lint: allow(panic) — contract: scratch must come from this index's make_scratch
        assert_eq!(
            scratch.len(),
            self.total_rows,
            "scratch buffer sized for a different index"
        );
        let generation = scratch.begin();
        let limit = retrieval_limit.unwrap_or(usize::MAX);
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        // (shard, bucket, cursor) triples of the logical bucket currently
        // being merged; reused across probes to avoid per-probe allocation.
        let mut probe: Vec<(usize, &[u32], usize)> = Vec::with_capacity(self.num_shards());
        let probe_delta = self.shards.iter().any(|sh| sh.delta_rows() > 0);
        'tables: for (j, pair) in self.shards[0].pairs().iter().enumerate() {
            let key = pair.query.hash(q);
            for seg_map in &self.segments {
                probe.clear();
                for (s, phys) in seg_map.iter().enumerate() {
                    if let Some(p) = phys {
                        probe.push((s, self.shards[s].sealed_bucket(*p, j, key), 0));
                    }
                }
                let part = self.consume_merged(
                    &mut probe,
                    limit - stats.candidates_retrieved,
                    scratch,
                    generation,
                    &mut out,
                );
                stats.merge(&part);
                if stats.candidates_retrieved >= limit {
                    break 'tables;
                }
            }
            if probe_delta {
                probe.clear();
                for (s, sh) in self.shards.iter().enumerate() {
                    if sh.delta_rows() > 0 {
                        probe.push((s, sh.delta_bucket(j, key), 0));
                    }
                }
                let part = self.consume_merged(
                    &mut probe,
                    limit - stats.candidates_retrieved,
                    scratch,
                    generation,
                    &mut out,
                );
                stats.merge(&part);
                if stats.candidates_retrieved >= limit {
                    break 'tables;
                }
            }
        }
        stats.distinct_candidates = out.len();
        (out, stats)
    }

    /// Pull up to `remaining` live entries from one logical bucket by
    /// k-way-merging the shard buckets in ascending global-id order —
    /// the exact entry sequence the unsharded bucket holds. Tombstoned
    /// entries are skipped without counting, like the unsharded path.
    // lint: hot
    fn consume_merged(
        &self,
        probe: &mut [(usize, &[u32], usize)],
        remaining: usize,
        scratch: &mut QueryScratch,
        generation: u8,
        out: &mut Vec<usize>,
    ) -> QueryStats {
        let n = self.num_shards();
        let mut part = QueryStats {
            tables_probed: 1,
            ..QueryStats::default()
        };
        #[cfg(debug_assertions)]
        let mut prev_global: Option<usize> = None;
        loop {
            if part.candidates_retrieved >= remaining {
                break;
            }
            let mut best: Option<(usize, usize)> = None; // (global id, slot)
            for (slot, &(shard, bucket, cursor)) in probe.iter().enumerate() {
                if let Some(&local) = bucket.get(cursor) {
                    let global = local as usize * n + shard;
                    if best.is_none_or(|(g, _)| global < g) {
                        best = Some((global, slot));
                    }
                }
            }
            let Some((global, slot)) = best else { break };
            // Dynamic complement to dsh-lint: the merge must emit globals
            // in strictly ascending order (each shard bucket is ascending
            // and shards partition ids by residue), or parity with the
            // unsharded entry sequence is silently lost.
            #[cfg(debug_assertions)]
            {
                debug_assert!(
                    prev_global.is_none_or(|p| p < global),
                    "k-way merge emitted global {global} after {prev_global:?}"
                );
                prev_global = Some(global);
            }
            probe[slot].2 += 1;
            {
                // Hint the visited stamp of the entry this slot will offer
                // a few merge steps from now (the stamp probe is the one
                // random access per emitted entry).
                let (shard, bucket, cursor) = probe[slot];
                if let Some(&local) = bucket.get(cursor + crate::table::STAMP_AHEAD) {
                    scratch.prefetch(local as usize * n + shard);
                }
            }
            if !self.shards[probe[slot].0].is_live(global / n) {
                continue;
            }
            if scratch.visit(global, generation) {
                out.push(global);
            } else {
                part.duplicates += 1;
            }
            part.candidates_retrieved += 1;
        }
        part
    }

    fn candidates_batch_with_threads<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
        threads: usize,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        let threads = parallel::capped_threads(queries.len(), threads, MIN_QUERIES_PER_WORKER);
        parallel::map_index_chunks(queries.len(), threads, |range| {
            let mut scratch = self.new_scratch();
            range
                .map(|i| self.candidates_row(queries.row(i), retrieval_limit, &mut scratch))
                .collect()
        })
    }
}

/// A mutable index partitioned across `N` shards, publishing an immutable
/// epoch-stamped snapshot of itself after every write.
///
/// The writer side is `&mut self` ([`ShardedIndex::insert`] /
/// [`ShardedIndex::remove`] / [`ShardedIndex::seal`] /
/// [`ShardedIndex::compact`]); the reader side is wait-free snapshots —
/// take one directly with [`ShardedIndex::reader`], or hand reader
/// threads a [`ReaderHandle`] so they can keep taking fresh snapshots
/// while the writer holds the index mutably.
///
/// Queries through the index itself ([`ShardedIndex::candidates`], or a
/// front-end built with its `build_sharded` constructor) read the
/// writer's current state; queries through a [`Snapshot`] read that
/// snapshot's frozen state. Both answer bit-identically to an unsharded
/// [`DynamicIndex`] at the same schedule point (see the module docs).
///
/// ```
/// use dsh_core::points::{BitStore, BitVector};
/// use dsh_hamming::BitSampling;
/// use dsh_index::ShardedIndex;
/// use dsh_math::rng::seeded;
///
/// let d = 64;
/// let mut rng = seeded(7);
/// let mut idx = ShardedIndex::build(&BitSampling::new(d), BitStore::with_dim(d), 8, 4, &mut rng);
/// let p = BitVector::random(&mut rng, d);
/// let id = idx.insert(&p).unwrap();
///
/// let snapshot = idx.reader(); // frozen at 1 point
/// idx.remove(id).unwrap();
/// assert!(!idx.candidates(&p, None).0.contains(&id));
/// assert!(snapshot.candidates(&p, None).0.contains(&id)); // still pre-remove
/// ```
pub struct ShardedIndex<S: AppendStore + Clone> {
    /// The writer's current state (always equal to the published cell).
    state: Arc<ShardedState<S>>,
    /// The shared publication cell reader handles clone snapshots from.
    published: Arc<RwLock<Arc<ShardedState<S>>>>,
}

impl<S: AppendStore + Clone> ShardedIndex<S> {
    /// Build with `l` sampled `(h, g)` pairs over `num_shards` shards and
    /// an initial point set (which may be empty). The RNG stream consumed
    /// is identical to [`DynamicIndex::build`], and all shards share the
    /// sampled pairs — the root of sharded/unsharded bit-parity.
    pub fn build(
        family: &(impl DshFamily<S::Row> + ?Sized),
        points: S,
        l: usize,
        num_shards: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        Self::build_with_threads(
            family,
            points,
            l,
            num_shards,
            rng,
            parallel::available_threads(),
        )
    }

    /// [`ShardedIndex::build`] with an explicit worker-thread count (the
    /// built index does not depend on it).
    // `points` is taken by value to match every other build front-end,
    // even though sharding copies rows out instead of consuming the store.
    #[allow(clippy::needless_pass_by_value)]
    pub fn build_with_threads(
        family: &(impl DshFamily<S::Row> + ?Sized),
        points: S,
        l: usize,
        num_shards: usize,
        rng: &mut dyn Rng,
        threads: usize,
    ) -> Self {
        // lint: allow(panic) — build-time parameter validation, not on the query path
        assert!(num_shards >= 1, "need at least one shard");
        // lint: allow(panic) — build-time parameter validation, not on the query path
        assert!(l >= 1, "need at least one repetition");
        // lint: allow(panic) — build-time capacity check, not on the query path
        assert!(
            points.len() <= MAX_POINTS,
            "point count exceeds the u32 point-id capacity"
        );
        let pairs: Vec<HasherPair<S::Row>> = (0..l).map(|_| family.sample(rng)).collect();
        let mut shard_rows: Vec<S> = (0..num_shards).map(|_| points.empty_like()).collect();
        for i in 0..points.len() {
            shard_rows[i % num_shards].push_row(points.row(i));
        }
        let shards: Vec<Arc<DynamicIndex<ChunkedStore<S>>>> = shard_rows
            .into_iter()
            .map(|rows| {
                Arc::new(DynamicIndex::with_pairs(
                    pairs.clone(),
                    ChunkedStore::from_store(rows),
                    threads,
                ))
            })
            .collect();
        let segments = if points.is_empty() {
            Vec::new()
        } else {
            vec![Self::single_segment_map(&shards)]
        };
        let state = Arc::new(ShardedState {
            shards,
            segments,
            total_rows: points.len(),
            epoch: 0,
        });
        ShardedIndex {
            published: Arc::new(RwLock::new(Arc::clone(&state))),
            state,
        }
    }

    /// The logical map of a one-segment-per-shard layout (initial bulk
    /// build, or right after a compaction).
    fn single_segment_map(shards: &[Arc<DynamicIndex<ChunkedStore<S>>>]) -> Vec<Option<usize>> {
        shards
            .iter()
            .map(|sh| (sh.sealed_segments() > 0).then_some(0))
            .collect()
    }

    fn fork(&self) -> ShardedState<S> {
        (*self.state).clone()
    }

    /// Pretend the id space already holds `total` ids — the only
    /// practical way to park the index at the [`MAX_POINTS`] boundary
    /// and exercise the rejection paths without 4B real inserts. Writes
    /// must reject *before* forking, so the (now inconsistent) shard
    /// contents are never touched.
    #[cfg(test)]
    fn force_total_rows(&mut self, total: usize) {
        Arc::make_mut(&mut self.state).total_rows = total;
    }

    fn publish(&mut self, mut next: ShardedState<S>) {
        next.epoch = self.state.epoch + 1;
        let next = Arc::new(next);
        self.state = Arc::clone(&next);
        // Poisoning policy: the cell only ever holds a fully-formed
        // `Arc<ShardedState>` and the critical section is a single pointer
        // swap, so a panic while the lock is held cannot leave a torn
        // value — the last published epoch stays consistent. Recover the
        // guard instead of propagating the poison, which would otherwise
        // take down every wait-free reader forever after one writer panic.
        *self
            .published
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = next;
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.state.num_shards()
    }

    /// Number of repetitions `L`.
    pub fn repetitions(&self) -> usize {
        self.state.repetitions()
    }

    /// Number of live points across all shards.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no live points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the largest global id ever assigned.
    pub fn id_bound(&self) -> usize {
        self.state.total_rows
    }

    /// Whether global id `id` has been inserted and not removed.
    pub fn is_live(&self, id: usize) -> bool {
        self.state.is_live(id)
    }

    /// Iterate over the live global ids in increasing order.
    pub fn live_ids(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.state.total_rows).filter(|&id| self.state.is_live(id))
    }

    /// Number of removed (tombstoned) ids not yet reclaimed.
    pub fn removed(&self) -> usize {
        self.state.removed()
    }

    /// Total points sitting in the shards' delta segments.
    pub fn delta_rows(&self) -> usize {
        self.state.delta_rows()
    }

    /// Number of **logical** sealed segments (what an unsharded index
    /// driven through the same schedule would report).
    pub fn sealed_segments(&self) -> usize {
        self.state.segments.len()
    }

    /// Number of state publications since the build.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// Borrow the row of point `id` (rows remain addressable after
    /// removal; stores are append-only).
    pub fn point(&self, id: usize) -> &S::Row {
        self.state.point(id)
    }

    /// An immutable snapshot of the current state. Stays valid — and
    /// keeps answering identically — no matter what writers do next.
    pub fn reader(&self) -> Snapshot<S> {
        Snapshot {
            state: Arc::clone(&self.state),
        }
    }

    /// A cloneable, `Send` handle other threads use to take fresh
    /// snapshots while this index is being written through `&mut self`.
    pub fn reader_handle(&self) -> ReaderHandle<S> {
        ReaderHandle {
            cell: Arc::clone(&self.published),
        }
    }

    /// Insert a point, returning its global id. The point lands in shard
    /// `id % num_shards()`; the new state is published before returning.
    /// A full id space ([`MAX_POINTS`]) rejects the insert with
    /// [`WriteError::CapacityExceeded`] before anything is forked — no
    /// state change, no publication.
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        // lint: allow(publish) — a rejected insert must leave the index untouched: no fork, no publication
        ensure_capacity(self.state.total_rows, 1)?;
        let mut next = self.fork();
        let id = next.total_rows;
        let n = next.num_shards();
        let local = Arc::make_mut(&mut next.shards[id % n]).insert_row(p.as_row());
        debug_assert_eq!(local, id / n);
        next.total_rows += 1;
        self.publish(next);
        Ok(id)
    }

    /// Remove global id `id` (tombstone; reclaimed at the next
    /// compaction). Returns `Ok(false)` when already removed — in that
    /// case nothing changed, so nothing is forked and **no new epoch is
    /// published**: readers never observe epoch churn for a no-op write.
    /// An id that was never assigned rejects with
    /// [`WriteError::UnknownId`], also without fork or publication.
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        // lint: allow(publish) — a rejected remove must leave the index untouched: no fork, no publication
        ensure_known(id, self.state.total_rows)?;
        if !self.state.is_live(id) {
            // lint: allow(publish) — double-remove changes nothing; publishing would be reader-visible epoch churn for a no-op
            return Ok(false);
        }
        let mut next = self.fork();
        let n = next.num_shards();
        let removed = Arc::make_mut(&mut next.shards[id % n]).remove_unchecked(id / n);
        debug_assert!(removed, "liveness was checked before forking");
        self.publish(next);
        Ok(removed)
    }

    /// An empty [`WriteBatch`] staging rows of this index's shape, for
    /// [`ShardedIndex::apply_batch`].
    pub fn new_batch(&self) -> WriteBatch<S> {
        WriteBatch::new(self.state.shards[0].store().empty_inner())
    }

    /// Apply a staged batch of inserts and removes in order as **one
    /// group commit**: the whole batch is validated up front (an
    /// out-of-range remove anywhere in it rejects the batch with a
    /// descriptive [`BatchError`] *before* any fork — no partial
    /// application, no serving-path panic), each touched shard is forked
    /// exactly once, every operation is applied to that shard's
    /// delta/tail, grown write-head tails are frozen once at the end,
    /// and **one** epoch is published for the entire batch — or none at
    /// all when the batch changed nothing (empty, or pure
    /// double-removes).
    ///
    /// The resulting index answers bit-identically to the per-op replay
    /// of the same operations (ids, order, full
    /// [`crate::QueryStats`]); only the epoch count differs.
    pub fn apply_batch<BS>(
        &mut self,
        batch: &WriteBatch<BS>,
    ) -> Result<Vec<WriteOutcome>, BatchError>
    where
        BS: AppendStore<Row = S::Row>,
    {
        // lint: allow(publish) — a rejected batch must leave the index untouched: no fork, no publication
        batch.validate(self.state.total_rows)?;
        if batch.is_empty() {
            // lint: allow(publish) — an empty batch changes nothing; keep the epoch
            return Ok(Vec::new());
        }
        let mut next = self.fork();
        let n = next.num_shards();
        let mut touched = vec![false; n];
        let mut outcomes = Vec::with_capacity(batch.len());
        let mut changed = false;
        for op in batch.ops() {
            match *op {
                BatchOp::Insert(slot) => {
                    let id = next.total_rows;
                    let local = Arc::make_mut(&mut next.shards[id % n]).insert_row(batch.row(slot));
                    debug_assert_eq!(local, id / n);
                    next.total_rows += 1;
                    touched[id % n] = true;
                    changed = true;
                    outcomes.push(WriteOutcome::Inserted(id));
                }
                BatchOp::Remove(id) => {
                    let id = id as usize;
                    let removed = Arc::make_mut(&mut next.shards[id % n]).remove_unchecked(id / n);
                    touched[id % n] = true;
                    changed |= removed;
                    outcomes.push(WriteOutcome::Removed(removed));
                }
            }
        }
        if !changed {
            // lint: allow(publish) — every op was a double-remove: the fork equals the current state, drop it and keep the epoch
            return Ok(outcomes);
        }
        Self::freeze_grown_tails(&mut next, &touched);
        self.publish(next);
        Ok(outcomes)
    }

    /// Insert every row of `points` in order as one group commit,
    /// returning the assigned global ids. Equivalent to a
    /// [`WriteBatch`] of pure inserts: each touched shard is forked
    /// once and **one** epoch is published for the whole batch (none
    /// for an empty `points`). A batch that would overflow
    /// [`MAX_POINTS`] is rejected whole with
    /// [`WriteError::CapacityExceeded`] — no fork, no publication.
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        // lint: allow(publish) — a rejected batch must leave the index untouched: no fork, no publication
        ensure_capacity(self.state.total_rows, points.len())?;
        if points.is_empty() {
            // lint: allow(publish) — nothing to insert; keep the epoch
            return Ok(Vec::new());
        }
        let mut next = self.fork();
        let n = next.num_shards();
        let mut touched = vec![false; n];
        for j in 0..points.len().min(n) {
            touched[(next.total_rows + j) % n] = true;
        }
        // Reserve each touched shard's tail in one pass before appending.
        let per_shard = points.len().div_ceil(n);
        for (shard, &t) in touched.iter().enumerate() {
            if t {
                Arc::make_mut(&mut next.shards[shard])
                    .store_mut()
                    .reserve_rows(per_shard);
            }
        }
        let mut ids = Vec::with_capacity(points.len());
        for i in 0..points.len() {
            let id = next.total_rows;
            let local = Arc::make_mut(&mut next.shards[id % n]).insert_row(points.row(i));
            debug_assert_eq!(local, id / n);
            next.total_rows += 1;
            ids.push(id);
        }
        Self::freeze_grown_tails(&mut next, &touched);
        self.publish(next);
        Ok(ids)
    }

    /// Remove every id in `ids` in order as one group commit, returning
    /// the per-id results ([`ShardedIndex::remove`] semantics). The
    /// whole batch is validated first: any never-assigned id rejects it
    /// with [`WriteError::UnknownId`] — no fork, no publication, no
    /// partial application. One epoch is published iff at least one id
    /// was actually live; a batch of pure double-removes publishes
    /// nothing.
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        for &id in ids {
            // lint: allow(publish) — a rejected batch must leave the index untouched: no fork, no publication
            ensure_known(id, self.state.total_rows)?;
        }
        if !ids.iter().any(|&id| self.state.is_live(id)) {
            // lint: allow(publish) — every id is already removed: nothing changes, keep the epoch
            return Ok(vec![false; ids.len()]);
        }
        let mut next = self.fork();
        let n = next.num_shards();
        let out = ids
            .iter()
            .map(|&id| Arc::make_mut(&mut next.shards[id % n]).remove_unchecked(id / n))
            .collect();
        self.publish(next);
        Ok(out)
    }

    /// Rows a shard's mutable store tail may accumulate before a batched
    /// write freezes it into a shared chunk. Per-op writes only freeze at
    /// [`ShardedIndex::seal`]; batched writes amortize the freeze here so
    /// the next fork's tail copy stays bounded without creating a chunk
    /// per tiny batch.
    const FREEZE_TAIL_ROWS: usize = 64;

    /// Freeze the write-head tail of every shard this batch touched once
    /// it has grown past [`Self::FREEZE_TAIL_ROWS`]. Chunk layout is not
    /// query-observable, so this cannot perturb per-op parity.
    fn freeze_grown_tails(next: &mut ShardedState<S>, touched: &[bool]) {
        for (shard, &t) in next.shards.iter_mut().zip(touched) {
            if t && shard.store().tail_rows() >= Self::FREEZE_TAIL_ROWS {
                // The shard was forked by this batch, so make_mut is free.
                Arc::make_mut(shard).store_mut().freeze_tail();
            }
        }
    }

    /// Freeze every shard's delta segment into a sealed CSR segment and
    /// publish once. A new logical segment is recorded iff any shard's
    /// delta held a live row — exactly when an unsharded
    /// [`DynamicIndex::seal`] over the union delta would have sealed one.
    pub fn seal(&mut self) {
        self.seal_with_threads(parallel::available_threads());
    }

    /// [`ShardedIndex::seal`] with an explicit worker-thread count.
    pub fn seal_with_threads(&mut self, threads: usize) {
        // Every shard's delta is empty: sealing would change nothing
        // (no delta to clear, no segment to create — exactly when the
        // unsharded seal is a no-op), so publishing would be pure
        // reader-visible epoch churn.
        if self.state.delta_rows() == 0 {
            // lint: allow(publish) — empty-delta seal is a no-op; keep the epoch
            return;
        }
        let mut next = self.fork();
        let will_seal: Vec<bool> = next
            .shards
            .iter()
            .map(|sh| sh.delta_rows() > 0 && sh.delta_has_live_rows())
            .collect();
        for shard in &mut next.shards {
            if shard.delta_rows() == 0 {
                continue;
            }
            let sh = Arc::make_mut(shard);
            sh.seal_with_threads(threads);
            // Retire the store's write head alongside the delta, so every
            // future snapshot clone shares these rows instead of copying.
            sh.store_mut().freeze_tail();
        }
        if will_seal.iter().any(|&w| w) {
            let map = next
                .shards
                .iter()
                .zip(&will_seal)
                .map(|(sh, &w)| w.then(|| sh.sealed_segments() - 1))
                .collect();
            next.segments.push(map);
        }
        self.publish(next);
    }

    /// Compact every shard down to one sealed segment, dropping
    /// tombstones. The per-shard merges fan out across scoped worker
    /// threads **off the publication path** — readers keep taking
    /// snapshots of the old state throughout — and the new segment set is
    /// published with one atomic swap at the end.
    pub fn compact(&mut self) {
        self.compact_with_threads(parallel::available_threads());
    }

    /// [`ShardedIndex::compact`] with an explicit worker-thread count
    /// (the resulting layout does not depend on it).
    pub fn compact_with_threads(&mut self, threads: usize) {
        // Zero sealed segments and an empty delta: the merge would
        // rebuild the empty layout it started from (tombstone bits are
        // never cleared by compaction), so skip the fork and keep the
        // epoch instead of publishing a bit-identical state.
        if self.state.segments.is_empty() && self.state.delta_rows() == 0 {
            // lint: allow(publish) — segmentless + empty-delta compact is a no-op; keep the epoch
            return;
        }
        let mut next = self.fork();
        let per_shard = (threads / next.num_shards()).max(1);
        next.shards = parallel::map_items(&next.shards, threads, |_, shard| {
            let mut sh = (**shard).clone();
            sh.compact_with_threads(per_shard);
            sh.store_mut().consolidate();
            Arc::new(sh)
        });
        next.segments = if next.shards.iter().any(|sh| sh.sealed_segments() > 0) {
            vec![Self::single_segment_map(&next.shards)]
        } else {
            Vec::new()
        };
        self.publish(next);
    }

    /// A query scratch buffer sized for the current id space (see
    /// [`DynamicIndex::new_scratch`] for the staleness contract).
    pub fn new_scratch(&self) -> QueryScratch {
        self.state.new_scratch()
    }

    /// Retrieve distinct live candidate ids for `q` in retrieval order,
    /// bit-identically to the equivalent unsharded
    /// [`DynamicIndex::candidates`].
    pub fn candidates<Q>(&self, q: &Q, retrieval_limit: Option<usize>) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.state
            .candidates_row(q.as_row(), retrieval_limit, &mut self.new_scratch())
    }

    /// [`ShardedIndex::candidates`] against a caller-provided scratch.
    pub fn candidates_with<Q>(
        &self,
        q: &Q,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.state
            .candidates_row(q.as_row(), retrieval_limit, scratch)
    }

    /// Batched [`ShardedIndex::candidates`], fanned out across worker
    /// threads with one scratch per worker; identical to a
    /// query-at-a-time loop.
    pub fn candidates_batch<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.candidates_batch_with_threads(queries, retrieval_limit, parallel::available_threads())
    }

    /// [`ShardedIndex::candidates_batch`] with an explicit worker-thread
    /// count (the output does not depend on it).
    pub fn candidates_batch_with_threads<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
        threads: usize,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.state
            .candidates_batch_with_threads(queries, retrieval_limit, threads)
    }
}

impl<S: AppendStore + Clone> CandidateBackend for ShardedIndex<S> {
    type Row = S::Row;

    fn repetitions(&self) -> usize {
        ShardedIndex::repetitions(self)
    }

    fn indexed_len(&self) -> usize {
        self.id_bound()
    }

    fn point(&self, i: usize) -> &S::Row {
        ShardedIndex::point(self, i)
    }

    #[inline]
    fn prefetch_point(&self, i: usize) {
        self.state.prefetch_point(i);
    }

    fn new_scratch(&self) -> QueryScratch {
        ShardedIndex::new_scratch(self)
    }

    fn candidates_row(
        &self,
        q: &S::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats) {
        self.state.candidates_row(q, retrieval_limit, scratch)
    }
}

/// An immutable view of a [`ShardedIndex`] at one publication epoch.
///
/// Holding a snapshot never blocks writers, and no writer activity —
/// inserts, removals, seals, compactions — changes what it answers: its
/// candidate lists, stats, live-id set, and rows are frozen at
/// acquisition time. Cloning is a reference-count bump.
pub struct Snapshot<S: AppendStore + Clone> {
    state: Arc<ShardedState<S>>,
}

impl<S: AppendStore + Clone> Clone for Snapshot<S> {
    fn clone(&self) -> Self {
        Snapshot {
            state: Arc::clone(&self.state),
        }
    }
}

impl<S: AppendStore + Clone> Snapshot<S> {
    /// The publication epoch this snapshot was taken at (the number of
    /// writes applied before it).
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.state.num_shards()
    }

    /// Number of repetitions `L`.
    pub fn repetitions(&self) -> usize {
        self.state.repetitions()
    }

    /// Number of live points at this epoch.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// True when no live points were indexed at this epoch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the largest global id assigned at this epoch.
    pub fn id_bound(&self) -> usize {
        self.state.total_rows
    }

    /// Whether `id` was live at this epoch.
    pub fn is_live(&self, id: usize) -> bool {
        self.state.is_live(id)
    }

    /// Iterate over the ids live at this epoch, in increasing order.
    pub fn live_ids(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.state.total_rows).filter(|&id| self.state.is_live(id))
    }

    /// Borrow the row of point `id` as stored at this epoch.
    pub fn point(&self, id: usize) -> &S::Row {
        self.state.point(id)
    }

    /// A query scratch buffer sized for this snapshot's id space.
    pub fn new_scratch(&self) -> QueryScratch {
        self.state.new_scratch()
    }

    /// Retrieve distinct candidate ids exactly as the index answered at
    /// this snapshot's epoch.
    pub fn candidates<Q>(&self, q: &Q, retrieval_limit: Option<usize>) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.state
            .candidates_row(q.as_row(), retrieval_limit, &mut self.new_scratch())
    }

    /// [`Snapshot::candidates`] against a caller-provided scratch.
    pub fn candidates_with<Q>(
        &self,
        q: &Q,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.state
            .candidates_row(q.as_row(), retrieval_limit, scratch)
    }

    /// Batched [`Snapshot::candidates`] with worker-thread fan-out.
    pub fn candidates_batch<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.state.candidates_batch_with_threads(
            queries,
            retrieval_limit,
            parallel::available_threads(),
        )
    }

    /// [`Snapshot::candidates_batch`] with an explicit worker-thread
    /// count (the output does not depend on it).
    pub fn candidates_batch_with_threads<QS>(
        &self,
        queries: &QS,
        retrieval_limit: Option<usize>,
        threads: usize,
    ) -> Vec<(Vec<usize>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.state
            .candidates_batch_with_threads(queries, retrieval_limit, threads)
    }
}

impl<S: AppendStore + Clone> CandidateBackend for Snapshot<S> {
    type Row = S::Row;

    fn repetitions(&self) -> usize {
        Snapshot::repetitions(self)
    }

    fn indexed_len(&self) -> usize {
        self.id_bound()
    }

    fn point(&self, i: usize) -> &S::Row {
        Snapshot::point(self, i)
    }

    #[inline]
    fn prefetch_point(&self, i: usize) {
        self.state.prefetch_point(i);
    }

    fn new_scratch(&self) -> QueryScratch {
        Snapshot::new_scratch(self)
    }

    fn candidates_row(
        &self,
        q: &S::Row,
        retrieval_limit: Option<usize>,
        scratch: &mut QueryScratch,
    ) -> (Vec<usize>, QueryStats) {
        self.state.candidates_row(q, retrieval_limit, scratch)
    }
}

/// A cloneable, thread-safe source of fresh [`Snapshot`]s.
///
/// Reader threads hold one of these while the writer thread holds the
/// [`ShardedIndex`] itself (`&mut`); each [`ReaderHandle::snapshot`] call
/// observes the latest published epoch. Acquisition cost is one
/// briefly-held read lock plus an `Arc` clone — constant even while a
/// compaction is rebuilding segments on other threads.
pub struct ReaderHandle<S: AppendStore + Clone> {
    cell: Arc<RwLock<Arc<ShardedState<S>>>>,
}

impl<S: AppendStore + Clone> Clone for ReaderHandle<S> {
    fn clone(&self) -> Self {
        ReaderHandle {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<S: AppendStore + Clone> ReaderHandle<S> {
    /// The latest published snapshot.
    ///
    /// Survives a poisoned cell: publication is a single pointer swap of a
    /// fully-formed `Arc`, so even if a writer panicked mid-publish the
    /// cell still holds a consistent epoch (see the poisoning policy on
    /// `ShardedIndex::publish`). Readers must never be taken down by a
    /// writer-side panic.
    pub fn snapshot(&self) -> Snapshot<S> {
        Snapshot {
            state: Arc::clone(
                &self
                    .cell
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::{BitStore, BitVector};
    use dsh_hamming::BitSampling;
    use dsh_math::rng::seeded;

    fn dataset(seed: u64, d: usize, n: usize) -> Vec<BitVector> {
        let mut rng = seeded(seed);
        (0..n).map(|_| BitVector::random(&mut rng, d)).collect()
    }

    fn store_of(points: &[BitVector], d: usize) -> BitStore {
        let mut s = BitStore::with_dim(d);
        for p in points {
            s.push(p);
        }
        s
    }

    /// Sharded and unsharded indexes driven through the same schedule
    /// must agree bit-for-bit, at every checkpoint, for every shard
    /// count. (The full sweep lives in `tests/shard_parity.rs`; this is
    /// the module-level smoke version.)
    #[test]
    fn matches_unsharded_dynamic_index_through_a_schedule() {
        let d = 64;
        let points = dataset(0x5A01, d, 120);
        let queries = dataset(0x5A02, d, 8);
        let l = 8;
        for shards in [1usize, 2, 8] {
            let mut dynamic = DynamicIndex::build(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                l,
                &mut seeded(0x5A03),
            );
            let mut sharded = ShardedIndex::build(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                l,
                shards,
                &mut seeded(0x5A03),
            );
            for (i, p) in points.iter().enumerate() {
                assert_eq!(dynamic.insert(p), sharded.insert(p));
                if i % 9 == 4 {
                    assert_eq!(dynamic.remove(i), sharded.remove(i));
                }
                if i % 31 == 30 {
                    dynamic.seal();
                    sharded.seal();
                }
                if i % 67 == 66 {
                    dynamic.compact();
                    sharded.compact();
                }
                if i % 17 == 0 {
                    for q in &queries {
                        for limit in [None, Some(3 * l)] {
                            assert_eq!(
                                dynamic.candidates(q, limit),
                                sharded.candidates(q, limit),
                                "shards {shards}, step {i}, limit {limit:?}"
                            );
                        }
                    }
                }
            }
            assert_eq!(dynamic.sealed_segments(), sharded.sealed_segments());
            assert_eq!(dynamic.delta_rows(), sharded.delta_rows());
            assert_eq!(dynamic.len(), sharded.len());
        }
    }

    #[test]
    fn initial_bulk_build_matches_unsharded() {
        let d = 64;
        let points = dataset(0x5A10, d, 90);
        let queries = dataset(0x5A11, d, 6);
        let dynamic = DynamicIndex::build(
            &BitSampling::new(d),
            store_of(&points, d),
            6,
            &mut seeded(0x5A12),
        );
        for shards in [1usize, 2, 8] {
            let sharded = ShardedIndex::build(
                &BitSampling::new(d),
                store_of(&points, d),
                6,
                shards,
                &mut seeded(0x5A12),
            );
            assert_eq!(sharded.sealed_segments(), 1);
            for q in &queries {
                assert_eq!(
                    dynamic.candidates(q, None),
                    sharded.candidates(q, None),
                    "shards {shards}"
                );
            }
        }
    }

    #[test]
    fn snapshots_freeze_their_state_across_every_write_kind() {
        let d = 64;
        let points = dataset(0x5A20, d, 60);
        let queries = dataset(0x5A21, d, 5);
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            6,
            4,
            &mut seeded(0x5A22),
        );
        for p in &points[..40] {
            idx.insert(p).unwrap();
        }
        let snapshot = idx.reader();
        let frozen: Vec<_> = queries
            .iter()
            .map(|q| snapshot.candidates(q, None))
            .collect();
        let frozen_live: Vec<usize> = snapshot.live_ids().collect();
        assert_eq!(snapshot.epoch(), 40);

        // Every kind of write, including segment-layout changes.
        for p in &points[40..] {
            idx.insert(p).unwrap();
        }
        idx.remove(3).unwrap();
        idx.remove(17).unwrap();
        idx.seal();
        idx.compact();
        assert!(idx.epoch() > snapshot.epoch());

        let after: Vec<_> = queries
            .iter()
            .map(|q| snapshot.candidates(q, None))
            .collect();
        assert_eq!(frozen, after, "snapshot answers changed under writes");
        assert_eq!(frozen_live, snapshot.live_ids().collect::<Vec<_>>());
        assert_eq!(snapshot.id_bound(), 40);
        // The writer's view did move on.
        assert_eq!(idx.id_bound(), 60);
        assert!(!idx.is_live(3));
        assert!(snapshot.is_live(3));
    }

    #[test]
    fn reader_handle_sees_each_published_epoch() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            2,
            &mut seeded(0x5A30),
        );
        let handle = idx.reader_handle();
        assert_eq!(handle.snapshot().epoch(), 0);
        let p = BitVector::random(&mut seeded(0x5A31), d);
        idx.insert(&p).unwrap();
        assert_eq!(handle.snapshot().epoch(), 1);
        assert_eq!(handle.snapshot().len(), 1);
        idx.remove(0).unwrap();
        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.len(), 0);
        // The delta still holds the (tombstoned) row, so sealing clears
        // it — a real state change, published as epoch 3...
        idx.seal();
        assert_eq!(handle.snapshot().epoch(), 3);
        // ...but it created no segment, so the follow-up compact has
        // zero segments and an empty delta: a no-op, and no-op writes
        // publish no epoch.
        idx.compact();
        assert_eq!(handle.snapshot().epoch(), 3);
    }

    /// Satellite regression: a double-remove returns `false` and leaves
    /// the reader-visible epoch untouched — no fork, no publication.
    #[test]
    fn double_remove_publishes_no_epoch() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            2,
            &mut seeded(0x5A70),
        );
        let handle = idx.reader_handle();
        let p = BitVector::random(&mut seeded(0x5A71), d);
        idx.insert(&p).unwrap();
        idx.insert(&p).unwrap();
        assert_eq!(idx.remove(1), Ok(true));
        assert_eq!(handle.snapshot().epoch(), 3);
        assert_eq!(
            idx.remove(1),
            Ok(false),
            "second remove must report Ok(false)"
        );
        assert_eq!(
            handle.snapshot().epoch(),
            3,
            "double-remove must not publish a new epoch"
        );
        assert_eq!(idx.epoch(), 3);
        // The no-op also didn't perturb the state: the next real write
        // publishes the very next epoch.
        assert_eq!(idx.remove(0), Ok(true));
        assert_eq!(handle.snapshot().epoch(), 4);
    }

    /// Satellite regression: sealing with every delta empty, and
    /// compacting with zero segments and an empty delta, are no-ops
    /// without publication — and stay in lockstep with the unsharded
    /// `DynamicIndex` driven through the same schedule.
    #[test]
    fn empty_seal_and_segmentless_compact_publish_no_epoch() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            2,
            &mut seeded(0x5A75),
        );
        let mut unsharded = DynamicIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            &mut seeded(0x5A75),
        );
        let handle = idx.reader_handle();
        let q = BitVector::random(&mut seeded(0x5A76), d);

        // Fresh index: nothing to seal, nothing to compact.
        idx.seal();
        idx.compact();
        unsharded.seal();
        unsharded.compact();
        assert_eq!(handle.snapshot().epoch(), 0, "no-op writes published");
        assert_eq!(idx.sealed_segments(), unsharded.sealed_segments());

        // A real seal publishes exactly one epoch...
        idx.insert(&q).unwrap();
        unsharded.insert(&q).unwrap();
        idx.seal();
        unsharded.seal();
        assert_eq!(handle.snapshot().epoch(), 2);
        assert_eq!(idx.sealed_segments(), 1);
        // ...and re-sealing the now-empty delta publishes nothing.
        idx.seal();
        unsharded.seal();
        assert_eq!(handle.snapshot().epoch(), 2, "empty seal published");
        assert_eq!(idx.delta_rows(), unsharded.delta_rows());
        assert_eq!(idx.sealed_segments(), unsharded.sealed_segments());

        // Compact with a segment present is a real write (epoch 3);
        // compacting the already-empty layout after removing everything
        // is exercised in `empty_index_answers_and_compacts`.
        idx.compact();
        unsharded.compact();
        assert_eq!(handle.snapshot().epoch(), 3);
        assert_eq!(
            idx.candidates(&q, None),
            unsharded.candidates(&q, None),
            "no-op suppression broke sharded/unsharded parity"
        );
    }

    #[test]
    fn readers_and_writers_survive_a_poisoned_publication_cell() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            2,
            &mut seeded(0x5A35),
        );
        let p = BitVector::random(&mut seeded(0x5A36), d);
        idx.insert(&p).unwrap();
        let handle = idx.reader_handle();
        assert_eq!(handle.snapshot().epoch(), 1);

        // Poison the publication cell: a thread panics while holding the
        // write guard, exactly what a panicking writer mid-publish does.
        let cell = Arc::clone(&idx.published);
        let t = std::thread::spawn(move || {
            let _guard = cell.write().unwrap();
            panic!("writer dies while holding the publication lock");
        });
        assert!(t.join().is_err(), "thread must have panicked");

        // Readers still observe the last published epoch (the cell always
        // holds a fully-formed Arc; see the poisoning policy on publish)...
        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.len(), 1);
        // ...and the writer can keep publishing through the poisoned cell.
        let q = BitVector::random(&mut seeded(0x5A37), d);
        idx.insert(&q).unwrap();
        assert_eq!(handle.snapshot().epoch(), 2);
        assert_eq!(handle.snapshot().len(), 2);
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let d = 64;
        let points = dataset(0x5A40, d, 100);
        let queries = dataset(0x5A41, d, 21);
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            7,
            3,
            &mut seeded(0x5A42),
        );
        for (i, p) in points.iter().enumerate() {
            idx.insert(p).unwrap();
            if i == 49 {
                idx.seal();
            }
            if i % 7 == 3 {
                idx.remove(i).unwrap();
            }
        }
        for limit in [None, Some(13)] {
            let sequential: Vec<_> = queries.iter().map(|q| idx.candidates(q, limit)).collect();
            for threads in [1usize, 3, 8] {
                assert_eq!(
                    sequential,
                    idx.candidates_batch_with_threads(&queries, limit, threads),
                    "threads {threads}, limit {limit:?}"
                );
            }
            assert_eq!(
                sequential,
                idx.reader().candidates_batch(&queries, limit),
                "snapshot batch, limit {limit:?}"
            );
        }
    }

    #[test]
    fn empty_index_answers_and_compacts() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            8,
            &mut seeded(0x5A50),
        );
        assert!(idx.is_empty());
        assert_eq!(idx.sealed_segments(), 0);
        let q = BitVector::random(&mut seeded(0x5A51), d);
        let (cands, stats) = idx.candidates(&q, None);
        assert!(cands.is_empty());
        assert_eq!(stats, QueryStats::default());
        idx.seal();
        idx.compact();
        assert!(idx.is_empty());
        // Insert into a single shard, remove it, compact: all segments drop.
        let id = idx.insert(&q).unwrap();
        idx.seal();
        assert_eq!(idx.sealed_segments(), 1);
        idx.remove(id).unwrap();
        idx.compact();
        assert_eq!(idx.sealed_segments(), 0);
        assert_eq!(idx.id_bound(), 1);
    }

    /// Tentpole smoke: one `apply_batch` call equals the per-op replay
    /// bit-for-bit (outcomes, candidates, stats, live set) while
    /// publishing exactly one epoch for the whole batch.
    #[test]
    fn apply_batch_matches_per_op_replay_and_publishes_once() {
        let d = 64;
        let points = dataset(0x5A80, d, 40);
        let queries = dataset(0x5A81, d, 6);
        let l = 6;
        for shards in [1usize, 2, 8] {
            let mut batched = ShardedIndex::build(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                l,
                shards,
                &mut seeded(0x5A82),
            );
            let mut per_op = ShardedIndex::build(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                l,
                shards,
                &mut seeded(0x5A82),
            );
            // Mixed batch: inserts interleaved with removes, including a
            // remove of an id inserted earlier in the same batch and a
            // double-remove (outcome false, but the batch still changes
            // state through its other ops).
            let mut batch = batched.new_batch();
            for p in &points[..10] {
                batch.insert(p);
            }
            batch.remove(3);
            batch.remove(3);
            for p in &points[10..20] {
                batch.insert(p);
            }
            batch.remove(15);
            let outcomes = batched.apply_batch(&batch).expect("valid batch");
            assert_eq!(batched.epoch(), 1, "one epoch per batch (shards {shards})");

            let mut want = Vec::new();
            for p in &points[..10] {
                want.push(WriteOutcome::Inserted(per_op.insert(p).unwrap()));
            }
            want.push(WriteOutcome::Removed(per_op.remove(3).unwrap()));
            want.push(WriteOutcome::Removed(per_op.remove(3).unwrap()));
            for p in &points[10..20] {
                want.push(WriteOutcome::Inserted(per_op.insert(p).unwrap()));
            }
            want.push(WriteOutcome::Removed(per_op.remove(15).unwrap()));
            assert_eq!(outcomes, want, "shards {shards}");

            assert_eq!(batched.len(), per_op.len());
            assert_eq!(
                batched.live_ids().collect::<Vec<_>>(),
                per_op.live_ids().collect::<Vec<_>>()
            );
            for q in &queries {
                for limit in [None, Some(2 * l)] {
                    assert_eq!(
                        per_op.candidates(q, limit),
                        batched.candidates(q, limit),
                        "shards {shards}, limit {limit:?}"
                    );
                }
            }
        }
    }

    /// Satellite regression: an out-of-range id anywhere in a batch
    /// rejects the whole batch with a descriptive `Err` before any fork
    /// — no partial application, no publication, no panic.
    #[test]
    fn invalid_batch_is_rejected_wholly_before_any_fork() {
        let d = 64;
        let points = dataset(0x5A90, d, 8);
        let q = &points[0];
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            2,
            &mut seeded(0x5A91),
        );
        for p in &points[..4] {
            idx.insert(p).unwrap();
        }
        let handle = idx.reader_handle();
        let before_epoch = idx.epoch();
        let before = idx.candidates(q, None);

        // Ops before the bad remove must NOT be applied.
        let mut batch = idx.new_batch();
        batch.insert(&points[4]);
        batch.insert(&points[5]);
        batch.remove(6); // bound is 4 + 2 staged inserts = 6: out of range
        let err = idx.apply_batch(&batch).unwrap_err();
        assert_eq!(
            err,
            BatchError::UnknownId {
                op_index: 2,
                id: 6,
                bound: 6
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("op 2") && msg.contains("id 6"), "{msg}");

        assert_eq!(idx.id_bound(), 4, "partial application leaked");
        assert_eq!(idx.epoch(), before_epoch, "rejected batch published");
        assert_eq!(handle.snapshot().epoch(), before_epoch);
        assert_eq!(idx.candidates(q, None), before);

        // The same ops without the stray remove apply cleanly.
        let mut batch = idx.new_batch();
        batch.insert(&points[4]);
        batch.insert(&points[5]);
        batch.remove(5);
        assert!(idx.apply_batch(&batch).is_ok());
        assert_eq!(idx.id_bound(), 6);
        assert_eq!(idx.epoch(), before_epoch + 1);
    }

    /// No-op batches — empty, or made entirely of double-removes —
    /// publish no epoch.
    #[test]
    fn noop_batches_publish_no_epoch() {
        let d = 32;
        let points = dataset(0x5AA0, d, 4);
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            4,
            2,
            &mut seeded(0x5AA1),
        );
        for p in &points {
            idx.insert(p).unwrap();
        }
        idx.remove(1).unwrap();
        idx.remove(2).unwrap();
        let epoch = idx.epoch();

        let empty = idx.new_batch();
        assert_eq!(idx.apply_batch(&empty), Ok(Vec::new()));
        assert_eq!(idx.epoch(), epoch, "empty batch published");

        let mut dead = idx.new_batch();
        dead.remove(1);
        dead.remove(2);
        dead.remove(1);
        assert_eq!(
            idx.apply_batch(&dead),
            Ok(vec![
                WriteOutcome::Removed(false),
                WriteOutcome::Removed(false),
                WriteOutcome::Removed(false)
            ])
        );
        assert_eq!(idx.epoch(), epoch, "all-double-remove batch published");

        assert_eq!(idx.remove_batch(&[1, 2]), Ok(vec![false, false]));
        assert_eq!(idx.epoch(), epoch, "no-op remove_batch published");
        assert_eq!(idx.insert_batch(&Vec::<BitVector>::new()), Ok(Vec::new()));
        assert_eq!(idx.epoch(), epoch, "empty insert_batch published");
    }

    /// `insert_batch`/`remove_batch` equal their per-op loops and
    /// publish one epoch each.
    #[test]
    fn insert_and_remove_batch_match_per_op_loops() {
        let d = 64;
        let points = dataset(0x5AB0, d, 30);
        let queries = dataset(0x5AB1, d, 5);
        let l = 6;
        for shards in [1usize, 3] {
            let mut batched = ShardedIndex::build(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                l,
                shards,
                &mut seeded(0x5AB2),
            );
            let mut per_op = ShardedIndex::build(
                &BitSampling::new(d),
                BitStore::with_dim(d),
                l,
                shards,
                &mut seeded(0x5AB2),
            );
            let ids = batched.insert_batch(&points).unwrap();
            assert_eq!(batched.epoch(), 1);
            let want: Vec<usize> = points.iter().map(|p| per_op.insert(p).unwrap()).collect();
            assert_eq!(ids, want);

            let victims = [0usize, 7, 8, 7, 29];
            let removed = batched.remove_batch(&victims).unwrap();
            assert_eq!(batched.epoch(), 2);
            let want: Vec<bool> = victims
                .iter()
                .map(|&id| per_op.remove(id).unwrap())
                .collect();
            assert_eq!(removed, want);
            assert_eq!(removed, vec![true, true, true, false, true]);

            for q in &queries {
                assert_eq!(
                    per_op.candidates(q, None),
                    batched.candidates(q, None),
                    "shards {shards}"
                );
            }
        }
    }

    /// Serving-path regression: a remove of a never-assigned id is a
    /// recoverable error (not a panic), publishes nothing, and leaves
    /// the index fully usable — the contract a long-lived server needs.
    #[test]
    fn remove_of_unknown_id_is_a_recoverable_error() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            2,
            2,
            &mut seeded(0x5A60),
        );
        let handle = idx.reader_handle();
        assert_eq!(
            idx.remove(0),
            Err(WriteError::UnknownId { id: 0, bound: 0 })
        );
        assert_eq!(
            idx.remove_batch(&[0, 1]),
            Err(WriteError::UnknownId { id: 0, bound: 0 })
        );
        assert_eq!(handle.snapshot().epoch(), 0, "rejected remove published");

        let p = BitVector::random(&mut seeded(0x5A64), d);
        let id = idx.insert(&p).unwrap();
        assert_eq!(
            idx.remove(id + 1),
            Err(WriteError::UnknownId { id: 1, bound: 1 })
        );
        // A batch mixing a live id with an unknown one is rejected whole.
        assert_eq!(
            idx.remove_batch(&[id, id + 1]),
            Err(WriteError::UnknownId { id: 1, bound: 1 })
        );
        assert!(idx.is_live(id), "partial application leaked");
        assert_eq!(idx.remove(id), Ok(true));
    }

    /// Satellite regression: both insert entry points share one
    /// capacity bound — the id space may fill to exactly `MAX_POINTS`,
    /// and the first write past it is rejected without fork,
    /// publication, or panic. (The index is parked at the boundary via
    /// a test seam; real inserts would need 4B rows.)
    #[test]
    fn capacity_boundary_is_shared_by_both_insert_entry_points() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            2,
            2,
            &mut seeded(0x5A65),
        );
        let p = BitVector::random(&mut seeded(0x5A66), d);
        idx.force_total_rows(MAX_POINTS);
        let epoch = idx.epoch();
        assert_eq!(
            idx.insert(&p),
            Err(WriteError::CapacityExceeded {
                id_bound: MAX_POINTS,
                additional: 1
            })
        );
        assert_eq!(
            idx.insert_batch(&vec![p.clone(), p.clone()]),
            Err(WriteError::CapacityExceeded {
                id_bound: MAX_POINTS,
                additional: 2
            })
        );
        let mut batch = idx.new_batch();
        batch.insert(&p);
        assert_eq!(
            idx.apply_batch(&batch),
            Err(BatchError::CapacityExceeded { op_index: 0 })
        );
        assert_eq!(idx.epoch(), epoch, "rejected writes published");
        // One id below the cap, every entry point admits one more id.
        idx.force_total_rows(MAX_POINTS - 1);
        let mut batch = idx.new_batch();
        batch.remove(MAX_POINTS - 2); // known id: validates against the forced bound
        assert!(batch.validate(idx.id_bound()).is_ok());
        assert_eq!(
            idx.insert_batch(&Vec::<BitVector>::new()),
            Ok(Vec::new()),
            "empty batch must pass the capacity check at the boundary"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let d = 32;
        let _ = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            2,
            0,
            &mut seeded(0x5A61),
        );
    }

    #[test]
    #[should_panic(expected = "sized for a different index")]
    fn stale_scratch_after_insert_rejected() {
        let d = 32;
        let mut idx = ShardedIndex::build(
            &BitSampling::new(d),
            BitStore::with_dim(d),
            2,
            2,
            &mut seeded(0x5A62),
        );
        let q = BitVector::random(&mut seeded(0x5A63), d);
        let mut scratch = idx.new_scratch();
        idx.insert(&q).unwrap();
        let _ = idx.candidates_with(&q, None, &mut scratch);
    }
}
