//! Approximate annulus search (Theorem 6.1, Definition 6.3).
//!
//! Given a DSH family whose CPF peaks inside the target annulus and is
//! small outside it, the data structure stores points under `h` and probes
//! under `g`; any retrieved candidate whose measure lies in the reporting
//! interval is returned. Following the proof of Theorem 6.1, the query
//! aborts after retrieving `8L` bucket entries — by Markov's inequality
//! this adds at most 1/8 failure probability while capping the work at
//! `O(L)` regardless of how adversarial the data is.

use crate::ann::repetition_count;
use crate::batch::WriteError;
use crate::dynamic::DynamicIndex;
use crate::parallel;
use crate::shard::ShardedIndex;
use crate::table::{CandidateBackend, HashTableIndex, QueryStats};
use dsh_core::family::DshFamily;
use dsh_core::points::{AppendStore, AsRow, PointStore};
use rand::Rng;

/// A pairwise measure (distance or similarity — the structure is
/// agnostic) over borrowed rows, used to verify candidates exactly.
/// Operating on rows (not owned points) is what lets the verification
/// pass stream a flat store's contiguous rows; see [`crate::measures`]
/// for the stock kernels.
pub type Measure<R> = Box<dyn Fn(&R, &R) -> f64 + Send + Sync>;

/// Annulus-search data structure: report a point whose measure to the
/// query lies in `[report_lo, report_hi]`, given that one exists in the
/// narrower planted interval.
///
/// Generic over the candidate backend `B`: the static
/// [`HashTableIndex`] (the default, built once over a fixed point set)
/// or the segmented [`DynamicIndex`] (built with
/// [`AnnulusIndex::build_dynamic`], grown and shrunk online).
pub struct AnnulusIndex<S: PointStore, B: CandidateBackend<Row = S::Row> = HashTableIndex<S>> {
    index: B,
    measure: Measure<S::Row>,
    report_lo: f64,
    report_hi: f64,
}

/// Result of an annulus query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnulusMatch {
    /// Index of the reported point.
    pub index: usize,
    /// Its exact measure to the query.
    pub value: f64,
}

impl<S: PointStore> AnnulusIndex<S> {
    /// Build with `l` repetitions of `family`. Per Theorem 6.1,
    /// `l ~ 1/f(r)` repetitions recover a point at the peak measure `r`
    /// with constant probability.
    ///
    /// Validates its inputs up front: `l >= 1`, a non-empty point set, and
    /// a finite, non-empty reporting interval.
    pub fn build(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        report_interval: (f64, f64),
        points: S,
        l: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            l >= 1,
            "AnnulusIndex: need at least one repetition (l >= 1)"
        );
        assert!(
            !points.is_empty(),
            "AnnulusIndex: cannot build over an empty point set"
        );
        assert!(
            report_interval.0.is_finite() && report_interval.1.is_finite(),
            "AnnulusIndex: reporting interval ({}, {}) must be finite",
            report_interval.0,
            report_interval.1
        );
        assert!(
            report_interval.0 <= report_interval.1,
            "empty reporting interval"
        );
        AnnulusIndex {
            index: HashTableIndex::build(family, points, l, rng),
            measure,
            report_lo: report_interval.0,
            report_hi: report_interval.1,
        }
    }
}

impl<S: AppendStore> AnnulusIndex<S, DynamicIndex<S>> {
    /// Build over a [`DynamicIndex`] backend: same parameters as
    /// [`AnnulusIndex::build`], but the point set may start empty and the
    /// returned index supports [`AnnulusIndex::insert`] /
    /// [`AnnulusIndex::remove`] / [`AnnulusIndex::compact`]. An index
    /// grown by inserts and compacted answers queries identically to a
    /// static build over the same final point set.
    pub fn build_dynamic(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        report_interval: (f64, f64),
        points: S,
        l: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            report_interval.0.is_finite() && report_interval.1.is_finite(),
            "AnnulusIndex: reporting interval ({}, {}) must be finite",
            report_interval.0,
            report_interval.1
        );
        assert!(
            report_interval.0 <= report_interval.1,
            "empty reporting interval"
        );
        AnnulusIndex {
            index: DynamicIndex::build(family, points, l, rng),
            measure,
            report_lo: report_interval.0,
            report_hi: report_interval.1,
        }
    }

    /// Insert a point into the backing [`DynamicIndex`], returning its id
    /// (a full id space rejects with the backend's [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.index.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.index.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.index.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.index.remove_batch(ids)
    }

    /// Freeze the delta segment; see [`DynamicIndex::seal`].
    pub fn seal(&mut self) {
        self.index.seal();
    }

    /// Merge all segments, dropping tombstones; see
    /// [`DynamicIndex::compact`].
    pub fn compact(&mut self) {
        self.index.compact();
    }
}

impl<S: AppendStore + Clone> AnnulusIndex<S, ShardedIndex<S>> {
    /// Build over a [`ShardedIndex`] backend: same parameters as
    /// [`AnnulusIndex::build_dynamic`] plus the shard count. Queries fan
    /// out across shards and answer bit-identically to the
    /// [`DynamicIndex`]-backed build.
    pub fn build_sharded(
        family: &(impl DshFamily<S::Row> + ?Sized),
        measure: Measure<S::Row>,
        report_interval: (f64, f64),
        points: S,
        l: usize,
        num_shards: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(
            report_interval.0.is_finite() && report_interval.1.is_finite(),
            "AnnulusIndex: reporting interval ({}, {}) must be finite",
            report_interval.0,
            report_interval.1
        );
        assert!(
            report_interval.0 <= report_interval.1,
            "empty reporting interval"
        );
        AnnulusIndex {
            index: ShardedIndex::build(family, points, l, num_shards, rng),
            measure,
            report_lo: report_interval.0,
            report_hi: report_interval.1,
        }
    }

    /// Insert a point into the backing [`ShardedIndex`], returning its
    /// global id (a full id space rejects with the backend's
    /// [`WriteError`]).
    pub fn insert<Q>(&mut self, p: &Q) -> Result<usize, WriteError>
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.index.insert(p)
    }

    /// Remove point `id` (tombstone; reclaimed at the next compaction).
    /// `Ok(false)` means already removed; a never-assigned id rejects
    /// with [`WriteError::UnknownId`].
    pub fn remove(&mut self, id: usize) -> Result<bool, WriteError> {
        self.index.remove(id)
    }

    /// Insert every point of `points` as one group commit: ids are
    /// assigned in insertion order and the backend publishes at most
    /// one new epoch for the whole batch (see the backend's
    /// `insert_batch`).
    pub fn insert_batch<QS>(&mut self, points: &QS) -> Result<Vec<usize>, WriteError>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.index.insert_batch(points)
    }

    /// Remove every id of `ids` as one group commit: per-id results in
    /// order, at most one new epoch for the whole batch (see the
    /// backend's `remove_batch`).
    pub fn remove_batch(&mut self, ids: &[usize]) -> Result<Vec<bool>, WriteError> {
        self.index.remove_batch(ids)
    }

    /// Freeze every shard's delta segment; see [`ShardedIndex::seal`].
    pub fn seal(&mut self) {
        self.index.seal();
    }

    /// Compact every shard, dropping tombstones; see
    /// [`ShardedIndex::compact`].
    pub fn compact(&mut self) {
        self.index.compact();
    }
}

impl<S: PointStore, B: CandidateBackend<Row = S::Row>> AnnulusIndex<S, B> {
    /// Number of repetitions `L`.
    pub fn repetitions(&self) -> usize {
        self.index.repetitions()
    }

    /// The candidate backend (e.g. to inspect a [`DynamicIndex`]'s
    /// segment layout or live count).
    pub fn backend(&self) -> &B {
        &self.index
    }

    /// Mutable access to the candidate backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.index
    }

    /// Query: return the first retrieved candidate whose measure lies in
    /// the reporting interval, giving up after `8L` retrieved entries
    /// (the Theorem 6.1 termination rule).
    pub fn query<Q>(&self, q: &Q) -> (Option<AnnulusMatch>, QueryStats)
    where
        Q: AsRow<Row = S::Row> + ?Sized,
    {
        self.query_row(q.as_row())
    }

    fn query_row(&self, q: &S::Row) -> (Option<AnnulusMatch>, QueryStats) {
        let (cands, mut stats) = self.index.candidates_row(
            q,
            Some(self.retrieval_limit()),
            &mut self.index.new_scratch(),
        );
        let hit = self.verify(&cands, q, &mut stats);
        (hit, stats)
    }

    /// Run [`AnnulusIndex::query`] for a batch of queries, fanned out
    /// across worker threads with one reusable scratch buffer per worker.
    /// Results line up with `queries` and are identical to a
    /// query-at-a-time loop.
    pub fn query_batch<QS>(&self, queries: &QS) -> Vec<(Option<AnnulusMatch>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        self.query_batch_with_threads(queries, parallel::available_threads())
    }

    /// [`AnnulusIndex::query_batch`] with an explicit worker-thread count
    /// (the output does not depend on it; the count is capped so each
    /// worker serves several queries per scratch buffer).
    pub fn query_batch_with_threads<QS>(
        &self,
        queries: &QS,
        threads: usize,
    ) -> Vec<(Option<AnnulusMatch>, QueryStats)>
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        let limit = self.retrieval_limit();
        let threads =
            parallel::capped_threads(queries.len(), threads, crate::table::MIN_QUERIES_PER_WORKER);
        parallel::map_index_chunks(queries.len(), threads, |range| {
            let mut scratch = self.index.new_scratch();
            range
                .map(|i| {
                    let q = queries.row(i);
                    let (cands, mut stats) =
                        self.index.candidates_row(q, Some(limit), &mut scratch);
                    let hit = self.verify(&cands, q, &mut stats);
                    (hit, stats)
                })
                .collect()
        })
    }

    /// Run `reps` independent queries (the structure itself is fixed;
    /// repetition here means retrying the probabilistic query), returning
    /// the success count — used by the experiments to measure the success
    /// probability guarantee (>= 1/2 in Theorem 6.1). Runs the batched
    /// query path under the hood.
    pub fn success_rate<QS>(&self, queries: &QS) -> f64
    where
        QS: PointStore<Row = S::Row> + ?Sized,
    {
        assert!(!queries.is_empty());
        let hits = self
            .query_batch(queries)
            .iter()
            .filter(|(hit, _)| hit.is_some())
            .count();
        hits as f64 / queries.len() as f64
    }

    fn retrieval_limit(&self) -> usize {
        8 * self.index.repetitions()
    }

    fn verify(&self, cands: &[usize], q: &S::Row, stats: &mut QueryStats) -> Option<AnnulusMatch> {
        for (j, &i) in cands.iter().enumerate() {
            // Gather the row a few candidates ahead so its cache misses
            // overlap this candidate's distance computation.
            if let Some(&ahead) = cands.get(j + crate::table::ROW_AHEAD) {
                self.index.prefetch_point(ahead);
            }
            stats.distance_computations += 1;
            let v = (self.measure)(self.index.point(i), q);
            if v >= self.report_lo && v <= self.report_hi {
                return Some(AnnulusMatch { index: i, value: v });
            }
        }
        None
    }
}

/// Theorem 6.1's powering note: the theorem assumes `f <= 1/n` outside the
/// annulus; "the standard technique of powering (see Lemma 1.4(a)) allows
/// us to work with the CPF f(x)^k" to enforce it. Given the CPF value
/// `f_out` at the worst point outside the reporting interval and the CPF
/// value `f_peak` at the target, return `(k, L)`: the powering exponent
/// pushing `f_out^k <= 1/n` and the matching repetition count
/// `L = ceil(factor / f_peak^k)`, computed underflow-safely and clamped
/// to [`crate::MAX_REPETITIONS`].
pub fn powering_parameters(n: usize, f_peak: f64, f_out: f64, factor: f64) -> (usize, usize) {
    assert!(n >= 2);
    assert!(0.0 < f_out && f_out < f_peak && f_peak <= 1.0);
    assert!(factor >= 1.0);
    let k = if f_out <= 1.0 / n as f64 {
        1
    } else {
        ((n as f64).ln() / (1.0 / f_out).ln()).ceil() as usize
    };
    let k = k.max(1);
    (k, repetition_count(factor, f_peak, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::combinators::{Concat, Power};
    use dsh_core::points::BitVector;
    use dsh_core::AnalyticCpf;
    use dsh_data::hamming_data;
    use dsh_data::sphere_data;
    use dsh_hamming::{AntiBitSampling, BitSampling};
    use dsh_math::rng::seeded;
    use dsh_sphere::unimodal::{annulus_interval, UnimodalFilterDsh};
    use dsh_sphere::UnimodalFilterDsh as _Alias;

    #[test]
    fn hamming_annulus_via_powered_bit_sampling() {
        // Target relative distance ~0.25 in d=256: combine k1 bit-sampling
        // with k2 anti bit-sampling so the CPF (1-t)^k1 t^k2 peaks at
        // t = k2/(k1+k2) = 1/4.
        let d = 256;
        let n = 400;
        let (k1, k2) = (9usize, 3usize);
        let fam = Concat::new(vec![
            Box::new(Power::new(BitSampling::new(d), k1)) as dsh_core::BoxedDshFamily<[u64]>,
            Box::new(Power::new(AntiBitSampling::new(d), k2)),
        ]);
        let peak = 0.25f64;
        let f_peak = (1.0 - peak).powi(k1 as i32) * peak.powi(k2 as i32);
        let l = (1.5 / f_peak).ceil() as usize;

        let mut rng = seeded(311);
        let inst = hamming_data::planted_hamming_instance(&mut rng, n, d, 64); // t = 0.25
        let measure = crate::measures::relative_hamming(d);
        let idx = AnnulusIndex::build(&fam, measure, (0.15, 0.35), inst.points, l, &mut rng);
        let (hit, stats) = idx.query(&inst.query);
        let m = hit.expect("planted point at the peak should be found");
        assert!((0.15..=0.35).contains(&m.value));
        assert!(stats.candidates_retrieved <= 8 * l);
    }

    #[test]
    fn sphere_annulus_via_unimodal_family() {
        let d = 40;
        let n = 300;
        let alpha_max = 0.5;
        let fam = UnimodalFilterDsh::new(d, alpha_max, 1.6);
        let f_peak = fam.cpf(alpha_max);
        let l = (1.5 / f_peak).ceil() as usize;
        let (lo, hi) = annulus_interval(alpha_max, 3.0);

        let mut rng = seeded(312);
        let inst = sphere_data::planted_sphere_instance(&mut rng, n, d, alpha_max);
        let measure = crate::measures::inner_product();
        let idx = AnnulusIndex::build(&fam, measure, (lo, hi), inst.points, l, &mut rng);
        // Success probability is >= 1/2 per query; amplify by retrying the
        // query a few times (fresh randomness lives in the index build, so
        // instead assert the single-shot success over several instances in
        // the integration tests; here just check it terminates sanely).
        let (hit, stats) = idx.query(&inst.query);
        assert!(stats.candidates_retrieved <= 8 * l);
        if let Some(m) = hit {
            assert!((lo..=hi).contains(&m.value));
        }
        let _ = &fam as &_Alias; // silence unused alias import
    }

    #[test]
    fn annulus_success_rate_at_least_half() {
        // Over many planted instances, a Theorem 6.1 structure with
        // L = ceil(1.5/f(peak)) must succeed with probability >= 1/2.
        let d = 256;
        let (k1, k2) = (6usize, 2usize);
        let fam = Concat::new(vec![
            Box::new(Power::new(BitSampling::new(d), k1)) as dsh_core::BoxedDshFamily<[u64]>,
            Box::new(Power::new(AntiBitSampling::new(d), k2)),
        ]);
        let peak = 0.25f64;
        let f_peak = (1.0 - peak).powi(k1 as i32) * peak.powi(k2 as i32);
        let l = (1.5 / f_peak).ceil() as usize;

        let mut successes = 0;
        let runs = 30;
        for run in 0..runs {
            let mut rng = seeded(313 + run);
            let inst = hamming_data::planted_hamming_instance(&mut rng, 150, d, 64);
            let measure = crate::measures::relative_hamming(d);
            let idx = AnnulusIndex::build(&fam, measure, (0.1, 0.4), inst.points, l, &mut rng);
            if idx.query(&inst.query).0.is_some() {
                successes += 1;
            }
        }
        assert!(
            successes * 2 >= runs,
            "success rate {successes}/{runs} below 1/2"
        );
    }

    #[test]
    fn empty_result_when_nothing_in_annulus() {
        let d = 128;
        let fam = Power::new(AntiBitSampling::new(d), 2);
        let mut rng = seeded(314);
        // All points are far (t ~ 0.5); ask for an annulus around 0.1.
        let points = hamming_data::uniform_hamming(&mut rng, 100, d);
        let q = BitVector::random(&mut rng, d);
        let measure = crate::measures::relative_hamming(d);
        let idx = AnnulusIndex::build(&fam, measure, (0.05, 0.15), points, 20, &mut rng);
        let (hit, _) = idx.query(&q);
        assert!(hit.is_none());
    }

    #[test]
    fn powering_parameters_enforce_one_over_n() {
        let (k, l) = powering_parameters(1000, 0.5, 0.1, 1.0);
        assert!(0.1f64.powi(k as i32) <= 1e-3 * (1.0 + 1e-9));
        assert_eq!(l, (1.0 / 0.5f64.powi(k as i32)).ceil() as usize);
        // Already below 1/n: no powering needed.
        let (k1, l1) = powering_parameters(10, 0.5, 0.01, 1.0);
        assert_eq!(k1, 1);
        assert_eq!(l1, 2);
    }

    #[test]
    #[should_panic]
    fn powering_rejects_inverted_cpf_values() {
        let _ = powering_parameters(100, 0.1, 0.5, 1.0);
    }

    #[test]
    fn powering_parameters_clamp_instead_of_saturating() {
        // f_peak tiny: L = factor / f_peak^k used to saturate `as usize`.
        let (k, l) = powering_parameters(1000, 1e-300, 1e-307, 1.0);
        assert_eq!(k, 1);
        assert_eq!(l, crate::MAX_REPETITIONS);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn build_rejects_zero_repetitions() {
        let d = 16;
        let measure = crate::measures::relative_hamming(d);
        let _ = AnnulusIndex::build(
            &BitSampling::new(d),
            measure,
            (0.0, 0.5),
            vec![BitVector::zeros(d)],
            0,
            &mut seeded(1),
        );
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn build_rejects_empty_points() {
        let measure = crate::measures::relative_hamming(16);
        let _ = AnnulusIndex::build(
            &BitSampling::new(16),
            measure,
            (0.0, 0.5),
            Vec::<BitVector>::new(),
            4,
            &mut seeded(2),
        );
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn build_rejects_non_finite_interval() {
        let measure = crate::measures::relative_hamming(16);
        let _ = AnnulusIndex::build(
            &BitSampling::new(16),
            measure,
            (0.0, f64::INFINITY),
            vec![BitVector::zeros(16)],
            4,
            &mut seeded(3),
        );
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let d = 128;
        let mut rng = seeded(316);
        let points = hamming_data::uniform_hamming(&mut rng, 120, d);
        let queries: Vec<BitVector> = points[..30].to_vec();
        let measure = crate::measures::relative_hamming(d);
        let idx = AnnulusIndex::build(&fam_for_batch(d), measure, (0.0, 0.2), points, 12, &mut rng);
        let sequential: Vec<_> = queries.iter().map(|q| idx.query(q)).collect();
        for threads in [1usize, 2, 7] {
            assert_eq!(
                sequential,
                idx.query_batch_with_threads(&queries, threads),
                "threads = {threads}"
            );
        }
        // Stats accounting holds on every batched result.
        for (_, stats) in idx.query_batch(&queries) {
            assert_eq!(
                stats.distinct_candidates + stats.duplicates,
                stats.candidates_retrieved
            );
        }
    }

    fn fam_for_batch(d: usize) -> Power<BitSampling> {
        Power::new(BitSampling::new(d), 2)
    }

    #[test]
    fn powered_annulus_structure_end_to_end() {
        // Use powering_parameters to build a structure whose base family
        // has too-high outside collision probability.
        let d = 256;
        let base = Concat::new(vec![
            Box::new(BitSampling::new(d)) as dsh_core::BoxedDshFamily<[u64]>,
            Box::new(AntiBitSampling::new(d)),
        ]); // CPF (1-t) t, peak 1/4 at t = 1/2
        let n = 200;
        let f_peak = 0.25;
        let f_out = 0.75 * 0.25; // value at t = 0.25, outside the annulus
        let (k, l) = powering_parameters(n, f_peak, f_out, 1.5);
        let fam = Power::new(base, k);

        let mut rng = seeded(0x991);
        let inst = dsh_data::hamming_data::planted_hamming_instance(&mut rng, n, d, d / 2);
        let measure = crate::measures::relative_hamming(d);
        let idx = AnnulusIndex::build(&fam, measure, (0.4, 0.6), inst.points, l, &mut rng);
        // The planted point sits at the peak; over a few rebuilds it is
        // found at least once (each attempt succeeds w.p. >= 1/2).
        let (hit, stats) = idx.query(&inst.query);
        assert!(stats.candidates_retrieved <= 8 * l);
        if let Some(m) = hit {
            assert!((0.4..=0.6).contains(&m.value));
        }
    }

    #[test]
    fn success_rate_helper() {
        let d = 64;
        let fam = BitSampling::new(d);
        let mut rng = seeded(315);
        let points = hamming_data::uniform_hamming(&mut rng, 50, d);
        let queries: Vec<BitVector> = points[..10].to_vec();
        let measure = crate::measures::relative_hamming(d);
        let idx = AnnulusIndex::build(&fam, measure, (0.0, 0.0), points, 10, &mut rng);
        // Identical points always within [0,0] and symmetric family
        // retrieves them easily with L=10.
        let rate = idx.success_rate(&queries);
        assert!(rate > 0.9, "rate {rate}");
    }
}
