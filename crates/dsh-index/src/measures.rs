//! Stock [`Measure`]s over store rows.
//!
//! Measures operate on borrowed rows (`[f64]` / `[u64]`) so candidate
//! verification streams a store's contiguous rows through the slice
//! kernels of [`dsh_core::points`] instead of chasing one heap pointer
//! per candidate. These constructors cover the measures every experiment
//! in the workspace uses; ad-hoc measures are ordinary boxed closures.
//!
//! ```
//! use dsh_core::points::BitVector;
//! use dsh_index::measures;
//! let m = measures::relative_hamming(8);
//! let x = BitVector::zeros(8);
//! let y = BitVector::ones(8);
//! assert_eq!(m(x.as_blocks(), y.as_blocks()), 1.0);
//! ```

use crate::annulus::Measure;
use dsh_core::points;

/// Inner product `<x, y>` on dense rows (the sphere similarity).
pub fn inner_product() -> Measure<[f64]> {
    Box::new(points::dot)
}

/// Euclidean distance `||x - y||_2` on dense rows.
pub fn euclidean() -> Measure<[f64]> {
    Box::new(points::euclidean)
}

/// Absolute Hamming distance on packed bit rows.
pub fn hamming() -> Measure<[u64]> {
    Box::new(|x, y| points::hamming(x, y) as f64)
}

/// Relative Hamming distance `||x - y||_1 / d` on packed bit rows of
/// dimension `d` (the row itself only knows its block count, so the
/// dimension is captured here). Each evaluation asserts the rows span
/// `d.div_ceil(64)` blocks, so a measure built for the wrong dimension
/// fails loudly instead of silently rescaling every distance.
pub fn relative_hamming(d: usize) -> Measure<[u64]> {
    assert!(d > 0, "relative distance undefined in dimension 0");
    Box::new(move |x, y| {
        assert_eq!(
            x.len(),
            d.div_ceil(64),
            "row has {} blocks but the measure was built for d = {d}",
            x.len()
        );
        points::hamming(x, y) as f64 / d as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::{AsRow, BitVector, DenseVector};
    use dsh_math::rng::seeded;

    #[test]
    fn measures_match_owned_point_methods() {
        let mut rng = seeded(0x3EA);
        let a = DenseVector::gaussian(&mut rng, 9);
        let b = DenseVector::gaussian(&mut rng, 9);
        assert_eq!(inner_product()(a.as_row(), b.as_row()), a.dot(&b));
        assert_eq!(euclidean()(a.as_row(), b.as_row()), a.euclidean(&b));
        let x = BitVector::random(&mut rng, 70);
        let y = BitVector::random(&mut rng, 70);
        assert_eq!(hamming()(x.as_row(), y.as_row()), x.hamming(&y) as f64);
        assert_eq!(
            relative_hamming(70)(x.as_row(), y.as_row()),
            x.relative_hamming(&y)
        );
    }

    #[test]
    #[should_panic(expected = "dimension 0")]
    fn zero_dimension_rejected() {
        let _ = relative_hamming(0);
    }

    #[test]
    #[should_panic(expected = "built for d = 16")]
    fn mismatched_dimension_rejected_at_evaluation() {
        let x = BitVector::zeros(128);
        let _ = relative_hamming(16)(x.as_row(), x.as_row());
    }
}
