//! The `L`-repetition asymmetric hash table (the "straightforward
//! adaptation of the near neighbor data structure using LSH" from the
//! proof of Theorem 6.1).
//!
//! `L` pairs `(h_j, g_j)` are sampled from a distance-sensitive family.
//! Every data point `x` is stored in table `j` under key `h_j(x)`; a query
//! `q` probes table `j` under `g_j(q)`. With a symmetric family this is the
//! classical LSH index; with an asymmetric family the probed bucket differs
//! from the stored one — which is the entire point.

use dsh_core::family::{DshFamily, PointHasher};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters describing the work a query performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of hash tables probed.
    pub tables_probed: usize,
    /// Total bucket entries retrieved (including duplicates across tables).
    pub candidates_retrieved: usize,
    /// Distinct points retrieved.
    pub distinct_candidates: usize,
    /// Retrieved entries that were duplicates of already-seen points — the
    /// quantity Theorem 6.5's output-sensitivity analysis controls.
    pub duplicates: usize,
    /// Number of exact distance/similarity evaluations performed.
    pub distance_computations: usize,
}

/// One hash table: the sampled data/query hashers and the bucket map.
struct Table<P: ?Sized> {
    data_fn: Arc<dyn PointHasher<P>>,
    query_fn: Arc<dyn PointHasher<P>>,
    buckets: HashMap<u64, Vec<u32>>,
}

/// An `L`-repetition DSH hash table over owned points.
pub struct HashTableIndex<P> {
    tables: Vec<Table<P>>,
    points: Vec<P>,
}

impl<P: 'static> HashTableIndex<P> {
    /// Build with `l` independently sampled `(h, g)` pairs.
    pub fn build(
        family: &(impl DshFamily<P> + ?Sized),
        points: Vec<P>,
        l: usize,
        rng: &mut dyn Rng,
    ) -> Self {
        assert!(l >= 1, "need at least one repetition");
        assert!(
            points.len() < u32::MAX as usize,
            "point count exceeds index capacity"
        );
        let tables = (0..l)
            .map(|_| {
                let pair = family.sample(rng);
                let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
                for (i, p) in points.iter().enumerate() {
                    buckets
                        .entry(pair.data.hash(p))
                        .or_default()
                        .push(i as u32);
                }
                Table {
                    data_fn: pair.data,
                    query_fn: pair.query,
                    buckets,
                }
            })
            .collect();
        HashTableIndex { tables, points }
    }

    /// Number of repetitions `L`.
    pub fn repetitions(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Access an indexed point.
    pub fn point(&self, i: usize) -> &P {
        &self.points[i]
    }

    /// Retrieve query candidates table-by-table, stopping once
    /// `retrieval_limit` raw entries have been pulled (the `8L`
    /// early-termination device from the proof of Theorem 6.1).
    /// Returns distinct candidate indices in retrieval order.
    pub fn candidates(&self, q: &P, retrieval_limit: Option<usize>) -> (Vec<usize>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut seen = vec![false; self.points.len()];
        let mut out = Vec::new();
        'tables: for table in &self.tables {
            stats.tables_probed += 1;
            let key = table.query_fn.hash(q);
            if let Some(bucket) = table.buckets.get(&key) {
                for &i in bucket {
                    stats.candidates_retrieved += 1;
                    let i = i as usize;
                    if seen[i] {
                        stats.duplicates += 1;
                    } else {
                        seen[i] = true;
                        out.push(i);
                    }
                    if let Some(limit) = retrieval_limit {
                        if stats.candidates_retrieved >= limit {
                            break 'tables;
                        }
                    }
                }
            }
        }
        stats.distinct_candidates = out.len();
        (out, stats)
    }

    /// Whether data point `i` and the query collide in table `j`
    /// (diagnostic helper for tests).
    pub fn collides_in_table(&self, j: usize, i: usize, q: &P) -> bool {
        let t = &self.tables[j];
        t.data_fn.hash(&self.points[i]) == t.query_fn.hash(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsh_core::points::BitVector;
    use dsh_hamming::{AntiBitSampling, BitSampling};
    use dsh_math::rng::seeded;

    fn dataset(d: usize, n: usize) -> Vec<BitVector> {
        let mut rng = seeded(301);
        (0..n).map(|_| BitVector::random(&mut rng, d)).collect()
    }

    #[test]
    fn symmetric_family_finds_identical_point() {
        let d = 64;
        let points = dataset(d, 50);
        let q = points[17].clone();
        let mut rng = seeded(302);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 8, &mut rng);
        let (cands, stats) = idx.candidates(&q, None);
        assert!(cands.contains(&17), "identical point must collide somewhere");
        assert_eq!(stats.tables_probed, 8);
        assert_eq!(
            stats.distinct_candidates + stats.duplicates,
            stats.candidates_retrieved
        );
    }

    #[test]
    fn asymmetric_family_excludes_identical_point() {
        // With anti bit-sampling, h(x) != g(x) always: the identical point
        // can never be retrieved.
        let d = 64;
        let points = dataset(d, 50);
        let q = points[3].clone();
        let mut rng = seeded(303);
        let idx = HashTableIndex::build(&AntiBitSampling::new(d), points, 16, &mut rng);
        let (cands, _) = idx.candidates(&q, None);
        assert!(!cands.contains(&3), "anti family must not retrieve the query itself");
    }

    #[test]
    fn retrieval_limit_stops_early() {
        let d = 16;
        // All points identical => every bucket contains everything.
        let points: Vec<BitVector> = (0..100).map(|_| BitVector::zeros(d)).collect();
        let q = BitVector::zeros(d);
        let mut rng = seeded(304);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 10, &mut rng);
        let (_, stats) = idx.candidates(&q, Some(42));
        assert_eq!(stats.candidates_retrieved, 42);
        let (_, unlimited) = idx.candidates(&q, None);
        assert_eq!(unlimited.candidates_retrieved, 1000);
        assert_eq!(unlimited.distinct_candidates, 100);
        assert_eq!(unlimited.duplicates, 900);
    }

    #[test]
    fn accessors() {
        let d = 8;
        let points = dataset(d, 5);
        let p0 = points[0].clone();
        let mut rng = seeded(305);
        let idx = HashTableIndex::build(&BitSampling::new(d), points, 3, &mut rng);
        assert_eq!(idx.repetitions(), 3);
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert_eq!(idx.point(0), &p0);
    }
}
